#include "griddecl/sim/event_sim.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <queue>

#include "griddecl/eval/metrics.h"

namespace griddecl {

namespace {

/// Per-disk state: one FIFO sub-queue per waiting query, served round
/// robin; `last_address` drives the locality model.
struct DiskState {
  /// Query ids with pending requests, in round-robin order.
  std::deque<uint32_t> turn_order;
  /// Pending request addresses per query (indexed by query id).
  std::vector<std::deque<uint64_t>> pending;
  bool busy = false;
  /// Query whose request is currently in service (valid while busy).
  uint32_t current_query = 0;
  uint64_t last_address = 0;
  bool has_last = false;
  double busy_ms = 0;
};

}  // namespace

Workload ReorderLongestFirst(const DeclusteringMethod& method,
                             const Workload& workload) {
  std::vector<std::pair<uint64_t, size_t>> keyed;
  keyed.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    keyed.push_back({ResponseTime(method, workload.queries[i]), i});
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  Workload out;
  out.name = workload.name + "/lpt";
  out.queries.reserve(workload.size());
  for (const auto& [cost, index] : keyed) {
    out.queries.push_back(workload.queries[index]);
  }
  return out;
}

Result<ThroughputResult> SimulateInterleaved(
    const DeclusteringMethod& method, const Workload& workload,
    const ThroughputOptions& options) {
  if (options.concurrency < 1) {
    return Status::InvalidArgument("concurrency must be >= 1");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("workload must be non-empty");
  }
  const uint32_t m = method.num_disks();
  if (!options.slowdown.empty() && options.slowdown.size() != m) {
    return Status::InvalidArgument("need one slowdown entry per disk");
  }
  for (double s : options.slowdown) {
    if (!(s > 0)) {
      return Status::InvalidArgument("slowdown factors must be positive");
    }
  }
  const DiskParams& p = options.params;
  const double transfer = p.TransferMs();
  const double position = p.avg_seek_ms + p.rotational_latency_ms;
  const GridSpec& grid = method.grid();
  const uint32_t n = static_cast<uint32_t>(workload.size());

  std::vector<DiskState> disks(m);
  for (DiskState& d : disks) d.pending.resize(n);
  std::vector<uint32_t> remaining(n, 0);  // Outstanding requests per query.
  std::vector<double> admit_time(n, 0);

  ThroughputResult result;
  result.num_queries = n;
  result.disk_busy_ms.assign(m, 0);

  // Completion events: (time, disk). A disk has at most one in flight.
  using Event = std::pair<double, uint32_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  uint32_t next_query = 0;
  uint32_t in_flight = 0;
  double now = 0;
  double latency_sum = 0;

  auto start_service = [&](uint32_t disk_id) {
    DiskState& d = disks[disk_id];
    if (d.busy || d.turn_order.empty()) return;
    const uint32_t q = d.turn_order.front();
    d.turn_order.pop_front();
    GRIDDECL_CHECK(!d.pending[q].empty());
    const uint64_t addr = d.pending[q].front();
    d.pending[q].pop_front();
    double seek = position;
    if (d.has_last && addr >= d.last_address &&
        addr - d.last_address <= p.near_gap_buckets) {
      seek *= p.near_seek_factor;
    }
    const double scale =
        options.slowdown.empty() ? 1.0 : options.slowdown[disk_id];
    const double service = (seek + transfer) * scale;
    d.last_address = addr;
    d.has_last = true;
    d.busy = true;
    d.current_query = q;
    d.busy_ms += service;
    // Fair sharing: the query rejoins the tail if it still has requests.
    if (!d.pending[q].empty()) d.turn_order.push_back(q);
    events.push({now + service, disk_id});
  };

  // Forward declaration dance: admit() and complete_query() are mutually
  // recursive through zero-request queries.
  std::function<void(uint32_t, double)> complete_query;
  auto admit = [&](uint32_t q, double at) {
    admit_time[q] = at;
    ++in_flight;
    std::vector<std::vector<uint64_t>> batches(m);
    workload.queries[q].rect().ForEachBucket([&](const BucketCoords& c) {
      batches[method.DiskOf(c)].push_back(grid.Linearize(c));
    });
    uint32_t total = 0;
    for (uint32_t disk_id = 0; disk_id < m; ++disk_id) {
      std::sort(batches[disk_id].begin(), batches[disk_id].end());
      for (uint64_t addr : batches[disk_id]) {
        disks[disk_id].pending[q].push_back(addr);
      }
      if (!batches[disk_id].empty()) {
        disks[disk_id].turn_order.push_back(q);
        total += static_cast<uint32_t>(batches[disk_id].size());
      }
    }
    remaining[q] = total;
    if (total == 0) {
      complete_query(q, at);
    } else {
      for (uint32_t disk_id = 0; disk_id < m; ++disk_id) {
        start_service(disk_id);
      }
    }
  };

  complete_query = [&](uint32_t q, double at) {
    const double latency = at - admit_time[q];
    latency_sum += latency;
    result.max_latency_ms = std::max(result.max_latency_ms, latency);
    result.total_ms = std::max(result.total_ms, at);
    --in_flight;
    if (next_query < n) {
      const uint32_t next = next_query++;
      admit(next, at);
    }
  };

  while (next_query < n && in_flight < options.concurrency) {
    const uint32_t next = next_query++;
    admit(next, 0);
  }

  while (!events.empty()) {
    const auto [time, disk_id] = events.top();
    events.pop();
    now = time;
    DiskState& d = disks[disk_id];
    const uint32_t q = d.current_query;
    d.busy = false;
    GRIDDECL_CHECK(remaining[q] > 0);
    if (--remaining[q] == 0) complete_query(q, now);
    start_service(disk_id);
  }

  for (uint32_t disk_id = 0; disk_id < m; ++disk_id) {
    result.disk_busy_ms[disk_id] = disks[disk_id].busy_ms;
  }
  result.mean_latency_ms = latency_sum / static_cast<double>(n);
  return result;
}

}  // namespace griddecl
