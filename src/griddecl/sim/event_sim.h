#ifndef GRIDDECL_SIM_EVENT_SIM_H_
#define GRIDDECL_SIM_EVENT_SIM_H_

#include "griddecl/sim/throughput.h"

/// \file
/// Request-interleaved multiuser simulation.
///
/// `SimulateThroughput` (sim/throughput.h) models batch-FIFO disks: a disk
/// finishes one query's whole batch before touching the next query's. Real
/// systems issue bucket-sized I/Os, and a disk's scheduler interleaves
/// requests from concurrent queries. This event-driven model captures that:
///
///  * each disk serves one request at a time, picking the next request
///    round-robin across the queries waiting on it (fair sharing);
///  * positioning cost uses the disk's *actual* previous request address,
///    so interleaving pays the seeks that batch service avoids — the model
///    exposes the classic fairness-vs-locality trade;
///  * admission is closed-system at a fixed multiprogramming level, as in
///    the batch model.
///
/// Comparing the two models per method (bench A5's companion table) shows
/// which methods rely on batch locality versus genuine balance.

namespace griddecl {

/// Runs the interleaved simulation. Options and result shape are shared
/// with `SimulateThroughput` (the `slowdown` array applies here too).
Result<ThroughputResult> SimulateInterleaved(const DeclusteringMethod& method,
                                             const Workload& workload,
                                             const ThroughputOptions& options);

/// Longest-processing-time-first admission order: sorts the workload's
/// queries by decreasing single-query response time under `method`
/// (stable, so equal-cost queries keep their order). The classic offline
/// makespan heuristic for closed-system batch execution.
Workload ReorderLongestFirst(const DeclusteringMethod& method,
                             const Workload& workload);

}  // namespace griddecl

#endif  // GRIDDECL_SIM_EVENT_SIM_H_
