#include "griddecl/sim/faults.h"

#include <algorithm>
#include <cmath>

#include "griddecl/common/bit_util.h"
#include "griddecl/methods/ecc.h"

namespace griddecl {

namespace {

/// SplitMix64 finalizer: the transient-error draw for one request attempt
/// is a pure function of (seed, disk, address, attempt), so fault patterns
/// do not depend on simulation order.
uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t AttemptHash(uint64_t seed, uint32_t disk, uint64_t address,
                     uint32_t attempt) {
  uint64_t h = MixHash(seed ^ 0x6a09e667f3bcc909ull);
  h = MixHash(h ^ disk);
  h = MixHash(h ^ address);
  h = MixHash(h ^ attempt);
  return h;
}

}  // namespace

FaultModel::FaultModel(uint32_t num_disks, FaultSpec spec)
    : num_disks_(num_disks),
      spec_(std::move(spec)),
      fail_at_(num_disks, std::numeric_limits<double>::infinity()),
      terminal_failed_(num_disks, false) {
  // Degenerate shared-backoff policy: constant wait, no jitter — keeps the
  // charged delay exactly `retry_backoff_ms` (bit-identical to the
  // pre-extraction inline charge).
  retry_policy_.base_ms = spec_.retry_backoff_ms;
  retry_policy_.multiplier = 1.0;
  retry_policy_.cap_ms = spec_.retry_backoff_ms;
  retry_policy_.jitter = 0.0;
  retry_policy_.max_attempts = spec_.max_retries + 1;
  for (const DiskFailure& f : spec_.failures) {
    fail_at_[f.disk] = std::min(fail_at_[f.disk], f.at_ms);
    terminal_failed_[f.disk] = true;
  }
  for (bool b : terminal_failed_) num_terminal_failed_ += b ? 1 : 0;
}

Result<FaultModel> FaultModel::Create(uint32_t num_disks, FaultSpec spec) {
  if (num_disks < 1) {
    return Status::InvalidArgument("fault model needs at least one disk");
  }
  for (const DiskFailure& f : spec.failures) {
    if (f.disk >= num_disks) {
      return Status::InvalidArgument(
          "failure names disk " + std::to_string(f.disk) + " but only " +
          std::to_string(num_disks) + " disks exist");
    }
    if (!(f.at_ms >= 0.0)) {
      return Status::InvalidArgument("failure time must be >= 0");
    }
  }
  if (!(spec.transient_error_prob >= 0.0) ||
      spec.transient_error_prob >= 1.0) {
    return Status::InvalidArgument(
        "transient_error_prob must be in [0, 1)");
  }
  if (!(spec.retry_backoff_ms >= 0.0)) {
    return Status::InvalidArgument("retry_backoff_ms must be >= 0");
  }
  for (const Straggler& s : spec.stragglers) {
    if (s.disk >= num_disks) {
      return Status::InvalidArgument(
          "straggler names disk " + std::to_string(s.disk) + " but only " +
          std::to_string(num_disks) + " disks exist");
    }
    if (!(s.factor > 0.0)) {
      return Status::InvalidArgument("straggler factor must be > 0");
    }
    if (!(s.from_ms >= 0.0) || !(s.until_ms >= s.from_ms)) {
      return Status::InvalidArgument("straggler window is ill-formed");
    }
  }
  return FaultModel(num_disks, std::move(spec));
}

FaultModel FaultModel::None(uint32_t num_disks) {
  GRIDDECL_CHECK(num_disks >= 1);
  return FaultModel(num_disks, FaultSpec{});
}

bool FaultModel::FailedAt(uint32_t disk, double time_ms) const {
  GRIDDECL_CHECK(disk < num_disks_);
  return time_ms >= fail_at_[disk];
}

std::vector<bool> FaultModel::FailedMaskAt(double time_ms) const {
  std::vector<bool> mask(num_disks_, false);
  for (uint32_t d = 0; d < num_disks_; ++d) {
    mask[d] = time_ms >= fail_at_[d];
  }
  return mask;
}

double FaultModel::SlowdownAt(uint32_t disk, double time_ms) const {
  GRIDDECL_CHECK(disk < num_disks_);
  double factor = 1.0;
  for (const Straggler& s : spec_.stragglers) {
    if (s.disk == disk && time_ms >= s.from_ms && time_ms < s.until_ms) {
      factor *= s.factor;
    }
  }
  return factor;
}

bool FaultModel::AttemptFails(uint32_t disk, uint64_t address,
                              uint32_t attempt) const {
  GRIDDECL_CHECK(disk < num_disks_);
  if (spec_.transient_error_prob <= 0.0) return false;
  if (attempt >= spec_.max_retries) return false;
  const uint64_t h = AttemptHash(spec_.seed, disk, address, attempt);
  // Compare the hash's top 53 bits as a uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < spec_.transient_error_prob;
}

uint32_t FaultModel::TransientRetries(uint32_t disk, uint64_t address) const {
  uint32_t k = 0;
  while (k < spec_.max_retries && AttemptFails(disk, address, k)) ++k;
  return k;
}

const char* DegradedReadStrategyName(DegradedReadStrategy strategy) {
  switch (strategy) {
    case DegradedReadStrategy::kUnavailable:
      return "unavailable";
    case DegradedReadStrategy::kReplicaReroute:
      return "replica-reroute";
    case DegradedReadStrategy::kEccReconstruct:
      return "ecc-reconstruct";
  }
  return "?";
}

namespace {

Status CheckMask(const std::vector<bool>& failed, uint32_t num_disks) {
  if (failed.size() != num_disks) {
    return Status::InvalidArgument("need one failure flag per disk");
  }
  return Status::Ok();
}

}  // namespace

const GridSpec& DegradedPlan::grid() const {
  return placement_ != nullptr ? placement_->base().grid() : method_->grid();
}

Result<DegradedPlan> DegradedPlan::ForMethod(
    const DeclusteringMethod& method, std::vector<bool> failed) {
  GRIDDECL_RETURN_IF_ERROR(CheckMask(failed, method.num_disks()));
  DegradedPlan plan(DegradedReadStrategy::kUnavailable, method.num_disks(),
                    std::move(failed));
  plan.method_ = &method;
  return plan;
}

Result<DegradedPlan> DegradedPlan::ForReplicated(
    const ReplicatedPlacement& placement, std::vector<bool> failed) {
  GRIDDECL_RETURN_IF_ERROR(CheckMask(failed, placement.num_disks()));
  DegradedPlan plan(DegradedReadStrategy::kReplicaReroute,
                    placement.num_disks(), std::move(failed));
  plan.placement_ = &placement;
  return plan;
}

Result<DegradedPlan> DegradedPlan::ForEcc(const DeclusteringMethod& method,
                                          std::vector<bool> failed) {
  GRIDDECL_RETURN_IF_ERROR(CheckMask(failed, method.num_disks()));
  const auto* ecc = dynamic_cast<const EccMethod*>(&method);
  if (ecc == nullptr) {
    return Status::Unsupported(
        "ECC reconstruction requires an ECC declustering method, got " +
        method.name());
  }
  DegradedPlan plan(DegradedReadStrategy::kEccReconstruct,
                    method.num_disks(), std::move(failed));
  plan.method_ = &method;
  // Parity-group tables from the parity-check matrix: flipping coordinate
  // bit j moves a bucket from disk s to disk s ^ column_j (syndromes are
  // linear), so the matrix columns *are* the reconstruction fan-out.
  const BitMatrix& h = ecc->parity_check();
  const GridSpec& grid = method.grid();
  uint32_t bit = 0;
  for (uint32_t dim = 0; dim < grid.num_dims(); ++dim) {
    const uint32_t width =
        static_cast<uint32_t>(FloorLog2(grid.dim(dim)));
    for (uint32_t b = 0; b < width; ++b, ++bit) {
      // Degenerate matrices (M = 1 or a 1-bucket grid) have fewer columns
      // than coordinate bits; treat the missing columns as zero (the
      // bucket is then unreconstructable, matching the degenerate case).
      plan.column_syndrome_.push_back(
          bit < h.cols() ? h.Column(bit).ToUint64() : 0);
      plan.column_dim_.push_back(dim);
      plan.column_bit_.push_back(b);
    }
  }
  return plan;
}

Result<DegradedPlan::QueryPlan> DegradedPlan::ExpandQuery(
    const RangeQuery& query, const std::vector<bool>* failed_now) const {
  const std::vector<bool>& failed =
      failed_now != nullptr ? *failed_now : failed_;
  GRIDDECL_RETURN_IF_ERROR(CheckMask(failed, num_disks_));
  switch (strategy_) {
    case DegradedReadStrategy::kUnavailable:
      return ExpandPlain(query, failed);
    case DegradedReadStrategy::kReplicaReroute:
      return ExpandReplicated(query, failed);
    case DegradedReadStrategy::kEccReconstruct:
      return ExpandEcc(query, failed);
  }
  return Status::Internal("unknown degraded-read strategy");
}

Result<DegradedPlan::QueryPlan> DegradedPlan::ExpandPlain(
    const RangeQuery& query, const std::vector<bool>& failed) const {
  QueryPlan plan;
  plan.per_disk.resize(num_disks_);
  const GridSpec& g = method_->grid();
  query.rect().ForEachBucket([&](const BucketCoords& c) {
    const uint32_t d = method_->DiskOf(c);
    if (failed[d]) {
      ++plan.unavailable_buckets;
    } else {
      plan.per_disk[d].push_back(g.Linearize(c));
    }
  });
  return plan;
}

Result<DegradedPlan::QueryPlan> DegradedPlan::ExpandReplicated(
    const RangeQuery& query, const std::vector<bool>& failed) const {
  QueryPlan plan;
  plan.per_disk.resize(num_disks_);
  Result<RoutedQuery> routed = RouteQuery(*placement_, query, &failed);
  if (!routed.ok()) {
    if (routed.status().code() == StatusCode::kUnsupported) {
      // Some bucket lost every replica: the whole query is unanswerable.
      plan.unavailable_buckets = query.NumBuckets();
      return plan;
    }
    return routed.status();
  }
  const GridSpec& g = placement_->base().grid();
  const std::vector<uint32_t>& assignment = routed.value().assignment;
  uint64_t i = 0;
  query.rect().ForEachBucket([&](const BucketCoords& c) {
    const uint32_t d = assignment[static_cast<size_t>(i++)];
    if (d != placement_->base().DiskOf(c)) ++plan.rerouted_buckets;
    plan.per_disk[d].push_back(g.Linearize(c));
  });
  return plan;
}

Result<DegradedPlan::QueryPlan> DegradedPlan::ExpandEcc(
    const RangeQuery& query, const std::vector<bool>& failed) const {
  QueryPlan plan;
  plan.per_disk.resize(num_disks_);
  const GridSpec& g = method_->grid();
  const uint32_t n = static_cast<uint32_t>(column_syndrome_.size());
  query.rect().ForEachBucket([&](const BucketCoords& c) {
    const uint32_t primary = method_->DiskOf(c);
    if (!failed[primary]) {
      plan.per_disk[primary].push_back(g.Linearize(c));
      return;
    }
    // Reconstruct from the n single-bit neighbors. All must be readable:
    // a zero column would put the "neighbor" on the dead primary disk,
    // and a neighbor on another dead disk breaks the stripe.
    std::vector<std::pair<uint32_t, uint64_t>> reads;
    reads.reserve(n);
    bool ok = n > 0;
    for (uint32_t j = 0; j < n && ok; ++j) {
      const uint32_t neighbor_disk = static_cast<uint32_t>(
          primary ^ column_syndrome_[j]);
      if (column_syndrome_[j] == 0 || neighbor_disk >= num_disks_ ||
          failed[neighbor_disk]) {
        ok = false;
        break;
      }
      BucketCoords neighbor = c;
      neighbor[column_dim_[j]] ^= (1u << column_bit_[j]);
      reads.push_back({neighbor_disk, g.Linearize(neighbor)});
    }
    if (!ok) {
      ++plan.unavailable_buckets;
      return;
    }
    for (const auto& [disk, addr] : reads) {
      plan.per_disk[disk].push_back(addr);
    }
    plan.reconstruction_reads += n;
  });
  return plan;
}

}  // namespace griddecl
