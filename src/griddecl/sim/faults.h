#ifndef GRIDDECL_SIM_FAULTS_H_
#define GRIDDECL_SIM_FAULTS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "griddecl/common/backoff.h"
#include "griddecl/common/status.h"
#include "griddecl/eval/replica_router.h"
#include "griddecl/methods/method.h"
#include "griddecl/methods/replicated.h"
#include "griddecl/query/query.h"

/// \file
/// Fault injection for the I/O simulators.
///
/// The paper's model (and this repo's simulators before this module) only
/// answers "how fast is the happy path?". Real arrays lose spindles
/// mid-workload, and ECC-style declustering is motivated partly by its
/// coding-theoretic structure — structure that also supports *recovery*.
/// This module describes faults and decides how reads are served around
/// them; `io_sim`, `throughput`, and `event_sim` consume it.
///
/// Three fault classes, all deterministic under a seed:
///
///  * **Permanent disk failures** — disk d is dead from `at_ms` onwards
///    (`at_ms = 0` means failed from the start). The multi-query
///    simulators evaluate liveness at query admission time; the
///    single-query simulator uses the terminal (eventually-failed) set.
///  * **Transient read errors** — each request attempt fails independently
///    with probability `transient_error_prob`, up to `max_retries` failed
///    attempts (the attempt after the last allowed retry always succeeds:
///    bounded retry). Whether attempt k of the request for `address` on
///    `disk` fails is a pure hash of (seed, disk, address, k), so the same
///    request faults identically regardless of simulation order — this is
///    what makes fault runs reproducible bit-for-bit.
///  * **Stragglers** — disk d is slowed by `factor` inside a time window,
///    multiplying its service times (compounding with the simulator's
///    static per-disk `slowdown`).
///
/// `DegradedPlan` is the policy layer: given the failed-disk set, how is a
/// bucket whose primary disk is dead served?
///
///  * `kUnavailable` — plain methods: the bucket (and any query touching
///    it) cannot be answered;
///  * `kReplicaReroute` — replicated placements: the query is re-routed by
///    the exact min-makespan replica router (eval/replica_router.h) over
///    the surviving replicas;
///  * `kEccReconstruct` — ECC declustering: the bucket is rebuilt by
///    reading the surviving members of its parity group. The group of
///    bucket v is its single-bit coordinate neighbors {v ^ e_j}: because
///    the code has minimum distance >= 3, those n = sum(log2 d_i) buckets
///    sit on n *pairwise-distinct* disks, none of them disk(v) — a
///    RAID-5-like stripe the parity-check matrix hands us for free. Each
///    reconstruction therefore fans out n real extra reads; if any group
///    member's disk is also dead (or a parity-check column is zero, which
///    would place the "neighbor" on the dead primary), the bucket is
///    unavailable — single-failure tolerance, exactly what distance 3
///    promises.

namespace griddecl {

/// A permanent disk failure. `at_ms = 0` fails the disk from the start.
struct DiskFailure {
  uint32_t disk = 0;
  double at_ms = 0.0;
};

/// A whole-node crash window: every disk the node owns is unreadable while
/// from_ms <= now < until_ms, then the node recovers. This is the
/// cluster-level sibling of DiskFailure, expressed in the same seeded,
/// virtual-time schedule language — `cluster::Cluster` lowers each window
/// into a wildcard `FaultRange` on the node's FaultyEnv, and
/// `AdvanceTimeMs` moves the clock the windows are evaluated against.
struct NodeFaultWindow {
  uint32_t node = 0;
  double from_ms = 0.0;
  double until_ms = std::numeric_limits<double>::infinity();
};

/// A whole-zone crash window: every node whose topology zone matches goes
/// down together while from_ms <= now < until_ms. The correlated-failure
/// sibling of NodeFaultWindow — `cluster::Cluster` expands each zone
/// window into per-node windows against its placement topology, so one
/// entry models a power/network domain failing as a unit.
struct ZoneFaultWindow {
  uint32_t zone = 0;
  double from_ms = 0.0;
  double until_ms = std::numeric_limits<double>::infinity();
};

/// A time-windowed service-time multiplier on one disk.
struct Straggler {
  uint32_t disk = 0;
  /// Service-time multiplier while active; must be > 0 (values > 1 slow
  /// the disk down, which is the interesting case).
  double factor = 1.0;
  double from_ms = 0.0;
  double until_ms = std::numeric_limits<double>::infinity();
};

/// Declarative description of every fault a simulation injects.
struct FaultSpec {
  /// Seed for the transient-error hash. Same seed => same fault pattern.
  uint64_t seed = 0;
  std::vector<DiskFailure> failures;
  /// Per-attempt transient read-error probability, in [0, 1).
  double transient_error_prob = 0.0;
  /// Maximum *failed* attempts per request; the next attempt succeeds.
  uint32_t max_retries = 3;
  /// Firmware-style wait charged to the disk per failed attempt (not
  /// scaled by disk speed).
  double retry_backoff_ms = 1.0;
  std::vector<Straggler> stragglers;
};

/// Immutable, validated fault model over `num_disks` disks. Safe to share
/// across threads for concurrent reads.
class FaultModel {
 public:
  /// Validated factory: disk ids in range, probability in [0, 1), straggler
  /// factors > 0, windows well-formed, times non-negative.
  static Result<FaultModel> Create(uint32_t num_disks, FaultSpec spec);

  /// A model with no faults at all (never fails, never slows, never errs).
  static FaultModel None(uint32_t num_disks);

  uint32_t num_disks() const { return num_disks_; }
  const FaultSpec& spec() const { return spec_; }

  bool has_failures() const { return num_terminal_failed_ > 0; }
  bool has_stragglers() const { return !spec_.stragglers.empty(); }
  bool has_transient_errors() const {
    return spec_.transient_error_prob > 0.0;
  }
  /// True when the model can never perturb a simulation.
  bool IsNoop() const {
    return !has_failures() && !has_stragglers() && !has_transient_errors();
  }

  /// Permanent failure state of `disk` at simulated time `time_ms`.
  bool FailedAt(uint32_t disk, double time_ms) const;

  /// Failure mask at `time_ms` (one flag per disk).
  std::vector<bool> FailedMaskAt(double time_ms) const;

  /// Disks that ever fail — the mask degraded plans are built against.
  const std::vector<bool>& terminal_failed() const {
    return terminal_failed_;
  }
  uint32_t num_terminal_failed() const { return num_terminal_failed_; }

  /// Combined straggler multiplier of `disk` at `time_ms` (product of all
  /// active windows; 1.0 when none).
  double SlowdownAt(uint32_t disk, double time_ms) const;

  /// True iff attempt `attempt` (0-based) of the request for `address` on
  /// `disk` suffers a transient error. Always false once `attempt` reaches
  /// `max_retries` (bounded retry) — and false for any attempt when
  /// `transient_error_prob` is 0.
  bool AttemptFails(uint32_t disk, uint64_t address, uint32_t attempt) const;

  /// Number of failed attempts the request for `address` on `disk` pays
  /// before succeeding, in [0, max_retries].
  uint32_t TransientRetries(uint32_t disk, uint64_t address) const;

  /// The retry/backoff policy the simulators charge: the shared
  /// implementation (common/backoff.h) with a degenerate configuration —
  /// constant `retry_backoff_ms` per retry, no jitter — so simulator and
  /// serving layer draw delays from one audited source.
  const BackoffPolicy& retry_policy() const { return retry_policy_; }

  /// Firmware-style wait charged before retry `retry` (0-based). Exactly
  /// `spec().retry_backoff_ms` for every retry under the degenerate
  /// policy; routed through `BackoffDelayMs` so the charge and the serving
  /// layer's real sleeps share an implementation.
  double RetryDelayMs(uint32_t retry) const {
    return BackoffDelayMs(retry_policy_, spec_.seed, 0, retry);
  }

 private:
  FaultModel(uint32_t num_disks, FaultSpec spec);

  uint32_t num_disks_;
  FaultSpec spec_;
  BackoffPolicy retry_policy_;
  /// Earliest failure time per disk; +inf when the disk never fails.
  std::vector<double> fail_at_;
  std::vector<bool> terminal_failed_;
  uint32_t num_terminal_failed_ = 0;
};

/// How a bucket on a failed disk is served.
enum class DegradedReadStrategy {
  /// The bucket cannot be served; queries touching it fail.
  kUnavailable,
  /// Re-route to a surviving replica (optimal min-makespan routing).
  kReplicaReroute,
  /// Reconstruct from the surviving members of the ECC parity group.
  kEccReconstruct,
};

const char* DegradedReadStrategyName(DegradedReadStrategy strategy);

/// Policy layer mapping each query to the physical reads that serve it
/// under a failure mask. Holds non-owning references: the method (or
/// placement) must outlive the plan.
class DegradedPlan {
 public:
  /// Plain (unreplicated, non-ECC) method: dead-disk buckets are
  /// unavailable. `failed` must have one entry per disk.
  static Result<DegradedPlan> ForMethod(const DeclusteringMethod& method,
                                        std::vector<bool> failed);

  /// Replicated placement: queries re-route around dead disks via the
  /// exact replica router.
  static Result<DegradedPlan> ForReplicated(
      const ReplicatedPlacement& placement, std::vector<bool> failed);

  /// ECC method: dead-disk buckets are reconstructed from their parity
  /// group. Returns kUnsupported when `method` is not ECC declustering.
  static Result<DegradedPlan> ForEcc(const DeclusteringMethod& method,
                                     std::vector<bool> failed);

  DegradedReadStrategy strategy() const { return strategy_; }
  uint32_t num_disks() const { return num_disks_; }
  const GridSpec& grid() const;
  /// The terminal failure mask the plan was built for (the default mask
  /// `ExpandQuery` uses).
  const std::vector<bool>& failed() const { return failed_; }

  /// Physical reads serving one query, per disk, addressed grid-linearly.
  struct QueryPlan {
    std::vector<std::vector<uint64_t>> per_disk;
    /// Buckets that cannot be served at all (a query with any is failed).
    uint64_t unavailable_buckets = 0;
    /// Buckets served by a non-primary replica.
    uint64_t rerouted_buckets = 0;
    /// Extra reads issued to rebuild dead-disk buckets.
    uint64_t reconstruction_reads = 0;
  };

  /// Expands `query` into per-disk reads. `failed_now`, when given, is the
  /// failure mask in effect (e.g. at query admission time) and must have
  /// one entry per disk; defaults to the plan's terminal mask. Degraded
  /// reads never target a disk failed in `failed_now`.
  Result<QueryPlan> ExpandQuery(const RangeQuery& query,
                                const std::vector<bool>* failed_now =
                                    nullptr) const;

 private:
  DegradedPlan(DegradedReadStrategy strategy, uint32_t num_disks,
               std::vector<bool> failed)
      : strategy_(strategy),
        num_disks_(num_disks),
        failed_(std::move(failed)) {}

  Result<QueryPlan> ExpandPlain(const RangeQuery& query,
                                const std::vector<bool>& failed) const;
  Result<QueryPlan> ExpandReplicated(const RangeQuery& query,
                                     const std::vector<bool>& failed) const;
  Result<QueryPlan> ExpandEcc(const RangeQuery& query,
                              const std::vector<bool>& failed) const;

  DegradedReadStrategy strategy_;
  uint32_t num_disks_;
  std::vector<bool> failed_;
  /// Exactly one of these is set, by strategy.
  const DeclusteringMethod* method_ = nullptr;
  const ReplicatedPlacement* placement_ = nullptr;
  /// ECC reconstruction tables: per concatenated coordinate bit j, the
  /// parity-check column as a syndrome value (disk(v ^ e_j) =
  /// disk(v) ^ column_syndrome_[j]), plus the (dimension, bit) it flips.
  std::vector<uint64_t> column_syndrome_;
  std::vector<uint32_t> column_dim_;
  std::vector<uint32_t> column_bit_;
};

}  // namespace griddecl

#endif  // GRIDDECL_SIM_FAULTS_H_
