#include "griddecl/sim/io_sim.h"

#include <algorithm>
#include <string>

namespace griddecl {

uint64_t SimResult::TotalRequests() const {
  uint64_t total = 0;
  for (const DiskSimStats& d : per_disk) total += d.requests;
  return total;
}

double SimResult::SerialMs() const {
  double total = 0.0;
  for (const DiskSimStats& d : per_disk) total += d.busy_ms;
  return total;
}

double SimResult::Speedup() const {
  return makespan_ms <= 0.0 ? 1.0 : SerialMs() / makespan_ms;
}

double SimResult::MeanUtilization() const {
  if (per_disk.empty() || makespan_ms <= 0.0) return 0.0;
  double sum = 0.0;
  for (const DiskSimStats& d : per_disk) sum += d.busy_ms / makespan_ms;
  return sum / static_cast<double>(per_disk.size());
}

ParallelIoSimulator::ParallelIoSimulator(uint32_t num_disks, DiskParams params)
    : ParallelIoSimulator(num_disks, params, {}) {}

ParallelIoSimulator::ParallelIoSimulator(uint32_t num_disks, DiskParams params,
                                         std::vector<double> slowdown)
    : num_disks_(num_disks),
      params_(params),
      slowdown_(std::move(slowdown)) {
  GRIDDECL_CHECK(num_disks >= 1);
  GRIDDECL_CHECK(params.avg_seek_ms >= 0 && params.rotational_latency_ms >= 0);
  GRIDDECL_CHECK(params.transfer_ms_per_kb >= 0 && params.bucket_kb > 0);
  GRIDDECL_CHECK(params.near_seek_factor >= 0 && params.near_seek_factor <= 1);
  GRIDDECL_CHECK_MSG(slowdown_.empty() || slowdown_.size() == num_disks_,
                     "need one slowdown per disk");
  for (double s : slowdown_) GRIDDECL_CHECK(s > 0);
}

Result<ParallelIoSimulator> ParallelIoSimulator::Create(
    uint32_t num_disks, DiskParams params, std::vector<double> slowdown) {
  if (num_disks < 1) {
    return Status::InvalidArgument("simulator needs at least one disk");
  }
  if (!(params.avg_seek_ms >= 0) || !(params.rotational_latency_ms >= 0) ||
      !(params.transfer_ms_per_kb >= 0) || !(params.bucket_kb > 0)) {
    return Status::InvalidArgument("disk service parameters out of domain");
  }
  if (!(params.near_seek_factor >= 0) || !(params.near_seek_factor <= 1)) {
    return Status::InvalidArgument("near_seek_factor must be in [0, 1]");
  }
  if (!slowdown.empty() && slowdown.size() != num_disks) {
    return Status::InvalidArgument("need one slowdown entry per disk");
  }
  for (double s : slowdown) {
    if (!(s > 0)) {
      return Status::InvalidArgument("slowdown factors must be positive");
    }
  }
  return ParallelIoSimulator(num_disks, params, std::move(slowdown));
}

double ParallelIoSimulator::slowdown(uint32_t disk) const {
  GRIDDECL_CHECK(disk < num_disks_);
  return slowdown_.empty() ? 1.0 : slowdown_[disk];
}

void ParallelIoSimulator::RecordRun(const SimResult& result) const {
  if (metrics_ == nullptr) return;
  metrics_->GetCounter("sim.io.queries")->Inc();
  metrics_->GetCounter("sim.io.requests")->Inc(result.TotalRequests());
  metrics_->GetCounter("sim.io.transient_retries")
      ->Inc(result.transient_retries);
  metrics_
      ->GetHistogram("sim.io.makespan", obs::ExponentialBounds(1, 2, 20))
      ->Observe(result.makespan_ms);
  for (uint32_t d = 0; d < num_disks_; ++d) {
    metrics_->GetCounter("sim.io.disk_requests." + std::to_string(d))
        ->Inc(result.per_disk[d].requests);
  }
}

SimResult ParallelIoSimulator::RunQuery(const DeclusteringMethod& method,
                                        const RangeQuery& query) const {
  GRIDDECL_CHECK_MSG(method.num_disks() == num_disks_,
                     "method declusters over %u disks, simulator has %u",
                     method.num_disks(), num_disks_);
  std::vector<std::vector<uint64_t>> schedule(num_disks_);
  const GridSpec& grid = method.grid();
  query.rect().ForEachBucket([&](const BucketCoords& c) {
    schedule[method.DiskOf(c)].push_back(grid.Linearize(c));
  });
  return RunSchedule(schedule);
}

SimResult ParallelIoSimulator::RunQuery(const DiskMap& map,
                                        const RangeQuery& query) const {
  GRIDDECL_CHECK_MSG(map.num_disks() == num_disks_,
                     "map declusters over %u disks, simulator has %u",
                     map.num_disks(), num_disks_);
  std::vector<std::vector<uint64_t>> schedule(num_disks_);
  // A bucket's grid-linear address is its row-major rank — exactly the
  // map's flat index, so each row span enumerates addresses directly.
  map.ForEachRowSpan(query.rect(), [&](uint64_t begin, uint64_t length) {
    for (uint64_t j = 0; j < length; ++j) {
      schedule[map.DiskAt(begin + j)].push_back(begin + j);
    }
  });
  return RunSchedule(schedule);
}

Result<SimResult> ParallelIoSimulator::RunQueryDegraded(
    const RangeQuery& query, const DegradedPlan& plan,
    const FaultModel& faults) const {
  if (plan.num_disks() != num_disks_) {
    return Status::InvalidArgument(
        "degraded plan covers " + std::to_string(plan.num_disks()) +
        " disks, simulator has " + std::to_string(num_disks_));
  }
  if (faults.num_disks() != num_disks_) {
    return Status::InvalidArgument(
        "fault model covers " + std::to_string(faults.num_disks()) +
        " disks, simulator has " + std::to_string(num_disks_));
  }
  Result<DegradedPlan::QueryPlan> expanded = plan.ExpandQuery(query);
  if (!expanded.ok()) return expanded.status();
  const DegradedPlan::QueryPlan& qp = expanded.value();
  SimResult result = RunScheduleWithFaults(qp.per_disk, faults);
  result.unavailable_buckets = qp.unavailable_buckets;
  result.rerouted_buckets = qp.rerouted_buckets;
  result.reconstruction_reads = qp.reconstruction_reads;
  return result;
}

SimResult ParallelIoSimulator::RunScheduleWithFaults(
    const std::vector<std::vector<uint64_t>>& per_disk_addresses,
    const FaultModel& faults) const {
  GRIDDECL_CHECK(per_disk_addresses.size() == num_disks_);
  SimResult result;
  result.per_disk.resize(num_disks_);
  const double transfer = params_.TransferMs();
  const double position =
      params_.avg_seek_ms + params_.rotational_latency_ms;
  for (uint32_t d = 0; d < num_disks_; ++d) {
    std::vector<uint64_t> addrs = per_disk_addresses[d];
    std::sort(addrs.begin(), addrs.end());
    const double base_scale = slowdown(d);
    double busy = 0.0;
    bool have_prev = false;
    uint64_t prev = 0;
    for (uint64_t addr : addrs) {
      double seek_cost = position;
      if (have_prev && addr - prev <= params_.near_gap_buckets) {
        seek_cost *= params_.near_seek_factor;
      }
      const double service = seek_cost + transfer;
      // k failed attempts pay the full service again plus a firmware-wait
      // backoff (not scaled by disk speed); the (k+1)-th attempt succeeds.
      const uint32_t k = faults.TransientRetries(d, addr);
      for (uint32_t attempt = 0; attempt <= k; ++attempt) {
        // Straggler windows are evaluated at the attempt's start time on
        // this disk's serial timeline; with no stragglers the factor is
        // exactly 1.0, keeping the healthy path bit-identical.
        busy += service * (base_scale * faults.SlowdownAt(d, busy));
        if (attempt < k) busy += faults.RetryDelayMs(attempt);
      }
      result.transient_retries += k;
      prev = addr;
      have_prev = true;
    }
    result.per_disk[d].requests = addrs.size();
    result.per_disk[d].busy_ms = busy;
    result.makespan_ms = std::max(result.makespan_ms, busy);
  }
  RecordRun(result);
  return result;
}

SimResult ParallelIoSimulator::RunSchedule(
    const std::vector<std::vector<uint64_t>>& per_disk_addresses) const {
  GRIDDECL_CHECK(per_disk_addresses.size() == num_disks_);
  SimResult result;
  result.per_disk.resize(num_disks_);
  const double transfer = params_.TransferMs();
  const double position =
      params_.avg_seek_ms + params_.rotational_latency_ms;
  for (uint32_t d = 0; d < num_disks_; ++d) {
    std::vector<uint64_t> addrs = per_disk_addresses[d];
    std::sort(addrs.begin(), addrs.end());
    const double scale = slowdown(d);
    double busy = 0.0;
    bool have_prev = false;
    uint64_t prev = 0;
    for (uint64_t addr : addrs) {
      double seek_cost = position;
      if (have_prev && addr - prev <= params_.near_gap_buckets) {
        seek_cost *= params_.near_seek_factor;
      }
      busy += (seek_cost + transfer) * scale;
      prev = addr;
      have_prev = true;
    }
    result.per_disk[d].requests = addrs.size();
    result.per_disk[d].busy_ms = busy;
    result.makespan_ms = std::max(result.makespan_ms, busy);
  }
  RecordRun(result);
  return result;
}

}  // namespace griddecl
