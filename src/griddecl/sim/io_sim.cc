#include "griddecl/sim/io_sim.h"

#include <algorithm>

namespace griddecl {

uint64_t SimResult::TotalRequests() const {
  uint64_t total = 0;
  for (const DiskSimStats& d : per_disk) total += d.requests;
  return total;
}

double SimResult::SerialMs() const {
  double total = 0.0;
  for (const DiskSimStats& d : per_disk) total += d.busy_ms;
  return total;
}

double SimResult::Speedup() const {
  return makespan_ms <= 0.0 ? 1.0 : SerialMs() / makespan_ms;
}

double SimResult::MeanUtilization() const {
  if (per_disk.empty() || makespan_ms <= 0.0) return 0.0;
  double sum = 0.0;
  for (const DiskSimStats& d : per_disk) sum += d.busy_ms / makespan_ms;
  return sum / static_cast<double>(per_disk.size());
}

ParallelIoSimulator::ParallelIoSimulator(uint32_t num_disks, DiskParams params)
    : ParallelIoSimulator(num_disks, params, {}) {}

ParallelIoSimulator::ParallelIoSimulator(uint32_t num_disks, DiskParams params,
                                         std::vector<double> slowdown)
    : num_disks_(num_disks),
      params_(params),
      slowdown_(std::move(slowdown)) {
  GRIDDECL_CHECK(num_disks >= 1);
  GRIDDECL_CHECK(params.avg_seek_ms >= 0 && params.rotational_latency_ms >= 0);
  GRIDDECL_CHECK(params.transfer_ms_per_kb >= 0 && params.bucket_kb > 0);
  GRIDDECL_CHECK(params.near_seek_factor >= 0 && params.near_seek_factor <= 1);
  GRIDDECL_CHECK_MSG(slowdown_.empty() || slowdown_.size() == num_disks_,
                     "need one slowdown per disk");
  for (double s : slowdown_) GRIDDECL_CHECK(s > 0);
}

double ParallelIoSimulator::slowdown(uint32_t disk) const {
  GRIDDECL_CHECK(disk < num_disks_);
  return slowdown_.empty() ? 1.0 : slowdown_[disk];
}

SimResult ParallelIoSimulator::RunQuery(const DeclusteringMethod& method,
                                        const RangeQuery& query) const {
  GRIDDECL_CHECK_MSG(method.num_disks() == num_disks_,
                     "method declusters over %u disks, simulator has %u",
                     method.num_disks(), num_disks_);
  std::vector<std::vector<uint64_t>> schedule(num_disks_);
  const GridSpec& grid = method.grid();
  query.rect().ForEachBucket([&](const BucketCoords& c) {
    schedule[method.DiskOf(c)].push_back(grid.Linearize(c));
  });
  return RunSchedule(schedule);
}

SimResult ParallelIoSimulator::RunQuery(const DiskMap& map,
                                        const RangeQuery& query) const {
  GRIDDECL_CHECK_MSG(map.num_disks() == num_disks_,
                     "map declusters over %u disks, simulator has %u",
                     map.num_disks(), num_disks_);
  std::vector<std::vector<uint64_t>> schedule(num_disks_);
  // A bucket's grid-linear address is its row-major rank — exactly the
  // map's flat index, so each row span enumerates addresses directly.
  map.ForEachRowSpan(query.rect(), [&](uint64_t begin, uint64_t length) {
    for (uint64_t j = 0; j < length; ++j) {
      schedule[map.DiskAt(begin + j)].push_back(begin + j);
    }
  });
  return RunSchedule(schedule);
}

SimResult ParallelIoSimulator::RunSchedule(
    const std::vector<std::vector<uint64_t>>& per_disk_addresses) const {
  GRIDDECL_CHECK(per_disk_addresses.size() == num_disks_);
  SimResult result;
  result.per_disk.resize(num_disks_);
  const double transfer = params_.TransferMs();
  const double position =
      params_.avg_seek_ms + params_.rotational_latency_ms;
  for (uint32_t d = 0; d < num_disks_; ++d) {
    std::vector<uint64_t> addrs = per_disk_addresses[d];
    std::sort(addrs.begin(), addrs.end());
    const double scale = slowdown(d);
    double busy = 0.0;
    bool have_prev = false;
    uint64_t prev = 0;
    for (uint64_t addr : addrs) {
      double seek_cost = position;
      if (have_prev && addr - prev <= params_.near_gap_buckets) {
        seek_cost *= params_.near_seek_factor;
      }
      busy += (seek_cost + transfer) * scale;
      prev = addr;
      have_prev = true;
    }
    result.per_disk[d].requests = addrs.size();
    result.per_disk[d].busy_ms = busy;
    result.makespan_ms = std::max(result.makespan_ms, busy);
  }
  return result;
}

}  // namespace griddecl
