#ifndef GRIDDECL_SIM_IO_SIM_H_
#define GRIDDECL_SIM_IO_SIM_H_

#include <cstdint>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/eval/disk_map.h"
#include "griddecl/methods/method.h"
#include "griddecl/obs/metrics.h"
#include "griddecl/query/query.h"
#include "griddecl/sim/faults.h"

/// \file
/// Parallel I/O subsystem simulator.
///
/// The paper's metric counts buckets per disk; this module turns those
/// counts into milliseconds under a classic disk service model (seek +
/// rotational latency + transfer), so the library can also answer "what
/// does a response-time unit cost on early-90s hardware, and does the
/// bucket-count metric predict the timed ordering?" (ablation A2).
///
/// Model: each disk serves its queue serially; all disks work in parallel;
/// the query completes when the slowest disk finishes (makespan). Within a
/// disk, requests are served in ascending bucket address; a request whose
/// bucket is "near" the previous one (within `near_gap_buckets` grid-linear
/// positions) pays a reduced seek — a simple, documented locality model
/// standing in for cylinder adjacency.

namespace griddecl {

/// Disk service-time parameters. Defaults approximate a 1993-era SCSI disk
/// (~12 ms average seek, 5400 rpm, ~4 MB/s media rate, 8 KB buckets).
struct DiskParams {
  double avg_seek_ms = 12.0;
  /// Average rotational latency: half a revolution at 5400 rpm.
  double rotational_latency_ms = 5.56;
  double transfer_ms_per_kb = 0.25;
  double bucket_kb = 8.0;
  /// Seek cost multiplier when the previous request was nearby.
  double near_seek_factor = 0.1;
  /// "Nearby" threshold in grid-linear bucket positions.
  uint64_t near_gap_buckets = 64;

  /// Service time of one bucket transfer (no positioning).
  double TransferMs() const { return transfer_ms_per_kb * bucket_kb; }
};

/// Per-disk accounting for one simulated query.
struct DiskSimStats {
  uint64_t requests = 0;
  double busy_ms = 0.0;
};

/// Outcome of one simulated query.
struct SimResult {
  /// Completion time of the slowest disk — the query's response time.
  double makespan_ms = 0.0;
  std::vector<DiskSimStats> per_disk;

  /// Availability accounting (all zero on the healthy path).
  /// Buckets that could not be served at all; a query with any is failed.
  uint64_t unavailable_buckets = 0;
  /// Buckets served by a non-primary replica (degraded re-routing).
  uint64_t rerouted_buckets = 0;
  /// Extra reads issued to rebuild dead-disk buckets from parity groups.
  uint64_t reconstruction_reads = 0;
  /// Failed request attempts that were retried (transient errors).
  uint64_t transient_retries = 0;

  /// True when the query could not be fully answered.
  bool Unavailable() const { return unavailable_buckets > 0; }

  uint64_t TotalRequests() const;
  /// Sum of per-disk busy time: what a single disk would have taken.
  double SerialMs() const;
  /// SerialMs / makespan: achieved I/O parallelism (<= num disks).
  double Speedup() const;
  /// Mean of busy/makespan across disks, in [0, 1].
  double MeanUtilization() const;
};

/// Simulates parallel bucket fetches for queries under a declustering
/// method. Stateless (safe for concurrent use) unless a metrics sink is
/// attached via `set_metrics`.
class ParallelIoSimulator {
 public:
  ParallelIoSimulator(uint32_t num_disks, DiskParams params);

  /// Heterogeneous arrays: `slowdown[d]` scales disk d's service times
  /// (1.0 = nominal, 2.0 = half speed). Must have one positive entry per
  /// disk. Real arrays mix disk generations; a declustering method's
  /// sensitivity to one slow spindle is worth measuring.
  ParallelIoSimulator(uint32_t num_disks, DiskParams params,
                      std::vector<double> slowdown);

  /// Validated factory: rejects (with kInvalidArgument, instead of the
  /// constructors' process-fatal checks) num_disks == 0, negative service
  /// parameters, a slowdown array of the wrong length, and non-positive
  /// slowdown entries.
  static Result<ParallelIoSimulator> Create(uint32_t num_disks,
                                            DiskParams params,
                                            std::vector<double> slowdown =
                                                {});

  uint32_t num_disks() const { return num_disks_; }
  const DiskParams& params() const { return params_; }
  /// Per-disk service-time multiplier.
  double slowdown(uint32_t disk) const;

  /// Attaches an observability sink (non-owning; null detaches). Every
  /// schedule run then records `sim.io.queries` / `sim.io.requests` /
  /// `sim.io.transient_retries` counters, per-disk request counts
  /// (`sim.io.disk_requests.<d>`), and the `sim.io.makespan` histogram
  /// (simulated ms — deterministic, hence no `_ms` suffix). Metrics are
  /// derived from the finished `SimResult`, so simulation output is
  /// bit-identical with or without a sink. Recording is unsynchronized:
  /// concurrent RunQuery calls are only safe with no sink attached.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Simulates fetching every bucket of `query` as declustered by `method`.
  /// `method.num_disks()` must equal `num_disks()`.
  SimResult RunQuery(const DeclusteringMethod& method,
                     const RangeQuery& query) const;

  /// Same simulation, reading disk assignments from a materialized
  /// `DiskMap` instead of virtual dispatch. Build the map once per method
  /// and reuse it across every simulated query of a run.
  SimResult RunQuery(const DiskMap& map, const RangeQuery& query) const;

  /// Lower-level entry: per-disk lists of grid-linear bucket addresses.
  SimResult RunSchedule(
      const std::vector<std::vector<uint64_t>>& per_disk_addresses) const;

  /// Degraded-mode simulation: buckets on failed disks are served per
  /// `plan` (unavailable / re-routed / reconstructed — reconstruction
  /// fans out real extra requests that inflate the makespan), transient
  /// errors retry on the owning disk with backoff, and stragglers scale
  /// service times at each request's start time. `plan` and `faults` must
  /// match the simulator's disk count. Permanent failures use the plan's
  /// terminal mask (this simulator models one query starting at t = 0).
  /// With a no-op fault model and an all-alive plan the result is
  /// bit-identical to `RunQuery`.
  Result<SimResult> RunQueryDegraded(const RangeQuery& query,
                                     const DegradedPlan& plan,
                                     const FaultModel& faults) const;

  /// Fault-aware variant of `RunSchedule`: per-request transient retries
  /// and time-varying straggler slowdowns (evaluated at each request's
  /// start on its disk's serial timeline).
  SimResult RunScheduleWithFaults(
      const std::vector<std::vector<uint64_t>>& per_disk_addresses,
      const FaultModel& faults) const;

 private:
  /// Tallies one finished schedule into `metrics_` (no-op when null).
  void RecordRun(const SimResult& result) const;

  uint32_t num_disks_;
  DiskParams params_;
  /// Empty means homogeneous (all 1.0).
  std::vector<double> slowdown_;
  /// Optional observability sink (non-owning); see `set_metrics`.
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace griddecl

#endif  // GRIDDECL_SIM_IO_SIM_H_
