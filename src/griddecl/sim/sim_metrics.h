#ifndef GRIDDECL_SIM_SIM_METRICS_H_
#define GRIDDECL_SIM_SIM_METRICS_H_

#include <string>
#include <vector>

#include "griddecl/obs/metrics.h"
#include "griddecl/sim/throughput.h"

/// \file
/// Shared metric handles for the two closed-system simulators
/// (`SimulateThroughput`, `SimulateInterleaved`). Internal to sim/ — the
/// public contract is documented on `ThroughputOptions::metrics`.
///
/// Keys live under `sim.throughput.` for both models (they answer the same
/// question of the same workload; the caller knows which model ran), with
/// per-disk request counts suffixed by the decimal disk index. Latency
/// values are *simulated* milliseconds — deterministic model output, so
/// the keys deliberately avoid the `_ms` wall-clock suffix.

namespace griddecl::sim_internal {

struct ClosedSystemMetrics {
  ClosedSystemMetrics(obs::MetricsRegistry* registry, uint32_t num_disks) {
    if (registry == nullptr) return;
    enabled = true;
    admitted = registry->GetCounter("sim.throughput.admitted_queries");
    requests = registry->GetCounter("sim.throughput.requests");
    latency = registry->GetHistogram("sim.throughput.latency",
                                     obs::ExponentialBounds(1, 2, 20));
    disk_requests.reserve(num_disks);
    for (uint32_t d = 0; d < num_disks; ++d) {
      disk_requests.push_back(registry->GetCounter(
          "sim.throughput.disk_requests." + std::to_string(d)));
    }
    unavailable = registry->GetCounter("sim.throughput.unavailable_queries");
    retries = registry->GetCounter("sim.throughput.transient_retries");
    rerouted = registry->GetCounter("sim.throughput.rerouted_buckets");
    reconstructions =
        registry->GetCounter("sim.throughput.reconstruction_reads");
  }

  /// Per-query bookkeeping: one admission plus its per-disk batch sizes.
  void RecordAdmission(const std::vector<std::vector<uint64_t>>& batches) {
    if (!enabled) return;
    admitted->Inc();
    uint64_t total = 0;
    for (size_t d = 0; d < batches.size(); ++d) {
      disk_requests[d]->Inc(batches[d].size());
      total += batches[d].size();
    }
    requests->Inc(total);
  }

  /// Availability tallies copied from the finished result (the simulators
  /// already aggregate them exactly; mirroring keeps one source of truth).
  void RecordOutcome(const ThroughputResult& result) {
    if (!enabled) return;
    unavailable->Inc(result.unavailable_queries);
    retries->Inc(result.transient_retries);
    rerouted->Inc(result.rerouted_buckets);
    reconstructions->Inc(result.reconstruction_reads);
  }

  bool enabled = false;
  obs::Counter* admitted = nullptr;
  obs::Counter* requests = nullptr;
  obs::Counter* unavailable = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* rerouted = nullptr;
  obs::Counter* reconstructions = nullptr;
  obs::Histogram* latency = nullptr;
  std::vector<obs::Counter*> disk_requests;
};

}  // namespace griddecl::sim_internal

#endif  // GRIDDECL_SIM_SIM_METRICS_H_
