#include "griddecl/sim/throughput.h"

#include <algorithm>
#include <optional>
#include <queue>

#include "griddecl/eval/disk_map.h"

namespace griddecl {

double ThroughputResult::MeanDiskUtilization() const {
  if (disk_busy_ms.empty() || total_ms <= 0) return 0;
  double sum = 0;
  for (double b : disk_busy_ms) sum += b / total_ms;
  return sum / static_cast<double>(disk_busy_ms.size());
}

Result<ThroughputResult> SimulateThroughput(const DeclusteringMethod& method,
                                            const Workload& workload,
                                            const ThroughputOptions& options) {
  if (options.concurrency < 1) {
    return Status::InvalidArgument("concurrency must be >= 1");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("workload must be non-empty");
  }
  const uint32_t m = method.num_disks();
  if (!options.slowdown.empty() && options.slowdown.size() != m) {
    return Status::InvalidArgument("need one slowdown entry per disk");
  }
  for (double s : options.slowdown) {
    if (!(s > 0)) {
      return Status::InvalidArgument("slowdown factors must be positive");
    }
  }
  const GridSpec& grid = method.grid();
  const DiskParams& p = options.params;
  const double transfer = p.TransferMs();
  const double position = p.avg_seek_ms + p.rotational_latency_ms;

  // Per-query per-disk batch service time (positioning locality evaluated
  // within the batch, mirroring ParallelIoSimulator).
  auto batch_service = [&](std::vector<uint64_t>& addrs) {
    std::sort(addrs.begin(), addrs.end());
    double busy = 0;
    bool have_prev = false;
    uint64_t prev = 0;
    for (uint64_t addr : addrs) {
      double seek = position;
      if (have_prev && addr - prev <= p.near_gap_buckets) {
        seek *= p.near_seek_factor;
      }
      busy += seek + transfer;
      prev = addr;
      have_prev = true;
    }
    return busy;
  };

  ThroughputResult result;
  result.num_queries = workload.size();
  result.disk_busy_ms.assign(m, 0.0);

  // One materialized map serves every query of the run (subject to the
  // memory cap); bucket grid-linear addresses equal the map's flat indices.
  std::optional<DiskMap> map;
  if (options.use_disk_map &&
      DiskMap::BytesNeeded(grid, m) <= options.max_disk_map_bytes) {
    map.emplace(DiskMap::Build(method));
  }

  std::vector<double> disk_free(m, 0.0);
  // Completion times of in-flight queries (min-heap).
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      in_flight;
  double latency_sum = 0;

  for (const RangeQuery& q : workload.queries) {
    // Admission: wait for a slot.
    double admit = 0;
    if (in_flight.size() >= options.concurrency) {
      admit = in_flight.top();
      in_flight.pop();
    }
    // Collect the query's per-disk batches.
    std::vector<std::vector<uint64_t>> batches(m);
    if (map) {
      map->ForEachRowSpan(q.rect(), [&](uint64_t begin, uint64_t length) {
        for (uint64_t j = 0; j < length; ++j) {
          batches[map->DiskAt(begin + j)].push_back(begin + j);
        }
      });
    } else {
      q.rect().ForEachBucket([&](const BucketCoords& c) {
        batches[method.DiskOf(c)].push_back(grid.Linearize(c));
      });
    }
    double completion = admit;  // Queries with zero requests finish at once.
    for (uint32_t d = 0; d < m; ++d) {
      if (batches[d].empty()) continue;
      const double scale =
          options.slowdown.empty() ? 1.0 : options.slowdown[d];
      const double service = batch_service(batches[d]) * scale;
      const double start = std::max(disk_free[d], admit);
      disk_free[d] = start + service;
      result.disk_busy_ms[d] += service;
      completion = std::max(completion, disk_free[d]);
    }
    in_flight.push(completion);
    const double latency = completion - admit;
    latency_sum += latency;
    result.max_latency_ms = std::max(result.max_latency_ms, latency);
    result.total_ms = std::max(result.total_ms, completion);
  }
  result.mean_latency_ms =
      latency_sum / static_cast<double>(workload.size());
  return result;
}

}  // namespace griddecl
