#include "griddecl/sim/throughput.h"

#include <algorithm>
#include <optional>
#include <queue>

#include "griddecl/eval/disk_map.h"
#include "griddecl/sim/sim_metrics.h"

namespace griddecl {

double ThroughputResult::MeanDiskUtilization() const {
  if (disk_busy_ms.empty() || total_ms <= 0) return 0;
  double sum = 0;
  for (double b : disk_busy_ms) sum += b / total_ms;
  return sum / static_cast<double>(disk_busy_ms.size());
}

Status ValidateThroughputOptions(const ThroughputOptions& options,
                                 const Workload& workload,
                                 uint32_t num_disks) {
  if (options.concurrency < 1) {
    return Status::InvalidArgument("concurrency must be >= 1");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("workload must be non-empty");
  }
  if (!options.slowdown.empty() && options.slowdown.size() != num_disks) {
    return Status::InvalidArgument("need one slowdown entry per disk");
  }
  for (double s : options.slowdown) {
    if (!(s > 0)) {
      return Status::InvalidArgument("slowdown factors must be positive");
    }
  }
  if (options.faults != nullptr &&
      options.faults->num_disks() != num_disks) {
    return Status::InvalidArgument(
        "fault model covers " +
        std::to_string(options.faults->num_disks()) + " disks, method has " +
        std::to_string(num_disks));
  }
  if (options.degraded != nullptr &&
      options.degraded->num_disks() != num_disks) {
    return Status::InvalidArgument(
        "degraded plan covers " +
        std::to_string(options.degraded->num_disks()) +
        " disks, method has " + std::to_string(num_disks));
  }
  return Status::Ok();
}

Result<ThroughputResult> SimulateThroughput(const DeclusteringMethod& method,
                                            const Workload& workload,
                                            const ThroughputOptions& options) {
  const uint32_t m = method.num_disks();
  GRIDDECL_RETURN_IF_ERROR(
      ValidateThroughputOptions(options, workload, m));
  const GridSpec& grid = method.grid();
  const DiskParams& p = options.params;
  const double transfer = p.TransferMs();
  const double position = p.avg_seek_ms + p.rotational_latency_ms;

  // Per-query per-disk batch service time (positioning locality evaluated
  // within the batch, mirroring ParallelIoSimulator).
  auto batch_service = [&](std::vector<uint64_t>& addrs) {
    std::sort(addrs.begin(), addrs.end());
    double busy = 0;
    bool have_prev = false;
    uint64_t prev = 0;
    for (uint64_t addr : addrs) {
      double seek = position;
      if (have_prev && addr - prev <= p.near_gap_buckets) {
        seek *= p.near_seek_factor;
      }
      busy += seek + transfer;
      prev = addr;
      have_prev = true;
    }
    return busy;
  };

  // Fault-aware per-batch service: straggler windows evaluated at each
  // request's start time on the disk's timeline, transient retries re-run
  // the request on the owning disk with a backoff wait. Reduces exactly to
  // `batch_service * scale` when the model is a no-op.
  const FaultModel* fm = options.faults;
  auto faulty_batch_service = [&](std::vector<uint64_t>& addrs, uint32_t d,
                                  double start, double base_scale,
                                  uint64_t& retries) {
    std::sort(addrs.begin(), addrs.end());
    double t = start;
    bool have_prev = false;
    uint64_t prev = 0;
    for (uint64_t addr : addrs) {
      double seek = position;
      if (have_prev && addr - prev <= p.near_gap_buckets) {
        seek *= p.near_seek_factor;
      }
      const uint32_t k = fm->TransientRetries(d, addr);
      for (uint32_t attempt = 0; attempt <= k; ++attempt) {
        t += (seek + transfer) * (base_scale * fm->SlowdownAt(d, t));
        if (attempt < k) t += fm->RetryDelayMs(attempt);
      }
      retries += k;
      prev = addr;
      have_prev = true;
    }
    return t - start;
  };

  const bool faulty = (fm != nullptr && !fm->IsNoop()) ||
                      options.degraded != nullptr;
  // Failure handling needs a plan; default to the plain-method policy
  // (dead-disk buckets are unavailable) when the caller gave none.
  std::optional<DegradedPlan> default_plan;
  const DegradedPlan* plan = options.degraded;
  if (fm != nullptr && fm->has_failures() && plan == nullptr) {
    Result<DegradedPlan> p_plain =
        DegradedPlan::ForMethod(method, fm->terminal_failed());
    if (!p_plain.ok()) return p_plain.status();
    default_plan.emplace(std::move(p_plain).value());
    plan = &*default_plan;
  }
  std::optional<FaultModel> noop_faults;
  if (faulty && fm == nullptr) {
    // A degraded plan without a fault model: static failures, no
    // transients or stragglers.
    noop_faults.emplace(FaultModel::None(m));
    fm = &*noop_faults;
  }

  ThroughputResult result;
  result.num_queries = workload.size();
  result.disk_busy_ms.assign(m, 0.0);

  sim_internal::ClosedSystemMetrics obs_sink(options.metrics, m);

  // One materialized map serves every query of the run (subject to the
  // memory cap); bucket grid-linear addresses equal the map's flat indices.
  std::optional<DiskMap> map;
  if (!faulty && options.use_disk_map &&
      DiskMap::BytesNeeded(grid, m) <= options.max_disk_map_bytes) {
    map.emplace(DiskMap::Build(method));
  }

  std::vector<double> disk_free(m, 0.0);
  // Completion times of in-flight queries (min-heap).
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      in_flight;
  double latency_sum = 0;
  uint64_t answered = 0;

  for (const RangeQuery& q : workload.queries) {
    // Admission: wait for a slot.
    double admit = 0;
    if (in_flight.size() >= options.concurrency) {
      admit = in_flight.top();
      in_flight.pop();
    }
    // Collect the query's per-disk batches.
    std::vector<std::vector<uint64_t>> batches(m);
    if (faulty && plan != nullptr) {
      // Disk liveness as of this query's admission instant.
      const std::vector<bool> mask =
          fm->has_failures() ? fm->FailedMaskAt(admit) : plan->failed();
      Result<DegradedPlan::QueryPlan> qp = plan->ExpandQuery(q, &mask);
      if (!qp.ok()) return qp.status();
      if (qp.value().unavailable_buckets > 0) {
        // The query fails at admission: no reads are issued, the slot
        // frees immediately.
        ++result.unavailable_queries;
        in_flight.push(admit);
        result.total_ms = std::max(result.total_ms, admit);
        continue;
      }
      batches = std::move(qp.value().per_disk);
      result.rerouted_buckets += qp.value().rerouted_buckets;
      result.reconstruction_reads += qp.value().reconstruction_reads;
    } else if (map) {
      map->ForEachRowSpan(q.rect(), [&](uint64_t begin, uint64_t length) {
        for (uint64_t j = 0; j < length; ++j) {
          batches[map->DiskAt(begin + j)].push_back(begin + j);
        }
      });
    } else {
      q.rect().ForEachBucket([&](const BucketCoords& c) {
        batches[method.DiskOf(c)].push_back(grid.Linearize(c));
      });
    }
    obs_sink.RecordAdmission(batches);
    double completion = admit;  // Queries with zero requests finish at once.
    for (uint32_t d = 0; d < m; ++d) {
      if (batches[d].empty()) continue;
      const double scale =
          options.slowdown.empty() ? 1.0 : options.slowdown[d];
      const double start = std::max(disk_free[d], admit);
      const double service =
          faulty ? faulty_batch_service(batches[d], d, start, scale,
                                        result.transient_retries)
                 : batch_service(batches[d]) * scale;
      disk_free[d] = start + service;
      result.disk_busy_ms[d] += service;
      completion = std::max(completion, disk_free[d]);
    }
    in_flight.push(completion);
    const double latency = completion - admit;
    ++answered;
    latency_sum += latency;
    obs::Observe(obs_sink.latency, latency);
    result.max_latency_ms = std::max(result.max_latency_ms, latency);
    result.total_ms = std::max(result.total_ms, completion);
  }
  result.mean_latency_ms =
      answered == 0 ? 0.0 : latency_sum / static_cast<double>(answered);
  obs_sink.RecordOutcome(result);
  return result;
}

}  // namespace griddecl
