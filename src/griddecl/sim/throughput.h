#ifndef GRIDDECL_SIM_THROUGHPUT_H_
#define GRIDDECL_SIM_THROUGHPUT_H_

#include <cstdint>
#include <vector>

#include "griddecl/obs/metrics.h"
#include "griddecl/query/workload.h"
#include "griddecl/sim/faults.h"
#include "griddecl/sim/io_sim.h"

/// \file
/// Multi-query (multiuser) throughput simulation.
///
/// The single-query makespan in `io_sim.h` matches the paper's metric; real
/// parallel database systems, however, run queries concurrently, and the
/// multiuser behaviour of declustering strategies is its own line of work
/// (Ghandeharizadeh & DeWitt, ICDE 1990 — the paper's reference [21]).
/// This module closes that gap with a closed-system model:
///
///  * a fixed multiprogramming level (MPL) of queries is kept in flight;
///  * when a query is admitted, its bucket fetches are appended to the
///    per-disk FIFO queues (a disk finishes one query's batch before
///    starting the next — batches are not interleaved);
///  * a query completes when its last disk batch completes; the next
///    workload query is admitted at that moment.
///
/// Reported: total completion time, throughput, per-query latency
/// statistics, and per-disk utilization. A method that balances individual
/// queries poorly shows up here as idle disks and lower throughput.

namespace griddecl {

/// Closed-system simulation knobs.
struct ThroughputOptions {
  /// Multiprogramming level: queries kept concurrently in flight.
  uint32_t concurrency = 4;
  /// Disk service-time model (shared with ParallelIoSimulator).
  DiskParams params;
  /// Optional per-disk service-time multipliers (1.0 = nominal); empty
  /// means a homogeneous array. Must match the method's disk count.
  std::vector<double> slowdown;
  /// Materialize the method into one `DiskMap` for the whole run and read
  /// bucket→disk assignments from it (identical results, no per-bucket
  /// virtual dispatch). Falls back to the virtual path when the table
  /// would exceed `max_disk_map_bytes`.
  bool use_disk_map = true;
  uint64_t max_disk_map_bytes = 256ull << 20;
  /// Optional fault injection (non-owning; must outlive the call and match
  /// the method's disk count). Disk liveness is evaluated at each query's
  /// admission time, so a failure `at_ms` mid-run degrades only the
  /// queries admitted after it. Null means a healthy run — the result is
  /// then bit-identical to the pre-fault-model simulator.
  const FaultModel* faults = nullptr;
  /// How dead-disk buckets are served (non-owning). When `faults` has
  /// permanent failures and this is null, buckets on dead disks are
  /// unavailable (the plain-method policy). Degraded reads only target
  /// disks that never fail (the plan is built against the terminal mask),
  /// which keeps mid-run failure handling conservative but deterministic.
  const DegradedPlan* degraded = nullptr;
  /// Optional observability sink (non-owning, single simulation at a time).
  /// Both closed-system simulators record admissions / unavailability /
  /// retry / reroute / reconstruction counters, per-disk request counts
  /// (`sim.throughput.disk_requests.<d>`), and the simulated per-query
  /// latency histogram `sim.throughput.latency` (simulated ms — a model
  /// output, deterministic, hence no `_ms` suffix). Null compiles the
  /// instrumentation to no-ops; simulation results are bit-identical
  /// either way.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Result of simulating one workload.
struct ThroughputResult {
  /// Completion time of the last query.
  double total_ms = 0;
  uint64_t num_queries = 0;
  /// Queries per second.
  double ThroughputQps() const {
    return total_ms <= 0 ? 0 : 1000.0 * static_cast<double>(num_queries) /
                                   total_ms;
  }
  /// Mean/max latency over *answered* queries (unavailable queries are
  /// excluded; they fail at admission rather than running).
  double mean_latency_ms = 0;
  double max_latency_ms = 0;
  /// Busy time per disk.
  std::vector<double> disk_busy_ms;
  /// Mean busy/total across disks, in [0, 1].
  double MeanDiskUtilization() const;

  /// Availability accounting (all zero on the healthy path).
  /// Queries that touched a bucket no strategy could serve.
  uint64_t unavailable_queries = 0;
  /// Failed request attempts that were retried (transient errors).
  uint64_t transient_retries = 0;
  /// Extra reads issued to rebuild dead-disk buckets from parity groups.
  uint64_t reconstruction_reads = 0;
  /// Buckets served by a non-primary replica.
  uint64_t rerouted_buckets = 0;
  /// Fraction of queries answered, in [0, 1].
  double Availability() const {
    return num_queries == 0
               ? 1.0
               : 1.0 - static_cast<double>(unavailable_queries) /
                           static_cast<double>(num_queries);
  }
};

/// Shared validation for the closed-system simulators (`SimulateThroughput`
/// and `SimulateInterleaved`): concurrency >= 1, non-empty workload,
/// positive slowdown entries of the right arity, and fault model /
/// degraded plan disk counts matching `num_disks`.
Status ValidateThroughputOptions(const ThroughputOptions& options,
                                 const Workload& workload,
                                 uint32_t num_disks);

/// Simulates the workload's queries through `method`'s declustering at the
/// given multiprogramming level. Queries are admitted in workload order.
/// `method.num_disks()` disks are modeled. Requires concurrency >= 1 and a
/// non-empty workload.
Result<ThroughputResult> SimulateThroughput(const DeclusteringMethod& method,
                                            const Workload& workload,
                                            const ThroughputOptions& options);

}  // namespace griddecl

#endif  // GRIDDECL_SIM_THROUGHPUT_H_
