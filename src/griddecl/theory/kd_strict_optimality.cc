#include "griddecl/theory/kd_strict_optimality.h"

#include <algorithm>

#include "griddecl/common/math_util.h"
#include "griddecl/grid/rect.h"

namespace griddecl {

namespace {

/// Backtracking searcher over an arbitrary k-d grid. Cells are assigned in
/// row-major order; after assigning the cell at coordinates `c`, every
/// hyper-rectangle whose componentwise-maximum corner is `c` lies entirely
/// in the assigned prefix (componentwise <= implies row-major <=) and is
/// re-validated, so complete assignments satisfy every constraint.
class KdSearcher {
 public:
  KdSearcher(const GridSpec& grid, uint32_t num_disks, uint64_t max_nodes)
      : grid_(grid),
        m_(num_disks),
        max_nodes_(max_nodes),
        alloc_(static_cast<size_t>(grid.num_buckets()), 0),
        counts_(num_disks, 0) {
    // Precompute coordinates of every row-major index.
    coords_.reserve(static_cast<size_t>(grid.num_buckets()));
    grid.ForEachBucket(
        [&](const BucketCoords& c) { coords_.push_back(c); });
  }

  StrictOptimalitySearchResult Run() {
    StrictOptimalitySearchResult result;
    nodes_ = 0;
    budget_hit_ = false;
    if (Assign(0, 0)) {
      result.outcome = SearchOutcome::kFound;
      result.allocation = alloc_;
    } else {
      result.outcome = budget_hit_ ? SearchOutcome::kBudgetExhausted
                                   : SearchOutcome::kInfeasible;
    }
    result.nodes_explored = nodes_;
    return result;
  }

 private:
  bool CornerRectsOk(const BucketCoords& corner) {
    const uint32_t k = grid_.num_dims();
    // Odometer over the rectangle's low corner, each lo[i] in [0, corner_i].
    BucketCoords lo(k);
    for (;;) {
      // Count disks over the rect [lo, corner].
      std::fill(counts_.begin(), counts_.end(), 0u);
      uint32_t max_count = 0;
      uint64_t volume = 1;
      for (uint32_t i = 0; i < k; ++i) volume *= corner[i] - lo[i] + 1;
      const uint64_t bound = CeilDiv(volume, m_);
      bool ok = true;
      BucketCoords cell = lo;
      for (;;) {
        const uint32_t v = alloc_[static_cast<size_t>(grid_.Linearize(cell))];
        if (++counts_[v] > bound) {
          ok = false;
          break;
        }
        max_count = std::max(max_count, counts_[v]);
        uint32_t dim = k;
        bool done = false;
        for (;;) {
          if (dim == 0) {
            done = true;
            break;
          }
          --dim;
          if (++cell[dim] <= corner[dim]) break;
          cell[dim] = lo[dim];
        }
        if (done) break;
      }
      if (!ok) return false;
      // Advance the low corner odometer.
      uint32_t dim = k;
      for (;;) {
        if (dim == 0) return true;
        --dim;
        if (++lo[dim] <= corner[dim]) break;
        lo[dim] = 0;
      }
    }
  }

  bool Assign(uint64_t p, uint32_t max_used) {
    if (p == grid_.num_buckets()) return true;
    const uint32_t limit = std::min(m_ - 1, max_used);
    for (uint32_t v = 0; v <= limit; ++v) {
      if (++nodes_ > max_nodes_) {
        budget_hit_ = true;
        return false;
      }
      alloc_[static_cast<size_t>(p)] = v;
      if (CornerRectsOk(coords_[static_cast<size_t>(p)])) {
        if (Assign(p + 1, std::max(max_used, v + 1))) return true;
        if (budget_hit_) return false;
      }
    }
    return false;
  }

  const GridSpec& grid_;
  const uint32_t m_;
  const uint64_t max_nodes_;
  std::vector<uint32_t> alloc_;
  std::vector<BucketCoords> coords_;
  std::vector<uint32_t> counts_;
  uint64_t nodes_ = 0;
  bool budget_hit_ = false;
};

}  // namespace

Result<StrictOptimalitySearchResult> FindStrictlyOptimalAllocationKd(
    const GridSpec& grid, uint32_t num_disks,
    const StrictOptimalitySearchOptions& options) {
  if (num_disks < 1) {
    return Status::InvalidArgument("disks must be >= 1");
  }
  if (grid.num_buckets() > 4096) {
    return Status::InvalidArgument(
        "k-d search grids are capped at 4096 buckets (exponential search)");
  }
  KdSearcher searcher(grid, num_disks, options.max_nodes);
  return searcher.Run();
}

bool AllocationIsStrictlyOptimalKd(const GridSpec& grid, uint32_t num_disks,
                                   const std::vector<uint32_t>& allocation) {
  GRIDDECL_CHECK(allocation.size() == grid.num_buckets());
  for (uint32_t v : allocation) GRIDDECL_CHECK(v < num_disks);
  const uint32_t k = grid.num_dims();
  std::vector<uint32_t> counts(num_disks, 0);
  // Enumerate all (lo, hi) pairs per dimension via a 2k-digit odometer.
  std::vector<std::pair<uint32_t, uint32_t>> ranges(k, {0, 0});
  for (;;) {
    BucketCoords lo(k);
    BucketCoords hi(k);
    uint64_t volume = 1;
    for (uint32_t i = 0; i < k; ++i) {
      lo[i] = ranges[i].first;
      hi[i] = ranges[i].second;
      volume *= hi[i] - lo[i] + 1;
    }
    const uint64_t bound = CeilDiv(volume, num_disks);
    std::fill(counts.begin(), counts.end(), 0u);
    bool ok = true;
    const BucketRect rect = BucketRect::Create(lo, hi).value();
    rect.ForEachBucket([&](const BucketCoords& c) {
      if (!ok) return;
      const uint32_t v = allocation[static_cast<size_t>(grid.Linearize(c))];
      if (++counts[v] > bound) ok = false;
    });
    if (!ok) return false;

    uint32_t dim = k;
    for (;;) {
      if (dim == 0) return true;
      --dim;
      auto& [first, second] = ranges[dim];
      if (second + 1 < grid.dim(dim)) {
        ++second;
        break;
      }
      if (first + 1 < grid.dim(dim)) {
        ++first;
        second = first;
        break;
      }
      first = second = 0;
    }
  }
}

}  // namespace griddecl
