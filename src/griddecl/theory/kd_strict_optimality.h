#ifndef GRIDDECL_THEORY_KD_STRICT_OPTIMALITY_H_
#define GRIDDECL_THEORY_KD_STRICT_OPTIMALITY_H_

#include <cstdint>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/grid/grid_spec.h"
#include "griddecl/theory/strict_optimality.h"

/// \file
/// k-dimensional generalization of the strict-optimality search.
///
/// The paper states its impossibility theorem for two attributes; since any
/// k-d grid contains 2-d sub-grids (fix all but two coordinates), the
/// theorem lifts to k dimensions immediately. This module makes the lifted
/// statement checkable directly: exhaustive backtracking over allocations
/// of an arbitrary GridSpec with every axis-aligned hyper-rectangle held to
/// the ceil(|Q|/M) bound. Useful both to confirm the lift computationally
/// and to explore the feasible cases (M <= 3, M = 5) in three dimensions,
/// where the classical 2-d linear allocations do NOT trivially extend.

namespace griddecl {

/// Decides whether a strictly optimal allocation of `grid` onto
/// `num_disks` exists. Requires grid.num_buckets() <= 4096 (the search is
/// exponential; larger inputs are a usage error).
Result<StrictOptimalitySearchResult> FindStrictlyOptimalAllocationKd(
    const GridSpec& grid, uint32_t num_disks,
    const StrictOptimalitySearchOptions& options = {});

/// Exhaustively verifies that the row-major `allocation` of `grid` is
/// strictly optimal for every hyper-rectangular query.
bool AllocationIsStrictlyOptimalKd(const GridSpec& grid, uint32_t num_disks,
                                   const std::vector<uint32_t>& allocation);

}  // namespace griddecl

#endif  // GRIDDECL_THEORY_KD_STRICT_OPTIMALITY_H_
