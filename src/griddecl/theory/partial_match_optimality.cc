#include "griddecl/theory/partial_match_optimality.h"

#include <algorithm>

#include "griddecl/eval/metrics.h"
#include "griddecl/query/generator.h"

namespace griddecl {

bool DmPartialMatchCondition(const GridSpec& grid, uint32_t num_disks,
                             const std::vector<uint32_t>& unspecified_dims) {
  if (unspecified_dims.size() == 1) return true;
  for (uint32_t dim : unspecified_dims) {
    GRIDDECL_CHECK(dim < grid.num_dims());
    if (grid.dim(dim) % num_disks == 0) return true;
  }
  return false;
}

Result<bool> VerifyOptimalForPartialMatchClass(
    const DeclusteringMethod& method,
    const std::vector<uint32_t>& specified_dims) {
  QueryGenerator gen(method.grid());
  Result<Workload> workload =
      gen.AllPartialMatch(specified_dims, "pm-class");
  if (!workload.ok()) return workload.status();
  for (const RangeQuery& q : workload.value().queries) {
    if (!IsOptimalFor(method, q)) return false;
  }
  return true;
}

std::vector<std::vector<uint32_t>> AllDimSubsets(uint32_t k) {
  GRIDDECL_CHECK(k <= 20);
  std::vector<std::vector<uint32_t>> subsets;
  subsets.reserve(size_t{1} << k);
  for (uint32_t mask = 0; mask < (uint32_t{1} << k); ++mask) {
    std::vector<uint32_t> subset;
    for (uint32_t i = 0; i < k; ++i) {
      if ((mask >> i) & 1) subset.push_back(i);
    }
    subsets.push_back(std::move(subset));
  }
  std::stable_sort(subsets.begin(), subsets.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() < b.size();
                   });
  return subsets;
}

std::string MethodRestrictionSummary(const std::string& registry_name) {
  if (registry_name == "dm" || registry_name == "cmd" ||
      registry_name == "gdm" || registry_name == "gdm-search") {
    return "none (any M, any d_i)";
  }
  if (registry_name == "linear" || registry_name == "random") {
    return "none (baseline)";
  }
  if (registry_name == "fx" || registry_name == "fx-auto" ||
      registry_name == "exfx") {
    return "intended for d_i powers of 2; defined for all inputs";
  }
  if (registry_name == "ecc") {
    return "M a power of 2 and every d_i a power of 2";
  }
  if (registry_name == "hcam" || registry_name == "zcam") {
    return "none (any M, any d_i)";
  }
  return "unknown method";
}

}  // namespace griddecl
