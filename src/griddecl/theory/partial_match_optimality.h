#ifndef GRIDDECL_THEORY_PARTIAL_MATCH_OPTIMALITY_H_
#define GRIDDECL_THEORY_PARTIAL_MATCH_OPTIMALITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "griddecl/common/status.h"
#include "griddecl/methods/method.h"

/// \file
/// The classical partial-match optimality results the paper summarizes in
/// Section 3.1 / Table 1, as executable predicates:
///
///  * DM/CMD is strictly optimal for every partial-match query with exactly
///    one unspecified attribute, and for every partial-match query with at
///    least one unspecified attribute i such that `d_i mod M == 0`
///    (Du & Sobolewski 1982; Li et al. 1992).
///  * FX requires power-of-two domains; ECC requires power-of-two domains
///    and a power-of-two disk count; HCAM has no applicability restriction
///    (Table 1's "restrictions" column).
///
/// `VerifyOptimalForPartialMatchClass` is the empirical side: it enumerates
/// an entire query class and checks optimality exhaustively, turning each
/// theorem into a machine-checked fact on concrete configurations.

namespace griddecl {

/// Closed-form DM/CMD condition for the class of partial-match queries whose
/// *unspecified* dimensions are exactly `unspecified_dims`: true when the
/// class is guaranteed strictly optimal under DM.
bool DmPartialMatchCondition(const GridSpec& grid, uint32_t num_disks,
                             const std::vector<uint32_t>& unspecified_dims);

/// Exhaustively checks that `method` answers every partial-match query with
/// exactly the dimensions in `specified_dims` fixed at the optimum.
/// Cost: prod over specified d_i queries, each scanning its buckets.
Result<bool> VerifyOptimalForPartialMatchClass(
    const DeclusteringMethod& method,
    const std::vector<uint32_t>& specified_dims);

/// All subsets of {0, ..., k-1}, smallest first; helper for sweeping every
/// partial-match class of a k-d grid.
std::vector<std::vector<uint32_t>> AllDimSubsets(uint32_t k);

/// Static "restrictions" row of the paper's Table 1 for a method registry
/// name ("dm", "fx", "ecc", "hcam"): human-readable applicability
/// constraints on M and the d_i.
std::string MethodRestrictionSummary(const std::string& registry_name);

}  // namespace griddecl

#endif  // GRIDDECL_THEORY_PARTIAL_MATCH_OPTIMALITY_H_
