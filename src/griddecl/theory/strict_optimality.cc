#include "griddecl/theory/strict_optimality.h"

#include <algorithm>
#include <utility>

#include "griddecl/common/check.h"
#include "griddecl/common/math_util.h"

namespace griddecl {

namespace {

/// Backtracking search context. The grid is filled in row-major order; after
/// tentatively placing a value at (r, c), every rectangle whose bottom-right
/// corner is (r, c) is fully contained in the assigned prefix and gets
/// checked, so any complete assignment is strictly optimal by construction.
class Searcher {
 public:
  Searcher(uint32_t rows, uint32_t cols, uint32_t num_disks,
           uint64_t max_nodes)
      : rows_(rows),
        cols_(cols),
        m_(num_disks),
        max_nodes_(max_nodes),
        alloc_(static_cast<size_t>(rows) * cols, 0),
        counts_(num_disks, 0) {}

  StrictOptimalitySearchResult Run() {
    StrictOptimalitySearchResult result;
    budget_hit_ = false;
    nodes_ = 0;
    if (Assign(0, /*max_used=*/0)) {
      result.outcome = SearchOutcome::kFound;
      result.allocation = alloc_;
    } else {
      result.outcome = budget_hit_ ? SearchOutcome::kBudgetExhausted
                                   : SearchOutcome::kInfeasible;
    }
    result.nodes_explored = nodes_;
    return result;
  }

 private:
  uint32_t At(uint32_t r, uint32_t c) const {
    return alloc_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Checks every rectangle with bottom-right corner (r, c) against the
  /// ceil(|Q|/M) bound, assuming all cells up to (r, c) are assigned.
  bool CornerRectsOk(uint32_t r, uint32_t c) {
    for (uint32_t lo_r = r + 1; lo_r-- > 0;) {
      const uint32_t height = r - lo_r + 1;
      std::fill(counts_.begin(), counts_.end(), 0u);
      uint32_t max_count = 0;
      for (uint32_t lo_c = c + 1; lo_c-- > 0;) {
        // Grow the rectangle leftwards by one column.
        for (uint32_t i = lo_r; i <= r; ++i) {
          const uint32_t v = At(i, lo_c);
          max_count = std::max(max_count, ++counts_[v]);
        }
        const uint64_t volume =
            static_cast<uint64_t>(height) * (c - lo_c + 1);
        if (max_count > CeilDiv(volume, m_)) return false;
      }
    }
    return true;
  }

  /// Recursive assignment of cell index `p` (row-major). `max_used` is the
  /// number of distinct disk ids used so far; canonical labeling allows
  /// values 0..min(max_used, M-1).
  bool Assign(uint32_t p, uint32_t max_used) {
    if (p == rows_ * cols_) return true;
    const uint32_t r = p / cols_;
    const uint32_t c = p % cols_;
    const uint32_t limit = std::min(m_ - 1, max_used);
    for (uint32_t v = 0; v <= limit; ++v) {
      if (++nodes_ > max_nodes_) {
        budget_hit_ = true;
        return false;
      }
      alloc_[p] = v;
      if (CornerRectsOk(r, c)) {
        const uint32_t next_max = std::max(max_used, v + 1);
        if (Assign(p + 1, next_max)) return true;
        if (budget_hit_) return false;
      }
    }
    return false;
  }

  const uint32_t rows_;
  const uint32_t cols_;
  const uint32_t m_;
  const uint64_t max_nodes_;
  std::vector<uint32_t> alloc_;
  std::vector<uint32_t> counts_;
  uint64_t nodes_ = 0;
  bool budget_hit_ = false;
};

}  // namespace

Result<StrictOptimalitySearchResult> FindStrictlyOptimalAllocation(
    uint32_t rows, uint32_t cols, uint32_t num_disks,
    const StrictOptimalitySearchOptions& options) {
  if (rows < 1 || cols < 1 || num_disks < 1) {
    return Status::InvalidArgument("rows, cols and disks must be >= 1");
  }
  if (rows > 64 || cols > 64) {
    return Status::InvalidArgument(
        "search grids are capped at 64x64 (exponential search)");
  }
  Searcher searcher(rows, cols, num_disks, options.max_nodes);
  return searcher.Run();
}

Result<std::pair<uint32_t, uint32_t>> KnownStrictlyOptimalCoefficients(
    uint32_t num_disks) {
  switch (num_disks) {
    case 1:
      return std::pair<uint32_t, uint32_t>{1, 1};
    case 2:
      return std::pair<uint32_t, uint32_t>{1, 1};
    case 3:
      return std::pair<uint32_t, uint32_t>{1, 2};
    case 5:
      return std::pair<uint32_t, uint32_t>{1, 2};
    default:
      return Status::Unsupported(
          "no linear strictly optimal allocation is known for M = " +
          std::to_string(num_disks) +
          " (the paper proves none exists at all for M > 5)");
  }
}

bool AllocationIsStrictlyOptimal(uint32_t rows, uint32_t cols,
                                 uint32_t num_disks,
                                 const std::vector<uint32_t>& allocation) {
  GRIDDECL_CHECK(allocation.size() == static_cast<size_t>(rows) * cols);
  for (uint32_t v : allocation) GRIDDECL_CHECK(v < num_disks);
  std::vector<uint32_t> counts(num_disks, 0);
  for (uint32_t lo_r = 0; lo_r < rows; ++lo_r) {
    for (uint32_t hi_r = lo_r; hi_r < rows; ++hi_r) {
      for (uint32_t lo_c = 0; lo_c < cols; ++lo_c) {
        std::fill(counts.begin(), counts.end(), 0u);
        uint32_t max_count = 0;
        for (uint32_t hi_c = lo_c; hi_c < cols; ++hi_c) {
          for (uint32_t r = lo_r; r <= hi_r; ++r) {
            const uint32_t v =
                allocation[static_cast<size_t>(r) * cols + hi_c];
            max_count = std::max(max_count, ++counts[v]);
          }
          const uint64_t volume =
              static_cast<uint64_t>(hi_r - lo_r + 1) * (hi_c - lo_c + 1);
          if (max_count > CeilDiv(volume, num_disks)) return false;
        }
      }
    }
  }
  return true;
}

uint32_t SmallestInfeasibleSquareSide(
    uint32_t num_disks, uint32_t max_side, bool* budget_hit,
    const StrictOptimalitySearchOptions& options) {
  GRIDDECL_CHECK(budget_hit != nullptr);
  *budget_hit = false;
  for (uint32_t side = 2; side <= max_side; ++side) {
    Result<StrictOptimalitySearchResult> r =
        FindStrictlyOptimalAllocation(side, side, num_disks, options);
    GRIDDECL_CHECK(r.ok());
    switch (r.value().outcome) {
      case SearchOutcome::kInfeasible:
        return side;
      case SearchOutcome::kBudgetExhausted:
        *budget_hit = true;
        return 0;
      case SearchOutcome::kFound:
        break;
    }
  }
  return 0;
}

}  // namespace griddecl
