#ifndef GRIDDECL_THEORY_STRICT_OPTIMALITY_H_
#define GRIDDECL_THEORY_STRICT_OPTIMALITY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "griddecl/common/status.h"

/// \file
/// Machinery behind the paper's theoretical contribution: *there is no
/// declustering method that is strictly optimal for range queries when the
/// number of disks exceeds 5.*
///
/// A 2-D allocation of an `rows x cols` grid onto M disks is *strictly
/// optimal* when every rectangular query Q satisfies
/// `max_disk |Q on disk| == ceil(|Q| / M)`. `FindStrictlyOptimalAllocation`
/// decides existence for a concrete grid by exhaustive backtracking over
/// allocations with:
///
///  * incremental constraint checking — after placing cell (r, c), every
///    rectangle whose bottom-right corner is (r, c) is re-validated, so a
///    completed search tree leaf satisfies *all* rectangle constraints;
///  * canonical-labeling symmetry breaking — disk ids are interchangeable,
///    so each cell may only use ids up to (1 + max id used so far), cutting
///    an M! factor.
///
/// Because strict optimality on a grid implies strict optimality on every
/// sub-grid, `kInfeasible` for some grid size proves impossibility for all
/// larger grids — which is how the theorem is exhibited computationally
/// (bench E8): for every M in {4, 6, 7, ...} a small grid already fails,
/// while for M in {1, 2, 3, 5} the classical linear allocations succeed on
/// arbitrarily large grids.

namespace griddecl {

/// Outcome of the backtracking search.
enum class SearchOutcome {
  /// An allocation satisfying every rectangle constraint was found.
  kFound,
  /// Exhaustively proven: no such allocation exists for this grid/M.
  kInfeasible,
  /// Node budget exhausted before a definite answer.
  kBudgetExhausted,
};

/// Search report.
struct StrictOptimalitySearchResult {
  SearchOutcome outcome = SearchOutcome::kBudgetExhausted;
  /// Backtracking nodes expanded.
  uint64_t nodes_explored = 0;
  /// Row-major allocation (rows*cols entries, values < M); only when found.
  std::vector<uint32_t> allocation;
};

/// Search knobs.
struct StrictOptimalitySearchOptions {
  /// Abort with kBudgetExhausted beyond this many nodes.
  uint64_t max_nodes = 50'000'000;
};

/// Decides whether a strictly optimal allocation of an `rows x cols` grid
/// onto `num_disks` disks exists. Requires rows, cols, num_disks >= 1 and a
/// grid of at most 64x64 (the search is exponential; larger inputs are a
/// usage error, not a scaling knob).
Result<StrictOptimalitySearchResult> FindStrictlyOptimalAllocation(
    uint32_t rows, uint32_t cols, uint32_t num_disks,
    const StrictOptimalitySearchOptions& options = {});

/// Returns GDM coefficients (a, b) such that `disk(i, j) = (a*i + b*j) mod M`
/// is strictly optimal for all range queries on arbitrarily large 2-D grids.
/// Known to exist exactly for M in {1, 2, 3, 5} (verified in tests via
/// exhaustive checking); kUnsupported otherwise.
Result<std::pair<uint32_t, uint32_t>> KnownStrictlyOptimalCoefficients(
    uint32_t num_disks);

/// Verifies that the row-major `allocation` of an `rows x cols` grid is
/// strictly optimal (every rectangle, exhaustive). Utility for tests and
/// the E8 bench.
bool AllocationIsStrictlyOptimal(uint32_t rows, uint32_t cols,
                                 uint32_t num_disks,
                                 const std::vector<uint32_t>& allocation);

/// Smallest square grid side (searching 2..max_side) for which no strictly
/// optimal allocation exists, or 0 when every tested side is feasible.
/// The per-side search uses `options`; a side whose search exhausts its
/// budget stops the scan (returned in *budget_hit).
uint32_t SmallestInfeasibleSquareSide(
    uint32_t num_disks, uint32_t max_side, bool* budget_hit,
    const StrictOptimalitySearchOptions& options = {});

}  // namespace griddecl

#endif  // GRIDDECL_THEORY_STRICT_OPTIMALITY_H_
