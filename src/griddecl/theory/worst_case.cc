#include "griddecl/theory/worst_case.h"

#include <algorithm>
#include <vector>

#include "griddecl/common/math_util.h"

namespace griddecl {

Result<WorstCaseResult> FindWorstCaseQuery(const DeclusteringMethod& method,
                                           uint64_t max_volume) {
  const GridSpec& grid = method.grid();
  if (grid.num_buckets() > (uint64_t{1} << 20)) {
    return Status::InvalidArgument(
        "worst-case scan is exhaustive; grid exceeds 2^20 buckets");
  }
  const uint32_t k = grid.num_dims();
  const uint32_t m = method.num_disks();
  if (max_volume == 0) max_volume = grid.num_buckets();

  // Snapshot the allocation for cheap repeated lookups.
  std::vector<uint32_t> alloc;
  alloc.reserve(static_cast<size_t>(grid.num_buckets()));
  grid.ForEachBucket(
      [&](const BucketCoords& c) { alloc.push_back(method.DiskOf(c)); });

  WorstCaseResult worst;
  bool have_worst = false;
  std::vector<uint32_t> counts(m, 0);

  // Enumerate (lo, hi) pairs for all dims except the last via an odometer;
  // the last dimension's hi grows incrementally with counts maintained.
  std::vector<std::pair<uint32_t, uint32_t>> ranges(k - 0, {0, 0});
  // ranges[0..k-2] iterate fully; ranges[k-1].first iterates, .second grows.
  for (;;) {
    // Fixed part of the rectangle (all dims but the last, plus lo of last).
    uint64_t fixed_volume = 1;
    for (uint32_t i = 0; i + 1 < k; ++i) {
      fixed_volume *= ranges[i].second - ranges[i].first + 1;
    }
    const uint32_t last_lo = ranges[k - 1].first;
    std::fill(counts.begin(), counts.end(), 0u);
    uint32_t max_count = 0;
    for (uint32_t last_hi = last_lo; last_hi < grid.dim(k - 1); ++last_hi) {
      const uint64_t volume = fixed_volume * (last_hi - last_lo + 1);
      if (volume > max_volume) break;
      // Add the "column": every cell with last coordinate == last_hi.
      BucketCoords cell(k);
      for (uint32_t i = 0; i + 1 < k; ++i) cell[i] = ranges[i].first;
      cell[k - 1] = last_hi;
      for (;;) {
        const uint32_t v =
            alloc[static_cast<size_t>(grid.Linearize(cell))];
        max_count = std::max(max_count, ++counts[v]);
        // Odometer over dims 0..k-2 within their [first, second] ranges.
        uint32_t dim = k - 1;
        bool done = false;
        for (;;) {
          if (dim == 0) {
            done = true;
            break;
          }
          --dim;
          if (++cell[dim] <= ranges[dim].second) break;
          cell[dim] = ranges[dim].first;
        }
        if (done) break;
      }
      const uint64_t optimal = CeilDiv(volume, m);
      const uint64_t deviation = max_count - optimal;
      const bool better =
          !have_worst || deviation > worst.AdditiveDeviation() ||
          (deviation == worst.AdditiveDeviation() &&
           static_cast<double>(max_count) / static_cast<double>(optimal) >
               worst.Ratio());
      if (better) {
        BucketCoords lo(k);
        BucketCoords hi(k);
        for (uint32_t i = 0; i + 1 < k; ++i) {
          lo[i] = ranges[i].first;
          hi[i] = ranges[i].second;
        }
        lo[k - 1] = last_lo;
        hi[k - 1] = last_hi;
        worst.rect = BucketRect::Create(lo, hi).value();
        worst.volume = volume;
        worst.response = max_count;
        worst.optimal = optimal;
        have_worst = true;
      }
    }
    // Advance the outer odometer: dims 0..k-2 over (first, second) pairs,
    // then the last dimension's lo.
    uint32_t dim = k;
    for (;;) {
      if (dim == 0) return worst;
      --dim;
      if (dim == k - 1) {
        if (++ranges[dim].first < grid.dim(dim)) break;
        ranges[dim].first = 0;
        continue;
      }
      auto& [first, second] = ranges[dim];
      if (second + 1 < grid.dim(dim)) {
        ++second;
        break;
      }
      if (first + 1 < grid.dim(dim)) {
        ++first;
        second = first;
        break;
      }
      first = second = 0;
    }
  }
}

}  // namespace griddecl
