#ifndef GRIDDECL_THEORY_WORST_CASE_H_
#define GRIDDECL_THEORY_WORST_CASE_H_

#include <cstdint>

#include "griddecl/common/status.h"
#include "griddecl/grid/rect.h"
#include "griddecl/methods/method.h"

/// \file
/// Exhaustive worst-case analysis of a declustering method.
///
/// The theory the paper surveys gives per-method worst-case *bounds*; for
/// a concrete grid and disk count the exact worst query can simply be
/// computed. `FindWorstCaseQuery` enumerates every hyper-rectangle (up to
/// an optional volume cap) and returns the one with the largest additive
/// deviation `response - ceil(|Q|/M)`, breaking ties toward the larger
/// response/optimal ratio. Exponential in grid size — intended for the
/// modest grids where the answer is interesting (e.g. "what is the worst
/// query DM can see on 32x32 with 16 disks, and how bad is it?").

namespace griddecl {

/// Worst query found and its costs.
struct WorstCaseResult {
  BucketRect rect = BucketRect::Point(BucketCoords(1));
  uint64_t volume = 0;
  uint64_t response = 0;
  uint64_t optimal = 0;

  uint64_t AdditiveDeviation() const { return response - optimal; }
  double Ratio() const {
    return optimal == 0 ? 1.0
                        : static_cast<double>(response) /
                              static_cast<double>(optimal);
  }
};

/// Scans every rectangle of `method.grid()` with volume <= `max_volume`
/// (0 = unlimited) and returns the worst. The scan maintains per-disk
/// counts incrementally while extending the last dimension, so the cost is
/// O(#rectangles * column height), not O(#rectangles * volume).
/// Fails for grids above 2^20 buckets (accidental-cost guard).
Result<WorstCaseResult> FindWorstCaseQuery(const DeclusteringMethod& method,
                                           uint64_t max_volume = 0);

}  // namespace griddecl

#endif  // GRIDDECL_THEORY_WORST_CASE_H_
