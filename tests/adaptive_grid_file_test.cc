#include "griddecl/gridfile/adaptive_grid_file.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"

namespace griddecl {
namespace {

Schema UnitSchema() {
  return Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
}

TEST(AdaptiveGridFileTest, CreateValidation) {
  EXPECT_FALSE(
      AdaptiveGridFile::Create(UnitSchema(), {.bucket_capacity = 0}).ok());
  EXPECT_FALSE(AdaptiveGridFile::Create(
                   UnitSchema(), {.bucket_capacity = 4,
                                  .max_partitions_per_dim = 0})
                   .ok());
  const auto f = AdaptiveGridFile::Create(UnitSchema(), {}).value();
  EXPECT_EQ(f.grid().value().ToString(), "1x1");
  EXPECT_EQ(f.num_records(), 0u);
  EXPECT_EQ(f.num_splits(), 0u);
}

TEST(AdaptiveGridFileTest, InsertValidation) {
  auto f = AdaptiveGridFile::Create(UnitSchema(), {}).value();
  EXPECT_FALSE(f.Insert({0.5}).ok());
  EXPECT_FALSE(f.Insert({0.5, 0.5, 0.5}).ok());
  EXPECT_FALSE(f.Insert({0.5, std::nan("")}).ok());
  EXPECT_TRUE(f.Insert({0.5, 0.5}).ok());
}

TEST(AdaptiveGridFileTest, SplitsOnOverflow) {
  AdaptiveGridFile f =
      AdaptiveGridFile::Create(UnitSchema(), {.bucket_capacity = 4}).value();
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  EXPECT_GT(f.num_splits(), 0u);
  EXPECT_GT(f.grid().value().num_buckets(), 1u);
  // No cell above capacity while splits remain possible.
  EXPECT_LE(f.MaxLoadFactor(), 1.0);
}

TEST(AdaptiveGridFileTest, BoundariesStaySortedAndCoverDomain) {
  AdaptiveGridFile f =
      AdaptiveGridFile::Create(UnitSchema(), {.bucket_capacity = 3}).value();
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  for (uint32_t dim = 0; dim < 2; ++dim) {
    const std::vector<double>& b = f.boundaries(dim);
    ASSERT_GE(b.size(), 2u);
    EXPECT_EQ(b.front(), 0.0);
    EXPECT_EQ(b.back(), 1.0);
    for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  }
}

TEST(AdaptiveGridFileTest, EveryRecordInItsCell) {
  AdaptiveGridFile f =
      AdaptiveGridFile::Create(UnitSchema(), {.bucket_capacity = 5}).value();
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  // Each record id appears in exactly the cell BucketOfRecord names.
  uint64_t seen = 0;
  const GridSpec grid = f.grid().value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    for (RecordId id : f.BucketContents(c)) {
      EXPECT_EQ(f.BucketOfRecord(id), c);
      ++seen;
    }
  });
  EXPECT_EQ(seen, f.num_records());
}

TEST(AdaptiveGridFileTest, RangeSearchMatchesBruteForce) {
  AdaptiveGridFile f =
      AdaptiveGridFile::Create(UnitSchema(), {.bucket_capacity = 6}).value();
  Rng rng(4);
  std::vector<Record> data;
  for (int i = 0; i < 400; ++i) {
    Record r = {rng.NextDouble(), rng.NextDouble()};
    data.push_back(r);
    ASSERT_TRUE(f.Insert(r).ok());
  }
  for (int trial = 0; trial < 15; ++trial) {
    double x0 = rng.NextDouble();
    double x1 = rng.NextDouble();
    if (x0 > x1) std::swap(x0, x1);
    double y0 = rng.NextDouble();
    double y1 = rng.NextDouble();
    if (y0 > y1) std::swap(y0, y1);
    const auto hits = f.RangeSearch({x0, y0}, {x1, y1}).value();
    std::vector<RecordId> expected;
    for (RecordId id = 0; id < data.size(); ++id) {
      const Record& r = data[static_cast<size_t>(id)];
      if (x0 <= r[0] && r[0] <= x1 && y0 <= r[1] && r[1] <= y1) {
        expected.push_back(id);
      }
    }
    EXPECT_EQ(hits, expected) << trial;
  }
}

TEST(AdaptiveGridFileTest, AdaptsToSkewBetterThanItStarted) {
  // Heavily clustered data: the adaptive file must cut the hot region into
  // many cells, keeping cells within capacity where splitting is allowed.
  AdaptiveGridFile f =
      AdaptiveGridFile::Create(UnitSchema(),
                               {.bucket_capacity = 8,
                                .max_partitions_per_dim = 32})
          .value();
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    // 90% of records in a tiny corner.
    const bool hot = rng.NextBool(0.9);
    const double scale = hot ? 0.05 : 1.0;
    ASSERT_TRUE(
        f.Insert({rng.NextDouble() * scale, rng.NextDouble() * scale}).ok());
  }
  EXPECT_LE(f.MaxLoadFactor(), 1.0);
  // The hot corner got finer boundaries than the cold region: more than
  // half of all boundaries lie in the first 10% of the domain.
  for (uint32_t dim = 0; dim < 2; ++dim) {
    const std::vector<double>& b = f.boundaries(dim);
    const auto in_hot = std::count_if(
        b.begin(), b.end(), [](double v) { return v > 0 && v < 0.1; });
    EXPECT_GT(in_hot, static_cast<int64_t>(b.size()) / 2) << "dim " << dim;
  }
}

TEST(AdaptiveGridFileTest, PartitionCapStopsSplitting) {
  AdaptiveGridFile f =
      AdaptiveGridFile::Create(UnitSchema(),
                               {.bucket_capacity = 2,
                                .max_partitions_per_dim = 2})
          .value();
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  const GridSpec grid = f.grid().value();
  EXPECT_LE(grid.dim(0), 2u);
  EXPECT_LE(grid.dim(1), 2u);
  // Cells necessarily overflow once the cap is hit.
  EXPECT_GT(f.MaxLoadFactor(), 1.0);
}

TEST(AdaptiveGridFileTest, DuplicateValuesDoNotLoopForever) {
  // 100 identical records cannot be separated by any boundary; insertion
  // must terminate with an overflowing cell rather than spinning.
  AdaptiveGridFile f =
      AdaptiveGridFile::Create(UnitSchema(), {.bucket_capacity = 4}).value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.Insert({0.25, 0.75}).ok());
  }
  EXPECT_EQ(f.num_records(), 100u);
  EXPECT_GT(f.MaxLoadFactor(), 1.0);
}

TEST(AdaptiveGridFileTest, SnapshotPreservesRecordsAndBoundaries) {
  AdaptiveGridFile f =
      AdaptiveGridFile::Create(UnitSchema(), {.bucket_capacity = 6}).value();
  Rng rng(8);
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  const GridFile snapshot = f.Snapshot().value();
  EXPECT_EQ(snapshot.num_records(), f.num_records());
  EXPECT_EQ(snapshot.grid(), f.grid().value());
  // Record placement agrees cell-for-cell.
  for (RecordId id = 0; id < f.num_records(); ++id) {
    EXPECT_EQ(snapshot.BucketOfRecord(id), f.BucketOfRecord(id));
  }
  // And the same range query returns the same records.
  const auto a = f.RangeSearch({0.1, 0.2}, {0.6, 0.9}).value();
  auto b = snapshot.RangeSearch({0.1, 0.2}, {0.6, 0.9}).value();
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(AdaptiveGridFileTest, InducedGridUsableForDeclustering) {
  AdaptiveGridFile f =
      AdaptiveGridFile::Create(UnitSchema(), {.bucket_capacity = 8}).value();
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  const GridSpec grid = f.grid().value();
  // A query resolved by the adaptive file is a legal query on its grid.
  const RangeQuery q = f.ResolveRange({0.2, 0.2}, {0.7, 0.7}).value();
  EXPECT_TRUE(q.rect().WithinGrid(grid));
}

}  // namespace
}  // namespace griddecl
