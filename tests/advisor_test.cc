#include "griddecl/eval/advisor.h"

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

Workload SmallSquareWorkload(const GridSpec& grid, size_t count,
                             uint64_t seed) {
  QueryGenerator gen(grid);
  Rng rng(seed);
  return gen.SampledPlacements({3, 3}, count, &rng, "3x3").value();
}

TEST(AdvisorTest, Validation) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  Workload tiny = SmallSquareWorkload(grid, 3, 1);
  EXPECT_FALSE(AdviseDeclustering(grid, 8, tiny).ok());

  Workload w = SmallSquareWorkload(grid, 40, 1);
  AdvisorOptions opts;
  opts.train_fraction = 0.0;
  EXPECT_FALSE(AdviseDeclustering(grid, 8, w, opts).ok());
  opts.train_fraction = 1.0;
  EXPECT_FALSE(AdviseDeclustering(grid, 8, w, opts).ok());

  // Query outside grid.
  const GridSpec big = GridSpec::Create({32, 32}).value();
  Workload alien = SmallSquareWorkload(big, 40, 1);
  EXPECT_FALSE(AdviseDeclustering(grid, 8, alien).ok());

  // No constructible candidate.
  AdvisorOptions none;
  none.candidates = {"ecc"};
  const GridSpec odd = GridSpec::Create({15, 15}).value();
  Workload odd_w = SmallSquareWorkload(odd, 40, 1);
  EXPECT_FALSE(AdviseDeclustering(odd, 8, odd_w, none).ok());
}

TEST(AdvisorTest, ScoresSortedAndConsistent) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const Workload w = SmallSquareWorkload(grid, 200, 2);
  const Advice advice = AdviseDeclustering(grid, 16, w).value();
  ASSERT_GE(advice.scores.size(), 4u);
  for (size_t i = 1; i < advice.scores.size(); ++i) {
    EXPECT_LE(advice.scores[i - 1].test_mean_response,
              advice.scores[i].test_mean_response);
  }
  EXPECT_EQ(advice.recommended, advice.scores.front().name);
  ASSERT_NE(advice.method, nullptr);
  EXPECT_EQ(advice.method->name(), advice.recommended);
  EXPECT_EQ(advice.method->num_disks(), 16u);
}

TEST(AdvisorTest, RecommendsAgainstDmOnSmallSquares) {
  // On small square workloads, DM/CMD is the paper's loser; whatever wins,
  // it must not be DM.
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const Workload w = SmallSquareWorkload(grid, 200, 3);
  const Advice advice = AdviseDeclustering(grid, 16, w).value();
  EXPECT_NE(advice.recommended, "DM/CMD");
}

TEST(AdvisorTest, OptimizedCandidateIncludedAndCompetitive) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const Workload w = SmallSquareWorkload(grid, 120, 4);
  AdvisorOptions opts;
  opts.include_optimized = true;
  const Advice advice = AdviseDeclustering(grid, 8, w, opts).value();
  bool found_opt = false;
  for (const MethodScore& s : advice.scores) {
    if (s.name.find("+opt") != std::string::npos) found_opt = true;
  }
  EXPECT_TRUE(found_opt);
}

TEST(AdvisorTest, NoOptimizeFlagRespected) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const Workload w = SmallSquareWorkload(grid, 60, 5);
  AdvisorOptions opts;
  opts.include_optimized = false;
  const Advice advice = AdviseDeclustering(grid, 8, w, opts).value();
  for (const MethodScore& s : advice.scores) {
    EXPECT_EQ(s.name.find("+opt"), std::string::npos) << s.name;
  }
}

TEST(AdvisorTest, CustomCandidateList) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const Workload w = SmallSquareWorkload(grid, 60, 6);
  AdvisorOptions opts;
  opts.candidates = {"dm", "linear"};
  opts.include_optimized = false;
  const Advice advice = AdviseDeclustering(grid, 8, w, opts).value();
  ASSERT_EQ(advice.scores.size(), 2u);
  for (const MethodScore& s : advice.scores) {
    EXPECT_TRUE(s.name == "DM/CMD" || s.name == "Linear") << s.name;
  }
}

TEST(AdvisorTest, DeterministicForSeed) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const Workload w = SmallSquareWorkload(grid, 80, 7);
  const Advice a = AdviseDeclustering(grid, 8, w).value();
  const Advice b = AdviseDeclustering(grid, 8, w).value();
  EXPECT_EQ(a.recommended, b.recommended);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_EQ(a.scores[i].name, b.scores[i].name);
    EXPECT_DOUBLE_EQ(a.scores[i].test_mean_response,
                     b.scores[i].test_mean_response);
  }
}

}  // namespace
}  // namespace griddecl
