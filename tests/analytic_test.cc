#include "griddecl/eval/analytic.h"

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/eval/metrics.h"
#include "griddecl/methods/dm.h"
#include "griddecl/methods/fx.h"

namespace griddecl {
namespace {

BucketRect RandomRect(const GridSpec& grid, Rng* rng) {
  BucketCoords lo(grid.num_dims());
  BucketCoords hi(grid.num_dims());
  for (uint32_t i = 0; i < grid.num_dims(); ++i) {
    const uint32_t a = static_cast<uint32_t>(rng->NextBelow(grid.dim(i)));
    const uint32_t b = static_cast<uint32_t>(rng->NextBelow(grid.dim(i)));
    lo[i] = std::min(a, b);
    hi[i] = std::max(a, b);
  }
  return BucketRect::Create(lo, hi).value();
}

TEST(AnalyticTest, Validation) {
  const BucketRect rect = BucketRect::Create({0, 0}, {3, 3}).value();
  EXPECT_FALSE(AnalyticGdmCounts({1, 1}, rect, 0).ok());
  EXPECT_FALSE(AnalyticGdmCounts({1}, rect, 4).ok());
  EXPECT_FALSE(AnalyticFxCounts(rect, 0).ok());
  EXPECT_FALSE(AnalyticFxCounts(rect, 6).ok());  // Not a power of two.
  EXPECT_TRUE(AnalyticFxCounts(rect, 8).ok());
}

TEST(AnalyticTest, GdmHandComputed) {
  // 2x2 rect at origin, DM, M=4: disks {0,1,1,2}.
  const BucketRect rect = BucketRect::Create({0, 0}, {1, 1}).value();
  const auto counts = AnalyticGdmCounts({1, 1}, rect, 4).value();
  EXPECT_EQ(counts, (std::vector<uint64_t>{1, 2, 1, 0}));
  EXPECT_EQ(MaxCount(counts), 2u);
}

TEST(AnalyticTest, GdmMatchesBruteForceRandomized) {
  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    const uint32_t k = 2 + static_cast<uint32_t>(rng.NextBelow(2));
    std::vector<uint32_t> dims;
    std::vector<uint32_t> coeffs;
    for (uint32_t i = 0; i < k; ++i) {
      dims.push_back(4 + static_cast<uint32_t>(rng.NextBelow(29)));
      coeffs.push_back(1 + static_cast<uint32_t>(rng.NextBelow(7)));
    }
    const GridSpec grid = GridSpec::Create(dims).value();
    const uint32_t m = 2 + static_cast<uint32_t>(rng.NextBelow(15));
    const auto gdm = GdmMethod::Create(grid, m, coeffs).value();
    const BucketRect rect = RandomRect(grid, &rng);
    const RangeQuery q = RangeQuery::Create(grid, rect).value();
    const std::vector<uint64_t> brute = PerDiskCounts(*gdm, q);
    const std::vector<uint64_t> fast =
        AnalyticGdmCounts(coeffs, rect, m).value();
    EXPECT_EQ(brute, fast) << "trial " << trial << " rect "
                           << rect.ToString() << " M=" << m;
  }
}

TEST(AnalyticTest, FxMatchesBruteForceRandomized) {
  Rng rng(202);
  for (int trial = 0; trial < 60; ++trial) {
    const uint32_t k = 2 + static_cast<uint32_t>(rng.NextBelow(2));
    std::vector<uint32_t> dims;
    for (uint32_t i = 0; i < k; ++i) {
      dims.push_back(4 + static_cast<uint32_t>(rng.NextBelow(29)));
    }
    const GridSpec grid = GridSpec::Create(dims).value();
    const uint32_t m = uint32_t{1} << (1 + rng.NextBelow(5));  // 2..32.
    const auto fx = FxMethod::Create(grid, m).value();
    const BucketRect rect = RandomRect(grid, &rng);
    const RangeQuery q = RangeQuery::Create(grid, rect).value();
    const std::vector<uint64_t> brute = PerDiskCounts(*fx, q);
    const std::vector<uint64_t> fast = AnalyticFxCounts(rect, m).value();
    EXPECT_EQ(brute, fast) << "trial " << trial << " rect "
                           << rect.ToString() << " M=" << m;
  }
}

TEST(AnalyticTest, CountsSumToVolume) {
  Rng rng(303);
  const GridSpec grid = GridSpec::Create({40, 40}).value();
  for (int trial = 0; trial < 20; ++trial) {
    const BucketRect rect = RandomRect(grid, &rng);
    const auto counts = AnalyticGdmCounts({1, 1}, rect, 7).value();
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;
    EXPECT_EQ(total, rect.Volume());
  }
}

TEST(AnalyticTest, FullPeriodRowIsUniform) {
  // A 1 x 4M row under DM hits every residue exactly 4 times.
  const BucketRect rect = BucketRect::Create({3, 0}, {3, 31}).value();
  const auto counts = AnalyticGdmCounts({1, 1}, rect, 8).value();
  for (uint64_t c : counts) EXPECT_EQ(c, 4u);
}

}  // namespace
}  // namespace griddecl
