#include "griddecl/sim/availability.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

/// Small, fast configuration covering all three strategies (M = 4 and an
/// 8x8 grid are powers of two, so ECC participates).
AvailabilitySweepOptions SmallOptions() {
  AvailabilitySweepOptions opts;
  opts.grid_dims = {8, 8};
  opts.num_disks = 4;
  opts.query_shape = {2, 2};
  opts.num_queries = 25;
  opts.max_failed = 1;
  opts.replication = {2};
  opts.seed = 42;
  opts.methods = {"dm", "ecc", "hcam"};
  return opts;
}

TEST(AvailabilitySweepTest, Validation) {
  // max_failed == num_disks is a valid (fully dead) sweep; past it is not.
  AvailabilitySweepOptions too_dead = SmallOptions();
  too_dead.max_failed = 5;
  EXPECT_FALSE(RunAvailabilitySweep(too_dead).ok());

  AvailabilitySweepOptions bad_r = SmallOptions();
  bad_r.replication = {1};
  EXPECT_FALSE(RunAvailabilitySweep(bad_r).ok());

  AvailabilitySweepOptions bad_faults = SmallOptions();
  const FaultModel fm = FaultModel::None(4);
  bad_faults.sim.faults = &fm;
  EXPECT_FALSE(RunAvailabilitySweep(bad_faults).ok());

  AvailabilitySweepOptions unknown = SmallOptions();
  unknown.methods = {"no-such-method"};
  EXPECT_FALSE(RunAvailabilitySweep(unknown).ok());
}

TEST(AvailabilitySweepTest, SeedDeterminism) {
  // The acceptance check for A11: the whole sweep — workload sampling,
  // failed-disk choice, routing, simulation — is a pure function of the
  // options, so two runs at the same seed agree byte-for-byte.
  const AvailabilitySweep a = RunAvailabilitySweep(SmallOptions()).value();
  const AvailabilitySweep b = RunAvailabilitySweep(SmallOptions()).value();
  EXPECT_EQ(a.ToJson(), b.ToJson());

  AvailabilitySweepOptions other = SmallOptions();
  other.seed = 43;
  const AvailabilitySweep c = RunAvailabilitySweep(other).value();
  EXPECT_EQ(a.points.size(), c.points.size());
  EXPECT_NE(a.ToJson(), c.ToJson());
}

TEST(AvailabilitySweepTest, StrategiesBehaveAsDesigned) {
  const AvailabilitySweep sweep =
      RunAvailabilitySweep(SmallOptions()).value();

  // dm, ecc, hcam x (plain, replica-r2) x (f = 0, 1), plus ecc's extra
  // ecc-reconstruct pair.
  EXPECT_EQ(sweep.points.size(), 3u * 2u * 2u + 2u);

  bool saw_ecc_reconstruct = false;
  for (const AvailabilityPoint& p : sweep.points) {
    if (p.failed_disks == 0) {
      // Healthy baseline: everything answered, ratio pinned to 1.
      EXPECT_DOUBLE_EQ(p.availability, 1.0);
      EXPECT_EQ(p.unavailable_queries, 0u);
      EXPECT_DOUBLE_EQ(p.degraded_ratio, 1.0);
    }
    if (p.strategy == "plain" && p.failed_disks == 1) {
      // No redundancy: 2x2 queries on 4 disks always touch a dead disk
      // with these methods' balanced placements... at minimum some do.
      EXPECT_LT(p.availability, 1.0);
    }
    if (p.strategy == "replica-r2" && p.failed_disks == 1) {
      // One failure is always survivable with two chained replicas.
      EXPECT_DOUBLE_EQ(p.availability, 1.0);
    }
    if (p.strategy == "ecc-reconstruct") {
      saw_ecc_reconstruct = true;
      EXPECT_EQ(p.method, "ecc");  // Points carry registry names.
      if (p.failed_disks == 1) {
        // Distance 3: every bucket on the dead disk is rebuilt.
        EXPECT_DOUBLE_EQ(p.availability, 1.0);
        EXPECT_GT(p.reconstruction_reads, 0u);
      }
    }
  }
  EXPECT_TRUE(saw_ecc_reconstruct);
}

TEST(AvailabilitySweepTest, AllDisksFailedIsCleanZeroAvailability) {
  // The f == M edge: every strategy — plain, chained replicas, and the
  // parity/ECC reconstruct path with its whole group dead — must report a
  // clean zero, not divide by zero or walk out of bounds.
  AvailabilitySweepOptions opts = SmallOptions();
  opts.max_failed = 4;
  const AvailabilitySweep sweep = RunAvailabilitySweep(opts).value();
  int all_dead_points = 0;
  for (const AvailabilityPoint& p : sweep.points) {
    EXPECT_GE(p.availability, 0.0);
    EXPECT_LE(p.availability, 1.0);
    EXPECT_EQ(p.mean_latency_ms, p.mean_latency_ms) << "NaN latency";
    EXPECT_EQ(p.degraded_ratio, p.degraded_ratio) << "NaN degraded ratio";
    if (p.failed_disks == 4) {
      all_dead_points++;
      EXPECT_DOUBLE_EQ(p.availability, 0.0) << p.strategy;
      EXPECT_DOUBLE_EQ(p.mean_latency_ms, 0.0) << p.strategy;
      EXPECT_DOUBLE_EQ(p.degraded_ratio, 0.0) << p.strategy;
      EXPECT_EQ(p.unavailable_queries, 25u) << p.strategy;
    }
  }
  // One fully-dead point per (method, strategy) pair: 3 methods x plain
  // and replica-r2, plus ecc-reconstruct for the one ECC method.
  EXPECT_EQ(all_dead_points, 7);
}

TEST(AvailabilitySweepTest, JsonShape) {
  const AvailabilitySweep sweep =
      RunAvailabilitySweep(SmallOptions()).value();
  const std::string json = sweep.ToJson();
  EXPECT_NE(json.find("\"experiment\": \"a11-degraded\""),
            std::string::npos);
  EXPECT_NE(json.find("\"grid\": [8, 8]"), std::string::npos);
  EXPECT_NE(json.find("\"strategy\": \"ecc-reconstruct\""),
            std::string::npos);
  EXPECT_NE(json.find("\"availability\": "), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  // Byte-compatibility guard: the classic kDisk report must not grow the
  // correlated-mode fields.
  EXPECT_EQ(json.find("failure_domain"), std::string::npos);
  EXPECT_EQ(json.find("failed_domains"), std::string::npos);
  EXPECT_EQ(json.find("policies"), std::string::npos);
}

/// Base configuration for the correlated (A16) sweeps: 8 disks over 4
/// nodes in two 2-node zones — the topology where chained self-colocates,
/// spread keeps same-zone copies, and zone_aware spans both zones.
AvailabilitySweepOptions CorrelatedOptions() {
  AvailabilitySweepOptions opts;
  opts.grid_dims = {8, 8};
  opts.num_disks = 8;
  opts.query_shape = {2, 2};
  opts.num_queries = 40;
  opts.max_failed = 1;
  opts.replication = {2};
  opts.seed = 42;
  opts.methods = {"dm"};
  opts.failure_domain = FailureDomain::kZone;
  opts.topology = cluster::Topology::Grid(4, 2, 2).value();
  return opts;
}

TEST(AvailabilitySweepTest, CorrelatedModeValidation) {
  // Correlated mode needs a valid topology.
  AvailabilitySweepOptions no_topo = CorrelatedOptions();
  no_topo.topology = cluster::Topology();
  EXPECT_FALSE(RunAvailabilitySweep(no_topo).ok());

  // max_failed counts domains now: 3 > the 2 zones.
  AvailabilitySweepOptions too_dead = CorrelatedOptions();
  too_dead.max_failed = 3;
  EXPECT_FALSE(RunAvailabilitySweep(too_dead).ok());

  // forced_domain_order ids must be distinct and in range.
  AvailabilitySweepOptions bad_order = CorrelatedOptions();
  bad_order.forced_domain_order = {5};
  EXPECT_FALSE(RunAvailabilitySweep(bad_order).ok());
  bad_order.forced_domain_order = {1, 1};
  EXPECT_FALSE(RunAvailabilitySweep(bad_order).ok());

  // Correlated-only knobs are rejected in classic mode.
  AvailabilitySweepOptions classic = SmallOptions();
  classic.forced_domain_order = {0};
  EXPECT_FALSE(RunAvailabilitySweep(classic).ok());
  classic = SmallOptions();
  classic.placement_policies = {cluster::PlacementPolicy::kSpread};
  EXPECT_FALSE(RunAvailabilitySweep(classic).ok());
}

TEST(AvailabilitySweepTest, CorrelatedJsonCarriesTheDomainFields) {
  const AvailabilitySweep sweep =
      RunAvailabilitySweep(CorrelatedOptions()).value();
  const std::string json = sweep.ToJson();
  EXPECT_NE(json.find("\"failure_domain\": \"zone\""), std::string::npos);
  EXPECT_NE(json.find("\"topology\": \"4x2x2\""), std::string::npos);
  EXPECT_NE(json.find("\"policies\": [\"chained\", \"spread\", "
                      "\"zone_aware\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"failed_domains\": 1"), std::string::npos);
  // Strategies are the placement policies, not the chained offsets; ECC
  // does not participate in correlated mode.
  EXPECT_NE(json.find("\"strategy\": \"zone_aware-r2\""), std::string::npos);
  EXPECT_EQ(json.find("ecc-reconstruct"), std::string::npos);

  // Determinism carries over to the correlated mode.
  const AvailabilitySweep again =
      RunAvailabilitySweep(CorrelatedOptions()).value();
  EXPECT_EQ(json, again.ToJson());
}

/// Worst-case (over all single-zone kills) availability of one policy at
/// copies=2, probing each zone explicitly via forced_domain_order.
double WorstZoneKillAvailability(cluster::PlacementPolicy policy) {
  double worst = 1.0;
  for (uint32_t zone = 0; zone < 2; ++zone) {
    AvailabilitySweepOptions opts = CorrelatedOptions();
    opts.placement_policies = {policy};
    opts.forced_domain_order = {zone};
    const AvailabilitySweep sweep = RunAvailabilitySweep(opts).value();
    for (const AvailabilityPoint& p : sweep.points) {
      if (p.strategy == "plain" || p.failed_domains == 0) continue;
      worst = std::min(worst, p.availability);
    }
  }
  return worst;
}

TEST(AvailabilitySweepTest, ZoneAwareBeatsSpreadBeatsChainedOnZoneKills) {
  // The A16 property at copies=2: zone_aware places every bucket's copies
  // in both zones, so any single-zone kill leaves availability at 1.0;
  // spread only guarantees distinct *nodes* (same-zone neighbors), and
  // chained self-colocates even-disk copies — strictly worse again.
  const double chained =
      WorstZoneKillAvailability(cluster::PlacementPolicy::kChained);
  const double spread =
      WorstZoneKillAvailability(cluster::PlacementPolicy::kSpread);
  const double zone_aware =
      WorstZoneKillAvailability(cluster::PlacementPolicy::kZoneAware);

  EXPECT_DOUBLE_EQ(zone_aware, 1.0);
  EXPECT_GE(zone_aware, spread);
  EXPECT_GE(spread, chained);
  EXPECT_LT(chained, 1.0);
}

TEST(AvailabilitySweepTest, RepairModeValidationAndJson) {
  // Repair is a correlated-mode extension with a sane MTTR model.
  AvailabilitySweepOptions classic = SmallOptions();
  classic.repair = true;
  EXPECT_FALSE(RunAvailabilitySweep(classic).ok());
  AvailabilitySweepOptions bad = CorrelatedOptions();
  bad.repair = true;
  bad.repair_detect_ms = -1.0;
  EXPECT_FALSE(RunAvailabilitySweep(bad).ok());
  bad.repair_detect_ms = 40.0;
  bad.repair_ms_per_replica = -1.0;
  EXPECT_FALSE(RunAvailabilitySweep(bad).ok());

  AvailabilitySweepOptions opts = CorrelatedOptions();
  opts.repair = true;
  const AvailabilitySweep sweep = RunAvailabilitySweep(opts).value();
  const std::string json = sweep.ToJson();
  EXPECT_NE(json.find("\"repair\": true"), std::string::npos);
  EXPECT_NE(json.find("\"repair_detect_ms\": "), std::string::npos);
  EXPECT_NE(json.find("\"strategy\": \"zone_aware-r2+repair\""),
            std::string::npos);
  EXPECT_NE(json.find("\"replicas_rebuilt\": "), std::string::npos);
  EXPECT_NE(json.find("\"redundancy_restored_ms\": "), std::string::npos);
  EXPECT_EQ(json, RunAvailabilitySweep(opts).value().ToJson());

  // Every repair point's restoration time follows the model; f = 0 points
  // have nothing to rebuild.
  for (const AvailabilityPoint& p : sweep.points) {
    if (p.strategy.find("+repair") == std::string::npos) {
      EXPECT_EQ(p.replicas_rebuilt, 0u);
      continue;
    }
    if (p.failed_domains == 0) EXPECT_EQ(p.replicas_rebuilt, 0u);
    const double want =
        p.replicas_rebuilt == 0
            ? 0.0
            : opts.repair_detect_ms +
                  p.replicas_rebuilt * opts.repair_ms_per_replica;
    EXPECT_DOUBLE_EQ(p.redundancy_restored_ms, want) << p.strategy;
  }

  // Byte-compatibility guard: a non-repair correlated report must not grow
  // any of the repair fields.
  const std::string plain =
      RunAvailabilitySweep(CorrelatedOptions()).value().ToJson();
  EXPECT_EQ(plain.find("repair"), std::string::npos);
  EXPECT_EQ(plain.find("replicas_rebuilt"), std::string::npos);
  EXPECT_EQ(plain.find("redundancy_restored_ms"), std::string::npos);
}

TEST(AvailabilitySweepTest, RepairHealsEarlierKillsBeforeTheNextOne) {
  // A17 headline: at f = 2 the non-repair strategy has had two unhealed
  // node kills, while +repair healed the first before the second landed.
  // Killing one node per zone (0 then 2, or 0 then 3) catches zone_aware
  // with both copies of some bucket dead in at least one of the orders;
  // with repair the first kill's replicas were rebuilt in the surviving
  // zone-0 node, so every order stays fully available.
  double worst_plain = 1.0;
  double worst_repaired = 1.0;
  for (const uint32_t second : {2u, 3u}) {
    AvailabilitySweepOptions opts = CorrelatedOptions();
    opts.failure_domain = FailureDomain::kNode;
    opts.max_failed = 2;
    opts.forced_domain_order = {0, second};
    opts.placement_policies = {cluster::PlacementPolicy::kZoneAware};
    opts.repair = true;
    const AvailabilitySweep sweep = RunAvailabilitySweep(opts).value();
    for (const AvailabilityPoint& p : sweep.points) {
      if (p.failed_domains != 2) continue;
      if (p.strategy == "zone_aware-r2") {
        worst_plain = std::min(worst_plain, p.availability);
      } else if (p.strategy == "zone_aware-r2+repair") {
        worst_repaired = std::min(worst_repaired, p.availability);
        EXPECT_GT(p.replicas_rebuilt, 0u);
        EXPECT_GT(p.redundancy_restored_ms, 0.0);
      }
    }
  }
  EXPECT_DOUBLE_EQ(worst_repaired, 1.0);
  EXPECT_LT(worst_plain, 1.0);
}

}  // namespace
}  // namespace griddecl
