#include "griddecl/common/backoff.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(BackoffTest, ValidateRejectsOutOfDomainPolicies) {
  EXPECT_TRUE(ValidateBackoffPolicy({}).ok());
  BackoffPolicy p;
  p.base_ms = -1.0;
  EXPECT_FALSE(ValidateBackoffPolicy(p).ok());
  p = {};
  p.multiplier = 0.5;
  EXPECT_FALSE(ValidateBackoffPolicy(p).ok());
  p = {};
  p.cap_ms = -0.1;
  EXPECT_FALSE(ValidateBackoffPolicy(p).ok());
  p = {};
  p.jitter = 1.5;
  EXPECT_FALSE(ValidateBackoffPolicy(p).ok());
  p = {};
  p.max_attempts = 0;
  EXPECT_FALSE(ValidateBackoffPolicy(p).ok());
}

TEST(BackoffTest, RawDelayGrowsExponentiallyAndCaps) {
  BackoffPolicy p;
  p.base_ms = 1.0;
  p.multiplier = 2.0;
  p.cap_ms = 10.0;
  EXPECT_DOUBLE_EQ(BackoffRawDelayMs(p, 0), 1.0);
  EXPECT_DOUBLE_EQ(BackoffRawDelayMs(p, 1), 2.0);
  EXPECT_DOUBLE_EQ(BackoffRawDelayMs(p, 2), 4.0);
  EXPECT_DOUBLE_EQ(BackoffRawDelayMs(p, 3), 8.0);
  EXPECT_DOUBLE_EQ(BackoffRawDelayMs(p, 4), 10.0);
  // A huge retry index must not overflow to inf/nan.
  EXPECT_DOUBLE_EQ(BackoffRawDelayMs(p, 100000), 10.0);
}

TEST(BackoffTest, DegeneratePolicyIsConstantAndJitterFree) {
  // The policy the simulators use: multiplier 1, jitter 0 — the delay is
  // base_ms exactly, bit-for-bit, for every retry and seed.
  BackoffPolicy p;
  p.base_ms = 2.5;
  p.multiplier = 1.0;
  p.cap_ms = 2.5;
  p.jitter = 0.0;
  for (uint32_t retry = 0; retry < 8; ++retry) {
    EXPECT_EQ(BackoffDelayMs(p, 1, 2, retry), 2.5);
    EXPECT_EQ(BackoffDelayMs(p, 99, 7, retry), 2.5);
  }
}

TEST(BackoffTest, JitteredDelayIsDeterministicPerInputs) {
  BackoffPolicy p;
  const double a = BackoffDelayMs(p, 42, 7, 1);
  EXPECT_EQ(a, BackoffDelayMs(p, 42, 7, 1));
  // Any input change moves the draw (with overwhelming probability).
  EXPECT_NE(a, BackoffDelayMs(p, 43, 7, 1));
  EXPECT_NE(a, BackoffDelayMs(p, 42, 8, 1));
  EXPECT_NE(a, BackoffDelayMs(p, 42, 7, 2));
}

TEST(BackoffTest, FullJitterStaysWithinTheRawEnvelope) {
  BackoffPolicy p;
  p.base_ms = 1.0;
  p.multiplier = 2.0;
  p.cap_ms = 64.0;
  p.jitter = 1.0;
  for (uint64_t token = 0; token < 50; ++token) {
    for (uint32_t retry = 0; retry < 8; ++retry) {
      const double raw = BackoffRawDelayMs(p, retry);
      const double d = BackoffDelayMs(p, 11, token, retry);
      EXPECT_GE(d, 0.0);
      EXPECT_LT(d, raw);
    }
  }
}

TEST(BackoffTest, PartialJitterBlendsRawAndUniform) {
  BackoffPolicy p;
  p.base_ms = 10.0;
  p.multiplier = 1.0;
  p.cap_ms = 10.0;
  p.jitter = 0.25;
  for (uint64_t token = 0; token < 50; ++token) {
    const double d = BackoffDelayMs(p, 3, token, 0);
    EXPECT_GE(d, 7.5);   // raw * (1 - jitter)
    EXPECT_LT(d, 10.0);  // + U * raw * jitter, U < 1
  }
}

TEST(BackoffTest, TotalDelaySumsTheSchedule) {
  BackoffPolicy p;
  double sum = 0.0;
  for (uint32_t r = 0; r < 3; ++r) sum += BackoffDelayMs(p, 5, 6, r);
  EXPECT_DOUBLE_EQ(BackoffTotalDelayMs(p, 5, 6, 3), sum);
  EXPECT_DOUBLE_EQ(BackoffTotalDelayMs(p, 5, 6, 0), 0.0);
}

}  // namespace
}  // namespace griddecl
