#include "griddecl/common/bit_util.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(BitUtilTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(4));
  EXPECT_FALSE(IsPowerOfTwo(6));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(BitUtilTest, BitWidthForDomain) {
  EXPECT_EQ(BitWidthForDomain(1), 0);
  EXPECT_EQ(BitWidthForDomain(2), 1);
  EXPECT_EQ(BitWidthForDomain(3), 2);
  EXPECT_EQ(BitWidthForDomain(4), 2);
  EXPECT_EQ(BitWidthForDomain(5), 3);
  EXPECT_EQ(BitWidthForDomain(256), 8);
  EXPECT_EQ(BitWidthForDomain(257), 9);
}

TEST(BitUtilTest, FloorAndCeilLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(BitUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(BitUtilTest, Parity) {
  EXPECT_EQ(Parity(0), 0u);
  EXPECT_EQ(Parity(1), 1u);
  EXPECT_EQ(Parity(0b1011), 1u);
  EXPECT_EQ(Parity(0b1111), 0u);
}

TEST(BitUtilTest, GrayCodeRoundTrip) {
  for (uint64_t x = 0; x < 1024; ++x) {
    EXPECT_EQ(GrayCodeInverse(GrayCode(x)), x);
  }
}

TEST(BitUtilTest, GrayCodeAdjacentDifferByOneBit) {
  for (uint64_t x = 0; x < 1024; ++x) {
    const uint64_t diff = GrayCode(x) ^ GrayCode(x + 1);
    EXPECT_EQ(PopCount(diff), 1) << "x=" << x;
  }
}

TEST(BitUtilTest, RotateLeftBits) {
  EXPECT_EQ(RotateLeftBits(0b001, 1, 3), 0b010u);
  EXPECT_EQ(RotateLeftBits(0b100, 1, 3), 0b001u);
  EXPECT_EQ(RotateLeftBits(0b110, 2, 3), 0b011u);
  EXPECT_EQ(RotateLeftBits(0xFF, 0, 8), 0xFFu);
  // Full-width rotation is identity composed over width steps.
  uint64_t v = 0b10110;
  uint64_t r = v;
  for (int i = 0; i < 5; ++i) r = RotateLeftBits(r, 1, 5);
  EXPECT_EQ(r, v);
}

TEST(BitUtilTest, RotateRightInverseOfLeft) {
  for (uint64_t v = 0; v < 64; ++v) {
    for (int r = 0; r < 6; ++r) {
      EXPECT_EQ(RotateRightBits(RotateLeftBits(v, r, 6), r, 6), v);
    }
  }
}

}  // namespace
}  // namespace griddecl
