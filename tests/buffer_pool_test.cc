#include "griddecl/gridfile/buffer_pool.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"

namespace griddecl {
namespace {

BufferPool::FramePtr MakeFrame(const std::string& file, uint64_t page) {
  auto frame = std::make_shared<BufferPool::Frame>();
  frame->file = file;
  frame->page = page;
  frame->raw = file + ":" + std::to_string(page);
  return frame;
}

/// Lookup-then-admit-on-miss, the way PageStore drives the pool.
bool Touch(BufferPool* pool, const std::string& file, uint64_t page) {
  if (pool->Lookup(file, page) != nullptr) return true;
  pool->Admit(MakeFrame(file, page));
  return false;
}

TEST(BufferPoolTest, LookupMissThenAdmitThenHit) {
  BufferPool pool(8);
  EXPECT_EQ(pool.Lookup("f", 0), nullptr);
  pool.Admit(MakeFrame("f", 0));
  const BufferPool::FramePtr hit = pool.Lookup("f", 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->raw, "f:0");
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.admissions, 1u);
  EXPECT_EQ(stats.resident, 1u);
}

TEST(BufferPoolTest, DuplicateAdmitKeepsIncumbent) {
  BufferPool pool(8);
  const BufferPool::FramePtr first = pool.Admit(MakeFrame("f", 3));
  const BufferPool::FramePtr second = pool.Admit(MakeFrame("f", 3));
  // Two readers raced on the same miss: the incumbent wins both times.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(pool.GetStats().resident, 1u);
}

TEST(BufferPoolTest, CapacityIsNeverExceeded) {
  BufferPool pool(16);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    Touch(&pool, "f", rng.NextBelow(200));
    EXPECT_LE(pool.GetStats().resident, 16u);
  }
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.admissions, stats.evictions + stats.resident);
}

TEST(BufferPoolTest, InvalidateDropsOnlyThatFile) {
  BufferPool pool(16);
  pool.Admit(MakeFrame("a", 0));
  pool.Admit(MakeFrame("a", 1));
  pool.Admit(MakeFrame("b", 0));
  const BufferPool::FramePtr pinned = pool.Lookup("a", 0);
  ASSERT_NE(pinned, nullptr);
  pool.Invalidate("a");
  EXPECT_EQ(pool.Lookup("a", 0), nullptr);
  EXPECT_EQ(pool.Lookup("a", 1), nullptr);
  EXPECT_NE(pool.Lookup("b", 0), nullptr);
  // The outstanding pin outlives eviction (structural pin safety).
  EXPECT_EQ(pinned->raw, "a:0");
}

TEST(BufferPoolTest, SequentialScanDoesNotEvictHotSet) {
  // The tentpole property: a hot working set that fits the protected
  // segment survives an arbitrarily long one-touch sequential scan.
  // Touch each hot page twice (second touch promotes out of probation),
  // then stream 10x capacity of cold pages through, then re-touch the
  // hot set — every hot page must still hit.
  BufferPool pool(32);  // probation 8, protected 24.
  const std::string hot = "hot";
  for (uint64_t p = 0; p < 16; ++p) {
    Touch(&pool, hot, p);
    EXPECT_TRUE(Touch(&pool, hot, p));
  }
  for (uint64_t p = 0; p < 320; ++p) Touch(&pool, "scan", p);
  for (uint64_t p = 0; p < 16; ++p) {
    EXPECT_NE(pool.Lookup(hot, p), nullptr) << "hot page " << p;
  }
}

TEST(BufferPoolTest, ScanResistanceHitRatioAcrossSeeds) {
  // Property over random workloads: a 80/20 skewed access pattern (80% of
  // touches to a hot set that fits protected, 20% to a cold universe 50x
  // capacity) must keep a high hit ratio on the hot pages, for every
  // seed. An LRU pool fails this under interleaved scans; the segmented
  // pool must not.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    BufferPool pool(64);  // probation 16, protected 48.
    Rng rng(seed);
    const uint64_t kHotPages = 32;
    // Warm the hot set into protected.
    for (uint64_t p = 0; p < kHotPages; ++p) {
      Touch(&pool, "h", p);
      Touch(&pool, "h", p);
    }
    uint64_t hot_touches = 0;
    uint64_t hot_hits = 0;
    for (int i = 0; i < 20000; ++i) {
      if (rng.NextBool(0.8)) {
        ++hot_touches;
        if (Touch(&pool, "h", rng.NextBelow(kHotPages))) ++hot_hits;
      } else {
        Touch(&pool, "c", rng.NextBelow(64 * 50));
      }
    }
    const double ratio =
        static_cast<double>(hot_hits) / static_cast<double>(hot_touches);
    EXPECT_GT(ratio, 0.95) << "seed " << seed << " hot hit ratio " << ratio;
    EXPECT_LE(pool.GetStats().resident, 64u);
  }
}

TEST(BufferPoolTest, PromotionRequiresASecondTouch) {
  BufferPool pool(8);  // probation 2, protected 6.
  Touch(&pool, "f", 0);
  EXPECT_EQ(pool.GetStats().promotions, 0u);
  Touch(&pool, "f", 0);  // Hit in probation -> promoted.
  EXPECT_EQ(pool.GetStats().promotions, 1u);
  // One-touch pages march through the 2-frame probation FIFO and out.
  Touch(&pool, "f", 1);
  Touch(&pool, "f", 2);
  Touch(&pool, "f", 3);
  EXPECT_EQ(pool.Lookup("f", 1), nullptr);
  // The promoted page is untouched by the probation churn.
  EXPECT_NE(pool.Lookup("f", 0), nullptr);
}

TEST(BufferPoolTest, ConcurrentPinUnpinEvictionIsSafe) {
  // Hammer one small pool from many threads: lookups, admissions,
  // evictions, invalidations, and long-held pins all interleave. TSan
  // (scripts/run_tier1.sh --sanitize=tsan) must stay silent, pinned
  // frames must stay readable after eviction, and counters must add up.
  BufferPool pool(16);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool, &stop, &bad_reads, t] {
      Rng rng(static_cast<uint64_t>(t) + 100);
      std::vector<BufferPool::FramePtr> pins;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t page = rng.NextBelow(64);
        const std::string file = rng.NextBool(0.5) ? "x" : "y";
        BufferPool::FramePtr frame = pool.Lookup(file, page);
        if (frame == nullptr) frame = pool.Admit(MakeFrame(file, page));
        // Pinned frames are immutable: contents never change underneath
        // us regardless of concurrent eviction.
        if (frame->raw != file + ":" + std::to_string(page)) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
        if (rng.NextBool(0.25)) pins.push_back(std::move(frame));
        if (pins.size() > 32) pins.clear();
        if (rng.NextBool(0.01)) pool.Invalidate("y");
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_LE(stats.resident, 16u);
  EXPECT_EQ(stats.admissions, stats.evictions + stats.resident);
}

}  // namespace
}  // namespace griddecl
