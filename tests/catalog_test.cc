#include "griddecl/gridfile/catalog.h"

#include <gtest/gtest.h>

#include "griddecl/common/random.h"

namespace griddecl {
namespace {

DeclusteredFile MakeRelation(const char* method, uint32_t partitions,
                             int records, uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile file =
      GridFile::Create(std::move(schema), {partitions, partitions}).value();
  Rng rng(seed);
  for (int i = 0; i < records; ++i) {
    EXPECT_TRUE(file.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  return DeclusteredFile::Create(std::move(file), method, 8).value();
}

TEST(CatalogTest, AddFindDrop) {
  Catalog catalog(8);
  ASSERT_TRUE(
      catalog.AddRelation("sensors", MakeRelation("hcam", 16, 100, 1)).ok());
  ASSERT_TRUE(
      catalog.AddRelation("events", MakeRelation("dm", 8, 50, 2)).ok());
  EXPECT_EQ(catalog.num_relations(), 2u);
  EXPECT_NE(catalog.Find("sensors"), nullptr);
  EXPECT_EQ(catalog.Find("nope"), nullptr);
  EXPECT_EQ(catalog.RelationNames(),
            (std::vector<std::string>{"events", "sensors"}));

  EXPECT_TRUE(catalog.DropRelation("events").ok());
  EXPECT_EQ(catalog.DropRelation("events").code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.num_relations(), 1u);
}

TEST(CatalogTest, Validation) {
  Catalog catalog(8);
  EXPECT_FALSE(
      catalog.AddRelation("", MakeRelation("dm", 8, 1, 1)).ok());
  ASSERT_TRUE(catalog.AddRelation("r", MakeRelation("dm", 8, 1, 1)).ok());
  // Duplicate name.
  EXPECT_FALSE(catalog.AddRelation("r", MakeRelation("dm", 8, 1, 2)).ok());
  // Wrong disk count.
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile file = GridFile::Create(std::move(schema), {8, 8}).value();
  DeclusteredFile four =
      DeclusteredFile::Create(std::move(file), "dm", 4).value();
  EXPECT_FALSE(catalog.AddRelation("other", std::move(four)).ok());
}

TEST(CatalogTest, PerRelationMethodsCoexist) {
  // The paper's recommendation in miniature: each relation declustered by
  // the method fitting its workload, all on one array.
  Catalog catalog(8);
  ASSERT_TRUE(
      catalog.AddRelation("small_lookups", MakeRelation("ecc", 16, 200, 3))
          .ok());
  ASSERT_TRUE(
      catalog.AddRelation("big_scans", MakeRelation("fx", 16, 200, 4)).ok());
  const auto info = catalog.Describe();
  ASSERT_EQ(info.size(), 2u);
  EXPECT_EQ(info[0].name, "big_scans");
  EXPECT_EQ(info[0].method, "FX");
  EXPECT_EQ(info[1].method, "ECC");
  EXPECT_EQ(info[0].num_records, 200u);
}

TEST(CatalogTest, ExecuteRangeDispatches) {
  Catalog catalog(8);
  ASSERT_TRUE(
      catalog.AddRelation("sensors", MakeRelation("hcam", 16, 300, 5)).ok());
  const auto exec =
      catalog.ExecuteRange("sensors", {0.2, 0.2}, {0.8, 0.8}).value();
  EXPECT_GT(exec.matches.size(), 0u);
  EXPECT_GE(exec.response_units, exec.optimal_units);
  EXPECT_EQ(catalog.ExecuteRange("ghost", {0, 0}, {1, 1}).status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, RecordsPerDiskAggregates) {
  Catalog catalog(8);
  ASSERT_TRUE(catalog.AddRelation("a", MakeRelation("dm", 16, 120, 6)).ok());
  ASSERT_TRUE(catalog.AddRelation("b", MakeRelation("hcam", 8, 80, 7)).ok());
  const std::vector<uint64_t> totals = catalog.RecordsPerDisk();
  ASSERT_EQ(totals.size(), 8u);
  uint64_t sum = 0;
  for (uint64_t t : totals) sum += t;
  EXPECT_EQ(sum, 200u);
  // Matches the per-relation histograms summed by hand.
  const auto a = catalog.Find("a")->RecordsPerDisk();
  const auto b = catalog.Find("b")->RecordsPerDisk();
  for (uint32_t d = 0; d < 8; ++d) {
    EXPECT_EQ(totals[d], a[d] + b[d]);
  }
}

TEST(CatalogTest, MutableFindAllowsIncrementalLoad) {
  Catalog catalog(8);
  ASSERT_TRUE(catalog.AddRelation("r", MakeRelation("dm", 8, 0, 8)).ok());
  DeclusteredFile* rel = catalog.Find("r");
  ASSERT_NE(rel, nullptr);
  ASSERT_TRUE(rel->mutable_file().Insert({0.5, 0.5}).ok());
  EXPECT_EQ(catalog.Find("r")->file().num_records(), 1u);
}

}  // namespace
}  // namespace griddecl
