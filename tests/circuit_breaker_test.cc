#include "griddecl/serve/circuit_breaker.h"

#include <gtest/gtest.h>

#include "griddecl/common/random.h"

namespace griddecl {
namespace {

BreakerOptions FastTrip() {
  BreakerOptions o;
  o.min_events = 2;
  o.window = 4;
  o.failure_ratio = 0.5;
  o.open_ms = 10.0;
  return o;
}

TEST(CircuitBreakerTest, ValidatesOptions) {
  EXPECT_TRUE(ValidateBreakerOptions({}).ok());
  BreakerOptions o;
  o.min_events = 0;
  EXPECT_FALSE(ValidateBreakerOptions(o).ok());
  o = {};
  o.window = o.min_events - 1;
  EXPECT_FALSE(ValidateBreakerOptions(o).ok());
  o = {};
  o.failure_ratio = 0.0;
  EXPECT_FALSE(ValidateBreakerOptions(o).ok());
  o = {};
  o.failure_ratio = 1.5;
  EXPECT_FALSE(ValidateBreakerOptions(o).ok());
  o = {};
  o.open_ms = -1.0;
  EXPECT_FALSE(ValidateBreakerOptions(o).ok());
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half_open");
}

TEST(CircuitBreakerTest, TripsAtTheConfiguredRatioNotBefore) {
  BreakerOptions o;
  o.min_events = 4;
  o.window = 8;
  o.failure_ratio = 0.5;
  CircuitBreaker b(o);
  // Three failures: below min_events, still closed.
  for (int i = 0; i < 3; ++i) b.RecordFailure(0.0);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  // A success then a failure: 4 failures / 5 events >= 0.5 — trips.
  b.RecordSuccess(0.0);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  b.RecordFailure(1.0);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.counters().opened, 1u);
}

TEST(CircuitBreakerTest, SuccessesKeepAHealthyBreakerClosed) {
  CircuitBreaker b(FastTrip());
  for (int i = 0; i < 1000; ++i) b.RecordSuccess(static_cast<double>(i));
  // One failure in a big healthy window is below the ratio.
  b.RecordFailure(1000.0);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.counters().opened, 0u);
}

TEST(CircuitBreakerTest, OpenBreakerAdmitsExactlyOneProbe) {
  CircuitBreaker b(FastTrip());
  b.RecordFailure(0.0);
  b.RecordFailure(0.0);
  ASSERT_EQ(b.state(), BreakerState::kOpen);

  // Before open_ms: refused, and WouldRefuse agrees.
  EXPECT_TRUE(b.WouldRefuse(5.0));
  EXPECT_FALSE(b.AllowRequest(5.0));
  EXPECT_EQ(b.state(), BreakerState::kOpen);

  // At open_ms: exactly one AllowRequest wins the probe slot.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (b.AllowRequest(10.0 + i)) admitted++;
  }
  EXPECT_EQ(admitted, 1);
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(b.WouldRefuse(1e9));  // Probe outstanding: everyone waits.
  EXPECT_EQ(b.counters().half_opened, 1u);
}

TEST(CircuitBreakerTest, ProbeSuccessClosesAndResetsTheWindow) {
  CircuitBreaker b(FastTrip());
  b.RecordFailure(0.0);
  b.RecordFailure(0.0);
  ASSERT_TRUE(b.AllowRequest(20.0));
  b.RecordSuccess(21.0);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.counters().closed, 1u);
  // The window reset: one new failure is below min_events again.
  b.RecordFailure(22.0);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsTheTimer) {
  CircuitBreaker b(FastTrip());
  b.RecordFailure(0.0);
  b.RecordFailure(0.0);
  ASSERT_TRUE(b.AllowRequest(20.0));
  b.RecordFailure(21.0);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.counters().reopened, 1u);
  // The open timer restarted at 21: still refused at 30, open again at 31.
  EXPECT_FALSE(b.AllowRequest(30.9));
  EXPECT_TRUE(b.AllowRequest(31.0));
}

TEST(CircuitBreakerTest, StaleReportsWhileOpenAreIgnored) {
  CircuitBreaker b(FastTrip());
  b.RecordFailure(0.0);
  b.RecordFailure(0.0);
  ASSERT_EQ(b.state(), BreakerState::kOpen);
  // Outcomes of requests admitted before the trip land late: no effect.
  b.RecordSuccess(1.0);
  b.RecordFailure(1.0);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.counters().opened, 1u);
  EXPECT_EQ(b.counters().closed, 0u);
  EXPECT_EQ(b.counters().reopened, 0u);
}

/// The property test: arbitrary event sequences never produce an invalid
/// transition, counters exactly track transitions, and the half-open state
/// admits at most one probe between open periods.
TEST(CircuitBreakerPropertyTest, RandomSequencesNeverReachInvalidStates) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    BreakerOptions o;
    o.min_events = 1 + static_cast<uint32_t>(rng.NextDouble() * 4);
    o.window = o.min_events + static_cast<uint32_t>(rng.NextDouble() * 8);
    o.failure_ratio = 0.25 + rng.NextDouble() * 0.75;
    o.open_ms = rng.NextDouble() * 20.0;
    ASSERT_TRUE(ValidateBreakerOptions(o).ok());
    CircuitBreaker b(o);

    double now = 0.0;
    BreakerCounters last = b.counters();
    bool probe_outstanding = false;
    for (int step = 0; step < 2000; ++step) {
      now += rng.NextDouble() * 5.0;
      const BreakerState before = b.state();
      const double action = rng.NextDouble();
      if (action < 0.4) {
        const bool refused_predicted = b.WouldRefuse(now);
        const bool admitted = b.AllowRequest(now);
        EXPECT_EQ(admitted, !refused_predicted)
            << "WouldRefuse disagrees with AllowRequest at step " << step;
        if (admitted && before == BreakerState::kOpen) {
          EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
          EXPECT_FALSE(probe_outstanding)
              << "second probe admitted without an intervening report";
          probe_outstanding = true;
        }
        if (before == BreakerState::kHalfOpen) {
          EXPECT_FALSE(admitted) << "half-open admitted a second probe";
        }
      } else if (action < 0.7) {
        b.RecordSuccess(now);
        if (before == BreakerState::kHalfOpen) {
          EXPECT_EQ(b.state(), BreakerState::kClosed);
          probe_outstanding = false;
        } else {
          EXPECT_EQ(b.state(), before);  // Success never opens.
        }
      } else {
        b.RecordFailure(now);
        if (before == BreakerState::kHalfOpen) {
          EXPECT_EQ(b.state(), BreakerState::kOpen);
          probe_outstanding = false;
        } else if (before == BreakerState::kOpen) {
          EXPECT_EQ(b.state(), BreakerState::kOpen);
        }
        // closed -> closed or closed -> open are both legal.
      }

      // Transition/counter bookkeeping is exact.
      const BreakerState after = b.state();
      const BreakerCounters& c = b.counters();
      EXPECT_EQ(c.opened - last.opened + c.reopened - last.reopened,
                (after == BreakerState::kOpen && before != after) ? 1u : 0u);
      EXPECT_EQ(c.half_opened - last.half_opened,
                (after == BreakerState::kHalfOpen && before != after) ? 1u
                                                                     : 0u);
      EXPECT_EQ(c.closed - last.closed,
                (before == BreakerState::kHalfOpen &&
                 after == BreakerState::kClosed)
                    ? 1u
                    : 0u);
      // No transition skips a state: closed never jumps to half-open,
      // open never jumps to closed.
      if (before == BreakerState::kClosed) {
        EXPECT_NE(after, BreakerState::kHalfOpen);
      }
      if (before == BreakerState::kOpen) {
        EXPECT_NE(after, BreakerState::kClosed);
      }
      EXPECT_GE(b.FailureRatio(), 0.0);
      EXPECT_LE(b.FailureRatio(), 1.0);
      last = c;
    }
  }
}

}  // namespace
}  // namespace griddecl
