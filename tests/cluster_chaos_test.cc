#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/cluster/cluster.h"
#include "griddecl/common/random.h"
#include "griddecl/gridfile/catalog.h"
#include "griddecl/gridfile/declustered_file.h"
#include "griddecl/gridfile/manifest.h"

/// \file
/// Migration torture and chaos soaks for the scatter-gather cluster. The
/// contract under test: every query the cluster answers is either
/// complete-and-correct or explicitly flagged (partial availability or a
/// clean error) — never silently wrong — and an aborted migration leaves
/// the old generation byte-for-byte intact and serving.

namespace griddecl {
namespace cluster {
namespace {

GridFile MakeClusteredFile(uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {4, 4}).value();
  const GridSpec grid = f.grid();
  Rng rng(seed);
  for (uint64_t b = 0; b < grid.num_buckets(); ++b) {
    const BucketCoords c = grid.Delinearize(b);
    for (uint32_t k = 0; k < 8; ++k) {
      const std::vector<double> point = {
          (c[0] + rng.NextDouble()) / 4.0, (c[1] + rng.NextDouble()) / 4.0};
      EXPECT_TRUE(f.Insert(point).ok());
    }
  }
  return f;
}

Catalog CommitMirrorCatalog(MemEnv* env, uint64_t seed = 1) {
  Catalog catalog(4);
  Result<DeclusteredFile> rel =
      DeclusteredFile::Create(MakeClusteredFile(seed), "dm", 4);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(catalog.AddRelation("dm", std::move(rel).value()).ok());
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy.policy = RelationRedundancy::Policy::kMirror;
  options.default_redundancy.copies = 2;
  EXPECT_TRUE(SaveCatalogManifest(catalog, env, options).ok());
  return catalog;
}

serve::QueryRequest Range(std::vector<double> lo, std::vector<double> hi) {
  serve::QueryRequest req;
  req.relation = "dm";
  req.lo = std::move(lo);
  req.hi = std::move(hi);
  return req;
}

std::vector<RecordId> Direct(const Catalog& catalog,
                             const serve::QueryRequest& req) {
  std::vector<RecordId> ids =
      catalog.Find("dm")->ExecuteRange(req.lo, req.hi).value().matches;
  std::sort(ids.begin(), ids.end());
  return ids;
}

ClusterOptions Deterministic() {
  ClusterOptions o;
  o.num_nodes = 4;
  o.hedging = false;
  o.node_breaker.min_events = 1000000;
  o.node_breaker.window = 1000000;
  o.node.breaker.min_events = 1000000;
  o.node.breaker.window = 1000000;
  return o;
}

/// The fixed traffic mix every soak drives, with reference answers.
/// Record ids are invariant across re-declustering (the data files are
/// byte-identical copies), so one reference serves both generations.
struct Traffic {
  std::vector<serve::QueryRequest> queries;
  std::vector<std::vector<RecordId>> want;
};

Traffic MakeTraffic(const Catalog& catalog) {
  Traffic t;
  t.queries.push_back(Range({0.0, 0.0}, {1.0, 1.0}));
  t.queries.push_back(Range({0.0, 0.0}, {0.49, 0.49}));
  t.queries.push_back(Range({0.5, 0.5}, {1.0, 1.0}));
  t.queries.push_back(Range({0.0, 0.4}, {1.0, 0.6}));
  t.queries.push_back(Range({0.3, 0.1}, {0.8, 0.9}));
  t.queries.push_back(Range({0.05, 0.3}, {0.1, 0.35}));
  for (const serve::QueryRequest& q : t.queries) {
    t.want.push_back(Direct(catalog, q));
  }
  return t;
}

std::vector<std::string> NodeFiles(Cluster* cluster, uint32_t node) {
  return cluster->node_env_for_test(node)->ListFiles().value();
}

TEST(MigrationTortureTest, HealthyCutoverServesEveryConcurrentQuery) {
  MemEnv env;
  const Catalog catalog = CommitMirrorCatalog(&env);
  auto cluster = Cluster::Create(env, Deterministic()).value();
  const Traffic traffic = MakeTraffic(catalog);

  // Traffic hammers the cluster while the migration copies, verifies and
  // cuts over. Healthy pass acceptance: zero failed, zero partial, zero
  // wrong queries, before, during and after the cutover.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 2; ++t) {
    drivers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load()) {
        const size_t q = i++ % traffic.queries.size();
        const ClusterQueryResult r = cluster->Execute(traffic.queries[q]);
        served.fetch_add(1);
        if (!r.status.ok() || !r.complete || r.matches != traffic.want[q] ||
            (r.generation != 1 && r.generation != 2)) {
          bad.fetch_add(1);
        }
      }
    });
  }

  MigrationOptions mo;
  mo.new_method = "fx";
  mo.new_num_disks = 4;
  std::vector<std::string> phases;
  mo.on_phase = [&phases](const std::string& p) { phases.push_back(p); };
  const MigrationReport report = cluster->Migrate(mo).value();
  // Let traffic observe the committed generation before stopping.
  for (int i = 0; i < 20; ++i) {
    (void)cluster->Execute(traffic.queries[0]);
  }
  stop.store(true);
  for (std::thread& th : drivers) th.join();

  EXPECT_TRUE(report.committed) << report.abort_reason;
  EXPECT_EQ(report.old_generation, 1u);
  EXPECT_EQ(report.new_generation, 2u);
  EXPECT_GT(report.files_copied, 0u);
  EXPECT_EQ(report.buckets_copied, 16u);
  EXPECT_GT(report.verify_queries, 0u);
  EXPECT_EQ(report.verify_mismatches, 0u);
  EXPECT_EQ(phases, (std::vector<std::string>{"copy", "staged", "verify",
                                              "commit", "committed"}));
  EXPECT_EQ(cluster->generation(), 2u);
  EXPECT_FALSE(cluster->migrating());
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(bad.load(), 0u);

  // The new layout answers identically, and the old generation survives
  // as the rollback target on every node.
  for (size_t q = 0; q < traffic.queries.size(); ++q) {
    const ClusterQueryResult r = cluster->Execute(traffic.queries[q]);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.generation, 2u);
    EXPECT_EQ(r.matches, traffic.want[q]) << "query " << q;
  }
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_TRUE(cluster->node_env_for_test(n)->Exists(ManifestFileName(1)));
    EXPECT_TRUE(cluster->node_env_for_test(n)->Exists(ManifestFileName(2)));
  }

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.migrations_committed")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("cluster.migrations_aborted")->value(), 0u);
  EXPECT_EQ(reg.GetCounter("cluster.verify_mismatches")->value(), 0u);
}

TEST(MigrationTortureTest, SecondMigrationWhileRunningIsRefused) {
  MemEnv env;
  CommitMirrorCatalog(&env);
  auto cluster = Cluster::Create(env, Deterministic()).value();
  MigrationOptions inner;
  inner.new_method = "dm";
  inner.new_num_disks = 4;
  MigrationOptions mo;
  mo.new_method = "fx";
  mo.new_num_disks = 4;
  Status nested = Status::Ok();
  mo.on_phase = [&](const std::string& p) {
    if (p == "staged") nested = cluster->Migrate(inner).status();
  };
  const MigrationReport report = cluster->Migrate(mo).value();
  EXPECT_TRUE(report.committed) << report.abort_reason;
  EXPECT_EQ(nested.code(), StatusCode::kFailedPrecondition);

  // Invalid targets are caller errors, not aborts.
  MigrationOptions invalid;
  invalid.new_method = "nope";
  invalid.new_num_disks = 4;
  EXPECT_EQ(cluster->Migrate(invalid).status().code(),
            StatusCode::kInvalidArgument);
  invalid.new_method = "dm";
  invalid.new_num_disks = 2;  // Fewer disks than nodes.
  EXPECT_EQ(cluster->Migrate(invalid).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster->generation(), 2u);
}

TEST(MigrationTortureTest, NodeLossAtStagedAbortsAndRestoresOldLayout) {
  MemEnv env;
  const Catalog catalog = CommitMirrorCatalog(&env);
  auto cluster = Cluster::Create(env, Deterministic()).value();
  const Traffic traffic = MakeTraffic(catalog);
  std::vector<std::vector<std::string>> files_before;
  for (uint32_t n = 0; n < 4; ++n) {
    files_before.push_back(NodeFiles(cluster.get(), n));
  }

  MigrationOptions mo;
  mo.new_method = "fx";
  mo.new_num_disks = 4;
  mo.on_phase = [&](const std::string& p) {
    if (p == "staged") {
      ASSERT_TRUE(cluster->KillNode(3).ok());
    }
  };
  const MigrationReport report = cluster->Migrate(mo).value();
  EXPECT_FALSE(report.committed);
  EXPECT_EQ(report.abort_reason, "node lost");
  EXPECT_EQ(cluster->generation(), 1u);
  EXPECT_FALSE(cluster->migrating());

  // Every staged file was dropped: each node's env holds exactly the file
  // set it held before the migration started.
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(NodeFiles(cluster.get(), n), files_before[n]) << "node " << n;
  }

  // The old layout still serves: complete through mirrors while node 3 is
  // down, all-primary after revival.
  const ClusterQueryResult degraded = cluster->Execute(traffic.queries[0]);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_TRUE(degraded.complete);
  EXPECT_EQ(degraded.matches, traffic.want[0]);
  ASSERT_TRUE(cluster->ReviveNode(3).ok());
  const ClusterQueryResult healed = cluster->Execute(traffic.queries[0]);
  ASSERT_TRUE(healed.status.ok());
  EXPECT_EQ(healed.rerouted_subqueries, 0u);
  EXPECT_EQ(healed.matches, traffic.want[0]);

  // And a later healthy migration of the same cluster goes through.
  mo.on_phase = nullptr;
  const MigrationReport retry = cluster->Migrate(mo).value();
  EXPECT_TRUE(retry.committed) << retry.abort_reason;
  EXPECT_EQ(cluster->generation(), retry.new_generation);

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.migrations_aborted")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("cluster.migrations_committed")->value(), 1u);
}

TEST(MigrationTortureTest, ExternalAbortDuringVerifyRollsBackCleanly) {
  MemEnv env;
  const Catalog catalog = CommitMirrorCatalog(&env);
  auto cluster = Cluster::Create(env, Deterministic()).value();
  const std::vector<std::string> files_before = NodeFiles(cluster.get(), 0);

  MigrationOptions mo;
  mo.new_method = "fx";
  mo.new_num_disks = 4;
  mo.on_phase = [&](const std::string& p) {
    if (p == "verify") cluster->AbortMigration();
  };
  const MigrationReport report = cluster->Migrate(mo).value();
  EXPECT_FALSE(report.committed);
  EXPECT_EQ(report.abort_reason, "externally aborted");
  EXPECT_EQ(cluster->generation(), 1u);
  EXPECT_EQ(NodeFiles(cluster.get(), 0), files_before);

  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const ClusterQueryResult r = cluster->Execute(full);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.matches, Direct(catalog, full));
  EXPECT_EQ(r.generation, 1u);
}

TEST(MigrationTortureTest, StagedCorruptionFailsVerificationAndAborts) {
  MemEnv env;
  const Catalog catalog = CommitMirrorCatalog(&env);
  auto cluster = Cluster::Create(env, Deterministic()).value();
  const std::vector<std::string> files_before = NodeFiles(cluster.get(), 1);

  // Corrupt one staged data page on one node after the copy lands. The
  // staging service's checksummed load on that node must catch it before
  // any cutover, and the abort must drop the wreckage.
  MigrationOptions mo;
  mo.new_method = "fx";
  mo.new_num_disks = 4;
  mo.on_phase = [&](const std::string& p) {
    if (p == "staged") {
      ASSERT_TRUE(cluster->node_env_for_test(1)
                      ->CorruptByte("rel-000002-0.gd", 400, 0x20)
                      .ok());
    }
  };
  const MigrationReport report = cluster->Migrate(mo).value();
  EXPECT_FALSE(report.committed);
  EXPECT_NE(report.abort_reason.find("staging service on node 1"),
            std::string::npos)
      << report.abort_reason;
  EXPECT_EQ(cluster->generation(), 1u);
  EXPECT_EQ(NodeFiles(cluster.get(), 1), files_before);

  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const ClusterQueryResult r = cluster->Execute(full);
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.matches, Direct(catalog, full));
}

TEST(ClusterChaosTest, SoakNeverServesSilentWrongData) {
  MemEnv env;
  const Catalog catalog = CommitMirrorCatalog(&env);
  ClusterOptions options = Deterministic();
  options.hedging = true;
  options.hedge_policy = HedgePolicy::kFirstSuccess;
  options.hedge_delay_ms = 0.2;
  options.seed = 5;
  auto cluster = Cluster::Create(env, options).value();
  const Traffic traffic = MakeTraffic(catalog);

  // Three traffic threads race kills, revivals and a live migration. The
  // invariant: every returned result is complete-and-correct, or an
  // explicitly flagged partial whose matches are a subset of the truth,
  // or a clean error with no matches. Silent wrong data = test failure.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> complete{0};
  std::atomic<uint64_t> partial{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 3; ++t) {
    drivers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t) * 31;
      while (!stop.load()) {
        const size_t q = i++ % traffic.queries.size();
        const ClusterQueryResult r = cluster->Execute(traffic.queries[q]);
        const std::vector<RecordId>& want = traffic.want[q];
        served.fetch_add(1);
        if (r.status.ok() && r.complete) {
          complete.fetch_add(1);
          if (r.matches != want || r.availability != 1.0) wrong.fetch_add(1);
        } else if (r.status.ok()) {
          partial.fetch_add(1);
          const bool flagged =
              r.unavailable_buckets > 0 && r.availability < 1.0;
          const bool subset = std::includes(want.begin(), want.end(),
                                            r.matches.begin(),
                                            r.matches.end());
          if (!flagged || !subset) wrong.fetch_add(1);
        } else {
          failed.fetch_add(1);
          if (!r.matches.empty()) wrong.fetch_add(1);
        }
      }
    });
  }

  const auto breathe =
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); };
  breathe();
  ASSERT_TRUE(cluster->KillNode(1).ok());
  breathe();
  ASSERT_TRUE(cluster->ReviveNode(1).ok());
  breathe();
  MigrationOptions mo;
  mo.new_method = "fx";
  mo.new_num_disks = 4;
  const MigrationReport report = cluster->Migrate(mo).value();
  EXPECT_TRUE(report.committed) << report.abort_reason;
  breathe();
  ASSERT_TRUE(cluster->KillNode(2).ok());
  breathe();
  ASSERT_TRUE(cluster->KillNode(3).ok());  // Quorum lost: clean refusals.
  breathe();
  ASSERT_TRUE(cluster->ReviveNode(2).ok());
  ASSERT_TRUE(cluster->ReviveNode(3).ok());
  breathe();
  stop.store(true);
  for (std::thread& th : drivers) th.join();

  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(complete.load(), 0u);
  EXPECT_EQ(wrong.load(), 0u)
      << "served " << served.load() << " (complete " << complete.load()
      << ", partial " << partial.load() << ", failed " << failed.load()
      << ")";
  EXPECT_EQ(cluster->generation(), 2u);

  // Fully healed cluster on the new layout: back to exact answers.
  for (size_t q = 0; q < traffic.queries.size(); ++q) {
    const ClusterQueryResult r = cluster->Execute(traffic.queries[q]);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.matches, traffic.want[q]) << "query " << q;
  }
  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.verify_mismatches")->value(), 0u);
}

TEST(ClusterChaosTest, RepairSoakHealsUnderLiveTraffic) {
  // Same silent-wrong-data invariant as the migration soak, but the
  // control plane runs the self-healing cycle: heartbeat-detected node
  // death, a paced repair cutover, a revived node catching up through the
  // generation fence, and a full-zone kill the repair must have made
  // survivable — all while traffic threads hammer the cluster.
  MemEnv env;
  const Catalog catalog = CommitMirrorCatalog(&env);
  ClusterOptions options = Deterministic();
  options.seed = 5;
  options.quorum_fraction = 0.2;
  PlacementSpec spec;
  spec.policy = PlacementPolicy::kZoneAware;
  spec.topology = Topology::Grid(4, 2, 2).value();
  spec.seed = 7;
  options.placement = spec;
  auto cluster = Cluster::Create(env, options).value();
  const Traffic traffic = MakeTraffic(catalog);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> complete{0};
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 3; ++t) {
    drivers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t) * 31;
      while (!stop.load()) {
        const size_t q = i++ % traffic.queries.size();
        const ClusterQueryResult r = cluster->Execute(traffic.queries[q]);
        const std::vector<RecordId>& want = traffic.want[q];
        served.fetch_add(1);
        if (r.status.ok() && r.complete) {
          complete.fetch_add(1);
          if (r.matches != want || r.availability != 1.0) wrong.fetch_add(1);
        } else if (r.status.ok()) {
          const bool flagged =
              r.unavailable_buckets > 0 && r.availability < 1.0;
          const bool subset = std::includes(want.begin(), want.end(),
                                            r.matches.begin(),
                                            r.matches.end());
          if (!flagged || !subset) wrong.fetch_add(1);
        } else if (!r.matches.empty()) {
          wrong.fetch_add(1);
        }
      }
    });
  }

  const auto breathe =
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); };
  breathe();
  // Lose a node; the detector declares it dead; a paced repair rebuilds
  // its replicas on the surviving zone-0 node under live load.
  ASSERT_TRUE(cluster->KillNode(1).ok());
  breathe();
  cluster->AdvanceTimeMs(60.0);
  RepairOptions ro;
  ro.copy_bytes_per_sec = 1e9;
  const RepairReport report = cluster->Repair(ro).value();
  EXPECT_TRUE(report.committed) << report.abort_reason;
  breathe();
  // The revived node is a generation behind: readmission goes through the
  // catch-up fence while queries keep flowing.
  ASSERT_TRUE(cluster->ReviveNode(1).ok());
  breathe();
  // The repair's whole point: a subsequent full-zone kill keeps serving.
  ASSERT_TRUE(cluster->KillZone(1).ok());
  breathe();
  ASSERT_TRUE(cluster->ReviveNode(2).ok());
  ASSERT_TRUE(cluster->ReviveNode(3).ok());
  breathe();
  // A repair on the healed cluster is a no-op, not a layout churn.
  const RepairReport idle = cluster->Repair({}).value();
  EXPECT_TRUE(idle.already_healthy) << idle.abort_reason;
  breathe();
  stop.store(true);
  for (std::thread& th : drivers) th.join();

  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(complete.load(), 0u);
  EXPECT_EQ(wrong.load(), 0u) << "served " << served.load();
  EXPECT_EQ(cluster->generation(), report.new_generation);

  for (size_t q = 0; q < traffic.queries.size(); ++q) {
    const ClusterQueryResult r = cluster->Execute(traffic.queries[q]);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.matches, traffic.want[q]) << "query " << q;
  }
  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.repairs_committed")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("cluster.verify_mismatches")->value(), 0u);
  EXPECT_GE(reg.GetCounter("cluster.revive_catchups")->value(), 1u);
}

}  // namespace
}  // namespace cluster
}  // namespace griddecl
