#include "griddecl/cluster/cluster.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/cluster/migrator.h"
#include "griddecl/cluster/script.h"
#include "griddecl/common/random.h"
#include "griddecl/gridfile/catalog.h"
#include "griddecl/gridfile/declustered_file.h"

namespace griddecl {
namespace cluster {
namespace {

/// 4x4 grid, 8 records per bucket inserted bucket by bucket: with
/// 168-byte v3 pages every storage page holds exactly one bucket. Under
/// "dm" over 4 disks bucket (cx, cy) lives on disk (cx + cy) mod 4, and
/// with 4 nodes over 4 disks every disk is its own node — the smallest
/// cluster where killing one node is visible and chained mirror copies
/// (copy c of disk d on disk (d + c) mod 4) always land on another node.
GridFile MakeClusteredFile(uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {4, 4}).value();
  const GridSpec grid = f.grid();
  Rng rng(seed);
  for (uint64_t b = 0; b < grid.num_buckets(); ++b) {
    const BucketCoords c = grid.Delinearize(b);
    for (uint32_t k = 0; k < 8; ++k) {
      const std::vector<double> point = {
          (c[0] + rng.NextDouble()) / 4.0, (c[1] + rng.NextDouble()) / 4.0};
      EXPECT_TRUE(f.Insert(point).ok());
    }
  }
  return f;
}

Catalog CommitCatalog(MemEnv* env, RelationRedundancy redundancy,
                      uint64_t seed = 1) {
  Catalog catalog(4);
  Result<DeclusteredFile> rel =
      DeclusteredFile::Create(MakeClusteredFile(seed), "dm", 4);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(catalog.AddRelation("dm", std::move(rel).value()).ok());
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy = redundancy;
  EXPECT_TRUE(SaveCatalogManifest(catalog, env, options).ok());
  return catalog;
}

RelationRedundancy Mirror2() {
  RelationRedundancy r;
  r.policy = RelationRedundancy::Policy::kMirror;
  r.copies = 2;
  return r;
}

serve::QueryRequest Range(std::vector<double> lo, std::vector<double> hi) {
  serve::QueryRequest req;
  req.relation = "dm";
  req.lo = std::move(lo);
  req.hi = std::move(hi);
  return req;
}

std::vector<RecordId> Sorted(std::vector<RecordId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<RecordId> Direct(const Catalog& catalog,
                             const serve::QueryRequest& req) {
  return Sorted(
      catalog.Find("dm")->ExecuteRange(req.lo, req.hi).value().matches);
}

/// Deterministic baseline: no hedging, node breakers pinned closed, no
/// injected faults — outcomes depend only on kills/windows.
ClusterOptions Deterministic(uint32_t num_nodes = 4) {
  ClusterOptions o;
  o.num_nodes = num_nodes;
  o.hedging = false;
  o.node_breaker.min_events = 1000000;
  o.node_breaker.window = 1000000;
  o.node.breaker.min_events = 1000000;
  o.node.breaker.window = 1000000;
  return o;
}

TEST(ClusterTest, CreateValidatesOptionsAndSeedEnv) {
  MemEnv empty;
  EXPECT_EQ(Cluster::Create(empty, Deterministic()).status().code(),
            StatusCode::kNotFound);

  MemEnv env;
  CommitCatalog(&env, {});
  ClusterOptions bad = Deterministic();
  bad.num_nodes = 0;
  EXPECT_FALSE(Cluster::Create(env, bad).ok());
  bad = Deterministic();
  bad.quorum_fraction = 1.0;
  EXPECT_FALSE(Cluster::Create(env, bad).ok());
  bad = Deterministic();
  bad.hedge_factor = 0.0;
  EXPECT_FALSE(Cluster::Create(env, bad).ok());
  bad = Deterministic();
  bad.node.generation = 2;
  EXPECT_FALSE(Cluster::Create(env, bad).ok());
  bad = Deterministic();
  NodeFaultWindow w;
  w.node = 7;
  bad.node_windows.push_back(w);
  EXPECT_FALSE(Cluster::Create(env, bad).ok());
  bad = Deterministic();
  bad.num_nodes = 5;  // More nodes than the catalog's 4 virtual disks.
  EXPECT_FALSE(Cluster::Create(env, bad).ok());

  auto cluster = Cluster::Create(env, Deterministic()).value();
  EXPECT_EQ(cluster->num_nodes(), 4u);
  EXPECT_EQ(cluster->num_disks(), 4u);
  EXPECT_EQ(cluster->generation(), 1u);
  EXPECT_EQ(cluster->RelationNames(), std::vector<std::string>{"dm"});
  EXPECT_FALSE(cluster->migrating());
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_TRUE(cluster->NodeAlive(n));
    EXPECT_EQ(cluster->NodeBreakerState(n), BreakerState::kClosed);
  }
  EXPECT_EQ(cluster->KillNode(99).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster->ReviveNode(99).code(), StatusCode::kInvalidArgument);
}

TEST(ClusterTest, HealthyClusterMatchesDirectExecutionExactly) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, Mirror2());
  auto cluster = Cluster::Create(env, Deterministic()).value();

  Rng rng(7);
  uint64_t sub_queries = 0;
  for (int q = 0; q < 20; ++q) {
    std::vector<double> lo(2), hi(2);
    for (int d = 0; d < 2; ++d) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const serve::QueryRequest req = Range(lo, hi);
    const ClusterQueryResult r = cluster->Execute(req);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.availability, 1.0);
    EXPECT_EQ(r.unavailable_buckets, 0u);
    EXPECT_EQ(r.generation, 1u);
    EXPECT_EQ(r.rerouted_subqueries, 0u);
    EXPECT_EQ(r.matches, Direct(catalog, req)) << "query " << q;
    EXPECT_GE(r.sub_queries, 1u);
    sub_queries += r.sub_queries;
    for (const char w : r.winners) EXPECT_EQ(w, 'p');
  }

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  cluster->SnapshotMetrics(&reg);  // Re-snapshot must not double-count.
  EXPECT_EQ(reg.GetCounter("cluster.queries")->value(), 20u);
  EXPECT_EQ(reg.GetCounter("cluster.complete")->value(), 20u);
  EXPECT_EQ(reg.GetCounter("cluster.partial")->value(), 0u);
  EXPECT_EQ(reg.GetCounter("cluster.failed")->value(), 0u);
  EXPECT_EQ(reg.GetCounter("cluster.sub_queries")->value(), sub_queries);
  EXPECT_EQ(reg.GetCounter("cluster.hedges_fired")->value(), 0u);
  EXPECT_EQ(
      reg.GetHistogram("cluster.query_ms", obs::DefaultLatencyBoundsMs())
          ->count(),
      20u);
}

TEST(ClusterTest, MirrorRerouteServesCompleteResultsOffADeadNode) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, Mirror2());
  auto cluster = Cluster::Create(env, Deterministic()).value();
  ASSERT_TRUE(cluster->KillNode(2).ok());
  EXPECT_FALSE(cluster->NodeAlive(2));

  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const ClusterQueryResult r = cluster->Execute(full);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.availability, 1.0);
  EXPECT_GT(r.rerouted_subqueries, 0u);
  EXPECT_EQ(r.matches, Direct(catalog, full));
  EXPECT_EQ(r.winners.find('u'), std::string::npos) << r.winners;

  // Revival restores primary-only service.
  ASSERT_TRUE(cluster->ReviveNode(2).ok());
  EXPECT_TRUE(cluster->NodeAlive(2));
  const ClusterQueryResult healed = cluster->Execute(full);
  ASSERT_TRUE(healed.status.ok());
  EXPECT_TRUE(healed.complete);
  EXPECT_EQ(healed.rerouted_subqueries, 0u);
  for (const char w : healed.winners) EXPECT_EQ(w, 'p');
}

TEST(ClusterTest, NoRedundancyDeadNodeFlagsPartialNeverSilentlyShort) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, {});
  auto cluster = Cluster::Create(env, Deterministic()).value();
  ASSERT_TRUE(cluster->KillNode(1).ok());

  // The full box touches all 16 buckets, 4 of which live on disk 1 = node
  // 1. The result must be explicitly partial: exactly the surviving
  // records, with the deficit accounted bucket by bucket.
  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const ClusterQueryResult r = cluster->Execute(full);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.buckets_touched, 16u);
  EXPECT_EQ(r.unavailable_buckets, 4u);
  EXPECT_DOUBLE_EQ(r.availability, 0.75);
  EXPECT_NE(r.winners.find('u'), std::string::npos) << r.winners;

  std::vector<RecordId> want;
  for (const RecordId id : Direct(catalog, full)) {
    if (catalog.Find("dm")->DiskOfRecord(id) != 1) want.push_back(id);
  }
  EXPECT_EQ(r.matches, want);

  // A probe confined to the dead node's buckets fails loudly: bucket
  // (0, 1) lives on disk (0 + 1) mod 4 = 1.
  const ClusterQueryResult dead =
      cluster->Execute(Range({0.05, 0.3}, {0.1, 0.35}));
  EXPECT_EQ(dead.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(dead.matches.empty());
  EXPECT_EQ(dead.availability, 0.0);

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.partial")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("cluster.failed")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("cluster.unavailable_buckets")->value(), 5u);
}

TEST(ClusterTest, QuorumLossRefusesLoudly) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, Mirror2());
  auto cluster = Cluster::Create(env, Deterministic()).value();
  // quorum_fraction 0.5 over 4 nodes: need floor(4 * 0.5) + 1 = 3 alive.
  ASSERT_TRUE(cluster->KillNode(2).ok());
  ASSERT_TRUE(cluster->KillNode(3).ok());

  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const ClusterQueryResult r = cluster->Execute(full);
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(r.complete);
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(r.sub_queries, 0u);

  // One revival restores quorum; the still-dead node reroutes via mirrors.
  ASSERT_TRUE(cluster->ReviveNode(3).ok());
  const ClusterQueryResult back = cluster->Execute(full);
  ASSERT_TRUE(back.status.ok()) << back.status.ToString();
  EXPECT_TRUE(back.complete);
  EXPECT_EQ(back.matches, Direct(catalog, full));

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.quorum_rejections")->value(), 1u);
}

TEST(ClusterTest, WindowedNodeDeathFollowsTheVirtualClock) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, Mirror2());
  ClusterOptions options = Deterministic();
  NodeFaultWindow w;
  w.node = 1;
  w.from_ms = 100.0;
  w.until_ms = 200.0;
  options.node_windows.push_back(w);
  auto cluster = Cluster::Create(env, options).value();
  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const std::vector<RecordId> want = Direct(catalog, full);

  // Before the window: healthy primaries everywhere.
  const ClusterQueryResult before = cluster->Execute(full);
  ASSERT_TRUE(before.status.ok());
  EXPECT_TRUE(before.complete);
  EXPECT_EQ(before.rerouted_subqueries, 0u);
  EXPECT_EQ(before.matches, want);

  // Inside the window the node is dead: planner reroutes, result whole.
  cluster->AdvanceTimeMs(150.0);
  EXPECT_FALSE(cluster->NodeAlive(1));
  const ClusterQueryResult inside = cluster->Execute(full);
  ASSERT_TRUE(inside.status.ok()) << inside.status.ToString();
  EXPECT_TRUE(inside.complete);
  EXPECT_GT(inside.rerouted_subqueries, 0u);
  EXPECT_EQ(inside.matches, want);

  // Past the window the node recovers on its own.
  cluster->AdvanceTimeMs(250.0);
  EXPECT_TRUE(cluster->NodeAlive(1));
  const ClusterQueryResult after = cluster->Execute(full);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.rerouted_subqueries, 0u);
  EXPECT_EQ(after.matches, want);
}

TEST(ClusterHedgeTest, PrimaryPreferredHedgesFireButNeverChangeTheAnswer) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, Mirror2());
  ClusterOptions options = Deterministic();
  options.hedging = true;
  options.hedge_policy = HedgePolicy::kPrimaryPreferred;
  options.hedge_delay_ms = 0.0;  // Hedge immediately.
  options.node_latency_ms = {0.05, 0.05, 0.05, 0.05};
  auto cluster = Cluster::Create(env, options).value();

  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const std::vector<RecordId> want = Direct(catalog, full);
  uint64_t fired = 0;
  uint64_t cancelled = 0;
  for (int q = 0; q < 10; ++q) {
    const ClusterQueryResult r = cluster->Execute(full);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.matches, want);
    // Healthy primaries are authoritative: every fired hedge is cancelled,
    // none wins, winners stay all-primary.
    EXPECT_EQ(r.hedge_wins, 0u);
    EXPECT_EQ(r.hedges_cancelled, r.hedges_fired);
    for (const char w : r.winners) EXPECT_EQ(w, 'p');
    fired += r.hedges_fired;
    cancelled += r.hedges_cancelled;
  }
  // An immediate hedge delay against 0.05 ms/page reads: hedges do fire.
  EXPECT_GT(fired, 0u);
  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.hedges_fired")->value(), fired);
  EXPECT_EQ(reg.GetCounter("cluster.hedges_cancelled")->value(), cancelled);
  EXPECT_EQ(reg.GetCounter("cluster.hedge_wins")->value(), 0u);
}

TEST(ClusterHedgeTest, FirstSuccessHedgeWinsPastASlowNode) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, Mirror2());
  ClusterOptions options = Deterministic();
  options.hedging = true;
  options.hedge_policy = HedgePolicy::kFirstSuccess;
  options.hedge_delay_ms = 0.5;
  options.node_latency_ms = {0.0, 25.0, 0.0, 0.0};  // Node 1 is a straggler.
  auto cluster = Cluster::Create(env, options).value();

  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const ClusterQueryResult r = cluster->Execute(full);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.matches, Direct(catalog, full));
  // The slow node's route is hedged to its replica holder, which finishes
  // first; the straggler's result is dropped unread.
  EXPECT_GE(r.hedges_fired, 1u);
  EXPECT_GE(r.hedge_wins, 1u);
  EXPECT_NE(r.winners.find('h'), std::string::npos) << r.winners;
}

TEST(ClusterBreakerTest, NodeBreakersTripAndRemoveNodesFromPlanning) {
  MemEnv env;
  CommitCatalog(&env, Mirror2());
  ClusterOptions options;
  options.num_nodes = 4;
  options.hedging = false;
  // Every read fails, services never retry: each observed sub-query
  // completion feeds its node breaker one failure.
  options.node_transient_prob = 1.0;
  options.node_max_transient_attempts = 1000000;
  options.node.read.retry.max_attempts = 1;
  options.node.breaker.min_events = 1000000;  // Per-disk breakers stay out.
  options.node.breaker.window = 1000000;
  options.node_breaker.min_events = 1;
  options.node_breaker.window = 1;
  options.node_breaker.failure_ratio = 0.5;
  options.node_breaker.open_ms = 1e18;  // Once open, stays open.
  auto cluster = Cluster::Create(env, options).value();

  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const ClusterQueryResult first = cluster->Execute(full);
  EXPECT_EQ(first.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(first.matches.empty());
  EXPECT_GT(first.sub_queries, 0u);

  // At least the first gathered route's primary and failover targets were
  // observed failing, so their breakers opened.
  uint32_t open = 0;
  for (uint32_t n = 0; n < 4; ++n) {
    if (cluster->NodeBreakerState(n) == BreakerState::kOpen) ++open;
  }
  EXPECT_GT(open, 0u);

  // The first query's gather fed every node's breaker at least one
  // observed failure (each primary plus the next node as failover), so all
  // four are now open. Open breakers are planned around exactly like
  // deaths: with every node refused the query never scatters at all.
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(cluster->NodeBreakerState(n), BreakerState::kOpen) << n;
  }
  const ClusterQueryResult refused = cluster->Execute(full);
  EXPECT_EQ(refused.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(refused.sub_queries, 0u);

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_GT(reg.GetCounter("cluster.node_breaker.opened")->value(), 0u);
}

/// The determinism fingerprint: everything the property test asserts is
/// identical across coordinator thread counts. Latencies and hedge-fire
/// counts are deliberately excluded.
struct Fingerprint {
  StatusCode code = StatusCode::kOk;
  bool complete = false;
  uint64_t buckets_touched = 0;
  uint64_t unavailable_buckets = 0;
  std::string winners;
  std::vector<RecordId> matches;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint FingerprintOf(const ClusterQueryResult& r) {
  Fingerprint f;
  f.code = r.status.code();
  f.complete = r.complete;
  f.buckets_touched = r.buckets_touched;
  f.unavailable_buckets = r.unavailable_buckets;
  f.winners = r.winners;
  f.matches = r.matches;
  return f;
}

std::vector<serve::QueryRequest> PropertyQueries() {
  std::vector<serve::QueryRequest> queries;
  queries.push_back(Range({0.0, 0.0}, {1.0, 1.0}));
  queries.push_back(Range({0.0, 0.0}, {0.49, 0.49}));
  queries.push_back(Range({0.5, 0.0}, {1.0, 0.49}));
  queries.push_back(Range({0.0, 0.5}, {0.49, 1.0}));
  queries.push_back(Range({0.5, 0.5}, {1.0, 1.0}));
  queries.push_back(Range({0.05, 0.3}, {0.1, 0.35}));   // Single bucket.
  queries.push_back(Range({0.3, 0.3}, {0.7, 0.7}));
  queries.push_back(Range({0.0, 0.4}, {1.0, 0.6}));     // Row strip.
  queries.push_back(Range({0.4, 0.0}, {0.6, 1.0}));     // Column strip.
  queries.push_back(Range({0.8, 0.8}, {0.9, 0.9}));
  queries.push_back(Range({0.1, 0.1}, {0.9, 0.2}));
  queries.push_back(Range({0.2, 0.6}, {0.8, 0.95}));
  return queries;
}

/// Runs the fixed three-phase kill schedule with `threads` coordinator
/// threads and returns one fingerprint per (phase, query).
std::vector<Fingerprint> RunPropertySchedule(const MemEnv& env,
                                             uint32_t threads) {
  ClusterOptions options = Deterministic();
  options.hedging = true;  // Hedges may fire; winners must not move.
  options.hedge_policy = HedgePolicy::kPrimaryPreferred;
  options.hedge_delay_ms = 0.0;
  options.seed = 11;
  auto cluster = Cluster::Create(env, options).value();
  const std::vector<serve::QueryRequest> queries = PropertyQueries();
  std::vector<Fingerprint> out(queries.size() * 3);

  const auto run_phase = [&](size_t phase) {
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    for (uint32_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < queries.size();
             i = next.fetch_add(1)) {
          out[phase * queries.size() + i] =
              FingerprintOf(cluster->Execute(queries[i]));
        }
      });
    }
    for (std::thread& th : pool) th.join();
  };

  run_phase(0);  // All healthy.
  EXPECT_TRUE(cluster->KillNode(1).ok());
  run_phase(1);  // One node dead: mirror reroutes, still complete.
  EXPECT_TRUE(cluster->KillNode(2).ok());
  run_phase(2);  // Quorum lost: everything refused.
  return out;
}

TEST(ClusterPropertyTest, SameScheduleSameOutcomeAcrossThreadCounts) {
  MemEnv env;
  CommitCatalog(&env, Mirror2());
  const std::vector<Fingerprint> reference = RunPropertySchedule(env, 1);

  // Sanity on the reference itself: phase 0 complete, phase 2 refused.
  const size_t q = PropertyQueries().size();
  for (size_t i = 0; i < q; ++i) {
    EXPECT_TRUE(reference[i].complete) << i;
    EXPECT_EQ(reference[2 * q + i].code, StatusCode::kUnavailable) << i;
    EXPECT_TRUE(reference[2 * q + i].matches.empty()) << i;
  }

  for (const uint32_t threads : {4u, 16u}) {
    const std::vector<Fingerprint> got = RunPropertySchedule(env, threads);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], reference[i])
          << threads << " threads, phase " << i / q << ", query " << i % q;
    }
  }
}

TEST(ClusterScriptTest, ParsesEveryDirective) {
  const auto commands = ParseClusterScript(
      "# comment\n"
      "\n"
      "query dm 0.1,0.2 0.6,0.9\n"
      "query dm 0,0 1,1 250\r\n"
      "kill-node 2\n"
      "revive-node 2\n"
      "kill-zone 1\n"
      "revive-zone 1\n"
      "advance-ms 150.5\n"
      "migrate fx 8\n").value();
  ASSERT_EQ(commands.size(), 8u);
  EXPECT_EQ(commands[0].kind, ClusterCommand::Kind::kQuery);
  EXPECT_EQ(commands[0].query.relation, "dm");
  EXPECT_EQ(commands[0].query.lo, (std::vector<double>{0.1, 0.2}));
  EXPECT_EQ(commands[0].query.hi, (std::vector<double>{0.6, 0.9}));
  EXPECT_EQ(commands[1].query.deadline_ms, 250.0);
  EXPECT_EQ(commands[2].kind, ClusterCommand::Kind::kKillNode);
  EXPECT_EQ(commands[2].node, 2u);
  EXPECT_EQ(commands[3].kind, ClusterCommand::Kind::kReviveNode);
  EXPECT_EQ(commands[4].kind, ClusterCommand::Kind::kKillZone);
  EXPECT_EQ(commands[4].zone, 1u);
  EXPECT_EQ(commands[5].kind, ClusterCommand::Kind::kReviveZone);
  EXPECT_EQ(commands[5].zone, 1u);
  EXPECT_EQ(commands[6].kind, ClusterCommand::Kind::kAdvance);
  EXPECT_EQ(commands[6].advance_ms, 150.5);
  EXPECT_EQ(commands[7].kind, ClusterCommand::Kind::kMigrate);
  EXPECT_EQ(commands[7].migrate_method, "fx");
  EXPECT_EQ(commands[7].migrate_disks, 8u);
}

TEST(ClusterScriptTest, RejectsMalformedLinesByNumber) {
  EXPECT_FALSE(ParseClusterScript("frobnicate\n").ok());
  EXPECT_FALSE(ParseClusterScript("query dm 0,0\n").ok());
  EXPECT_FALSE(ParseClusterScript("query dm 0,x 1,1\n").ok());
  EXPECT_FALSE(ParseClusterScript("query dm 0,0 1,1,1\n").ok());
  EXPECT_FALSE(ParseClusterScript("query dm 0,0 1,1 -5\n").ok());
  EXPECT_FALSE(ParseClusterScript("kill-node\n").ok());
  EXPECT_FALSE(ParseClusterScript("kill-node x\n").ok());
  EXPECT_FALSE(ParseClusterScript("kill-zone\n").ok());
  EXPECT_FALSE(ParseClusterScript("kill-zone two\n").ok());
  EXPECT_FALSE(ParseClusterScript("revive-zone\n").ok());
  EXPECT_FALSE(ParseClusterScript("advance-ms -1\n").ok());
  EXPECT_FALSE(ParseClusterScript("migrate fx\n").ok());
  EXPECT_FALSE(ParseClusterScript("migrate fx eight\n").ok());
  const Status st =
      ParseClusterScript("query dm 0,0 1,1\nbad\n").status();
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
}

/// 8x8 grid on 8 virtual disks over 4 nodes (two disks per node): the
/// smallest cluster exhibiting the chained self-colocation trap, and the
/// topology the zone tests use (nodes {0,1} = zone 0, nodes {2,3} =
/// zone 1 under Grid(4, 2, 2)).
Catalog CommitWideCatalog(MemEnv* env, uint64_t seed = 1) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {8, 8}).value();
  const GridSpec grid = f.grid();
  Rng rng(seed);
  for (uint64_t b = 0; b < grid.num_buckets(); ++b) {
    const BucketCoords c = grid.Delinearize(b);
    for (uint32_t k = 0; k < 8; ++k) {
      const std::vector<double> point = {
          (c[0] + rng.NextDouble()) / 8.0, (c[1] + rng.NextDouble()) / 8.0};
      EXPECT_TRUE(f.Insert(point).ok());
    }
  }
  Catalog catalog(8);
  Result<DeclusteredFile> rel =
      DeclusteredFile::Create(std::move(f), "dm", 8);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(catalog.AddRelation("dm", std::move(rel).value()).ok());
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy = Mirror2();
  EXPECT_TRUE(SaveCatalogManifest(catalog, env, options).ok());
  return catalog;
}

/// 4 nodes over 8 disks, 2-node zones, quorum low enough that killing a
/// whole zone (2 of 4 nodes) still leaves the coordinator serving.
ClusterOptions ZonedOptions(PlacementPolicy policy) {
  ClusterOptions options = Deterministic(4);
  options.quorum_fraction = 0.25;
  PlacementSpec spec;
  spec.policy = policy;
  spec.topology = Topology::Grid(4, 2, 2).value();
  spec.seed = 7;
  options.placement = spec;
  return options;
}

TEST(ClusterPlacementTest, ChainedSelfColocationWarnsAtConstruction) {
  MemEnv env;
  CommitWideCatalog(&env);
  auto chained =
      Cluster::Create(env, ZonedOptions(PlacementPolicy::kChained)).value();
  // Two disks per node: chained copy 1 of every even disk stays on the
  // owner's node. The warning names the trapped disks.
  ASSERT_FALSE(chained->PlacementWarnings().empty());
  EXPECT_NE(chained->PlacementWarnings()[0].find("0,2,4,6"),
            std::string::npos)
      << chained->PlacementWarnings()[0];

  auto zoned =
      Cluster::Create(env, ZonedOptions(PlacementPolicy::kZoneAware)).value();
  EXPECT_TRUE(zoned->PlacementWarnings().empty());
  EXPECT_EQ(zoned->placement_spec().policy, PlacementPolicy::kZoneAware);
}

TEST(ClusterPlacementTest, ZoneAwareSurvivesZoneKillWhereChainedCannot) {
  // The acceptance demo: identical catalog, identical zone kill; the
  // zone_aware layout answers everything, the chained layout drops the
  // buckets whose both copies lived in the dead zone.
  MemEnv env;
  const Catalog catalog = CommitWideCatalog(&env);
  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const std::vector<RecordId> want = Direct(catalog, full);

  auto zoned =
      Cluster::Create(env, ZonedOptions(PlacementPolicy::kZoneAware)).value();
  ASSERT_TRUE(zoned->KillZone(1).ok());
  EXPECT_TRUE(zoned->NodeAlive(0));
  EXPECT_TRUE(zoned->NodeAlive(1));
  EXPECT_FALSE(zoned->NodeAlive(2));
  EXPECT_FALSE(zoned->NodeAlive(3));
  const ClusterQueryResult safe = zoned->Execute(full);
  ASSERT_TRUE(safe.status.ok()) << safe.status.ToString();
  EXPECT_TRUE(safe.complete);
  EXPECT_EQ(safe.unavailable_buckets, 0u);
  EXPECT_EQ(safe.matches, want);
  ASSERT_TRUE(zoned->ReviveZone(1).ok());
  EXPECT_TRUE(zoned->NodeAlive(2));

  auto chained =
      Cluster::Create(env, ZonedOptions(PlacementPolicy::kChained)).value();
  ASSERT_TRUE(chained->KillZone(1).ok());
  const ClusterQueryResult lossy = chained->Execute(full);
  EXPECT_FALSE(lossy.complete);
  EXPECT_GT(lossy.unavailable_buckets, 0u);

  EXPECT_EQ(zoned->KillZone(9).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(zoned->ReviveZone(9).code(), StatusCode::kInvalidArgument);
}

TEST(ClusterPlacementTest, ZoneWindowsFollowTheVirtualClock) {
  MemEnv env;
  const Catalog catalog = CommitWideCatalog(&env);
  ClusterOptions options = ZonedOptions(PlacementPolicy::kZoneAware);
  ZoneFaultWindow w;
  w.zone = 1;
  w.from_ms = 100.0;
  w.until_ms = 200.0;
  options.zone_windows.push_back(w);
  auto cluster = Cluster::Create(env, options).value();
  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const std::vector<RecordId> want = Direct(catalog, full);

  const ClusterQueryResult before = cluster->Execute(full);
  ASSERT_TRUE(before.status.ok());
  EXPECT_TRUE(before.complete);
  EXPECT_EQ(before.rerouted_subqueries, 0u);

  // Inside the window the whole zone (nodes 2 and 3) is down, but the
  // zone-aware copies keep the answer whole.
  cluster->AdvanceTimeMs(150.0);
  EXPECT_TRUE(cluster->NodeAlive(1));
  EXPECT_FALSE(cluster->NodeAlive(2));
  EXPECT_FALSE(cluster->NodeAlive(3));
  const ClusterQueryResult inside = cluster->Execute(full);
  ASSERT_TRUE(inside.status.ok()) << inside.status.ToString();
  EXPECT_TRUE(inside.complete);
  EXPECT_GT(inside.rerouted_subqueries, 0u);
  EXPECT_EQ(inside.matches, want);

  cluster->AdvanceTimeMs(250.0);
  EXPECT_TRUE(cluster->NodeAlive(2));
  const ClusterQueryResult after = cluster->Execute(full);
  ASSERT_TRUE(after.status.ok());
  EXPECT_TRUE(after.complete);

  // A zone window referencing a zone outside the topology is rejected.
  ClusterOptions bad = ZonedOptions(PlacementPolicy::kZoneAware);
  ZoneFaultWindow out;
  out.zone = 5;
  bad.zone_windows.push_back(out);
  EXPECT_FALSE(Cluster::Create(env, bad).ok());
}

TEST(ClusterPlacementTest, InflightAccountingSettlesToZero) {
  MemEnv env;
  CommitWideCatalog(&env);
  auto cluster =
      Cluster::Create(env, ZonedOptions(PlacementPolicy::kZoneAware)).value();
  ASSERT_TRUE(cluster->KillNode(2).ok());
  for (int q = 0; q < 5; ++q) {
    const ClusterQueryResult r =
        cluster->Execute(Range({0.0, 0.0}, {1.0, 1.0}));
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.complete);
  }
  // Load-aware routing adds in-flight buckets on submit and settles every
  // route exactly once; at rest the gauges are all back to zero.
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(cluster->NodeInflight(n), 0) << "node " << n;
  }
}

TEST(TokenBucketTest, DebtBasedPacingMath) {
  // 1000 tokens/sec, 50-token burst bank, starting empty: the first
  // consume goes straight into debt and must wait amount/rate.
  TokenBucket bucket(1000.0, 50.0);
  EXPECT_DOUBLE_EQ(bucket.ConsumeDelayMs(100.0, 0.0), 100.0);
  // 100 ms later the debt is repaid; 25 more tokens accrue by 125 ms, so
  // a 25-token consume is free.
  EXPECT_DOUBLE_EQ(bucket.ConsumeDelayMs(25.0, 125.0), 0.0);
  // Refill is capped at the burst bank: after a long idle stretch only 50
  // tokens are available, so consuming 150 owes 100 tokens -> 100 ms.
  EXPECT_DOUBLE_EQ(bucket.ConsumeDelayMs(150.0, 100000.0), 100.0);

  // rate <= 0 disables pacing entirely.
  TokenBucket unpaced(0.0, 50.0);
  EXPECT_DOUBLE_EQ(unpaced.ConsumeDelayMs(1e9, 0.0), 0.0);
}

TEST(MigrationPacingTest, PacedCopyReportsBytesAndWaits) {
  MemEnv env;
  CommitCatalog(&env, Mirror2());
  auto cluster = Cluster::Create(env, Deterministic()).value();

  MigrationOptions mo;
  mo.new_method = "fx";
  mo.new_num_disks = 4;
  mo.copy_bytes_per_sec = 4e6;  // Pace, but keep the test fast.
  const MigrationReport report = cluster->Migrate(mo).value();
  ASSERT_TRUE(report.committed) << report.abort_reason;
  EXPECT_GT(report.bytes_copied, 0u);
  // The bucket starts empty, so a paced copy always records some wait.
  EXPECT_GT(report.pacing_wait_ms, 0.0);

  // Unpaced: same copy, no pacing debt.
  MigrationOptions fast;
  fast.new_method = "dm";
  fast.new_num_disks = 4;
  const MigrationReport unpaced = cluster->Migrate(fast).value();
  ASSERT_TRUE(unpaced.committed) << unpaced.abort_reason;
  EXPECT_GT(unpaced.bytes_copied, 0u);
  EXPECT_DOUBLE_EQ(unpaced.pacing_wait_ms, 0.0);

  // Negative pacing knobs are validation errors, not silent no-ops.
  MigrationOptions bad;
  bad.new_method = "fx";
  bad.new_num_disks = 4;
  bad.copy_bytes_per_sec = -1.0;
  EXPECT_EQ(cluster->Migrate(bad).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cluster
}  // namespace griddecl
