#include "griddecl/common/crc32c.h"

#include <string>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog 0123456789";
  const uint32_t one_shot = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t first = Crc32c(data.substr(0, split));
    EXPECT_EQ(Crc32c(data.substr(split), first), one_shot) << split;
  }
}

TEST(Crc32cTest, EveryBitFlipChangesTheSum) {
  const std::string data = "declustering";
  const uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string copy = data;
      copy[i] = static_cast<char>(copy[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(copy), base) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, AllLengthsAgreeWithBitwiseReference) {
  // Cross-check the slice-by-8 implementation against a plain bitwise
  // CRC32C over every length 0..64 (exercises all tail paths).
  auto bitwise = [](const std::string& s) {
    uint32_t crc = 0xFFFFFFFFu;
    for (char c : s) {
      crc ^= static_cast<uint8_t>(c);
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ (0x82F63B78u & (~(crc & 1) + 1));
      }
    }
    return ~crc;
  };
  std::string data;
  for (size_t len = 0; len <= 64; ++len) {
    EXPECT_EQ(Crc32c(data), bitwise(data)) << len;
    data.push_back(static_cast<char>(len * 37 + 11));
  }
}

}  // namespace
}  // namespace griddecl
