#include "griddecl/gridfile/declustered_file.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"

namespace griddecl {
namespace {

GridFile MakeLoadedFile(uint32_t partitions, int num_records, uint64_t seed) {
  Schema schema =
      Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f =
      GridFile::Create(std::move(schema), {partitions, partitions}).value();
  Rng rng(seed);
  for (int i = 0; i < num_records; ++i) {
    EXPECT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  return f;
}

TEST(DeclusteredFileTest, CreateValidation) {
  GridFile f = MakeLoadedFile(16, 10, 1);
  EXPECT_FALSE(DeclusteredFile::Create(std::move(f), "bogus", 4).ok());
  GridFile f2 = MakeLoadedFile(15, 10, 1);
  // ECC inapplicable on a 15x15 grid.
  const auto r = DeclusteredFile::Create(std::move(f2), "ecc", 4);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(DeclusteredFileTest, DiskOfRecordConsistentWithMethod) {
  DeclusteredFile df =
      DeclusteredFile::Create(MakeLoadedFile(16, 200, 2), "hcam", 8).value();
  for (RecordId id = 0; id < df.file().num_records(); ++id) {
    const BucketCoords b = df.file().BucketOfRecord(id);
    EXPECT_EQ(df.DiskOfRecord(id), df.method().DiskOf(b));
  }
}

TEST(DeclusteredFileTest, RecordsPerDiskSumsToTotal) {
  DeclusteredFile df =
      DeclusteredFile::Create(MakeLoadedFile(16, 500, 3), "fx", 8).value();
  const auto counts = df.RecordsPerDisk();
  ASSERT_EQ(counts.size(), 8u);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, 500u);
}

TEST(DeclusteredFileTest, ExecuteRangeEndToEnd) {
  DeclusteredFile df =
      DeclusteredFile::Create(MakeLoadedFile(16, 400, 4), "hcam", 4).value();
  const auto exec = df.ExecuteRange({0.2, 0.2}, {0.5, 0.5}).value();
  // Metric relationships.
  EXPECT_GT(exec.buckets_touched, 0u);
  EXPECT_GE(exec.response_units, exec.optimal_units);
  EXPECT_LE(exec.response_units, exec.buckets_touched);
  EXPECT_EQ(exec.io.TotalRequests(), exec.buckets_touched);
  EXPECT_GT(exec.io.makespan_ms, 0.0);
  // Matches are exactly the records in range.
  for (RecordId id : exec.matches) {
    const Record& r = df.file().record(id);
    EXPECT_GE(r[0], 0.2);
    EXPECT_LE(r[0], 0.5);
    EXPECT_GE(r[1], 0.2);
    EXPECT_LE(r[1], 0.5);
  }
  // And none are missed.
  uint64_t expected = 0;
  for (RecordId id = 0; id < df.file().num_records(); ++id) {
    const Record& r = df.file().record(id);
    if (r[0] >= 0.2 && r[0] <= 0.5 && r[1] >= 0.2 && r[1] <= 0.5) ++expected;
  }
  EXPECT_EQ(exec.matches.size(), expected);
}

TEST(DeclusteredFileTest, ResponseUnitsMatchStandaloneMetric) {
  DeclusteredFile df =
      DeclusteredFile::Create(MakeLoadedFile(16, 100, 5), "dm", 4).value();
  const auto exec = df.ExecuteRange({0.0, 0.0}, {0.49, 0.49}).value();
  // An 8x8 block of a 16x16 grid under DM with M=4: every residue appears
  // 16 times.
  EXPECT_EQ(exec.buckets_touched, 64u);
  EXPECT_EQ(exec.optimal_units, 16u);
  EXPECT_EQ(exec.response_units, 16u);
}

TEST(DeclusteredFileTest, MutableFileAllowsIncrementalLoad) {
  DeclusteredFile df =
      DeclusteredFile::Create(MakeLoadedFile(8, 0, 6), "linear", 2).value();
  EXPECT_EQ(df.file().num_records(), 0u);
  ASSERT_TRUE(df.mutable_file().Insert({0.5, 0.5}).ok());
  EXPECT_EQ(df.file().num_records(), 1u);
  const auto counts = df.RecordsPerDisk();
  EXPECT_EQ(counts[df.DiskOfRecord(0)], 1u);
}

}  // namespace
}  // namespace griddecl
