#include "griddecl/eval/disk_map.h"

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/eval/evaluator.h"
#include "griddecl/eval/metrics.h"
#include "griddecl/eval/parallel.h"
#include "griddecl/methods/registry.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

/// A uniformly random rectangle within `grid`.
BucketRect RandomRect(const GridSpec& grid, Rng* rng) {
  const uint32_t k = grid.num_dims();
  BucketCoords lo(k);
  BucketCoords hi(k);
  for (uint32_t i = 0; i < k; ++i) {
    lo[i] = static_cast<uint32_t>(rng->NextBelow(grid.dim(i)));
    hi[i] = lo[i] + static_cast<uint32_t>(rng->NextBelow(grid.dim(i) - lo[i]));
  }
  return BucketRect::Create(lo, hi).value();
}

/// The grid/M configurations the equivalence suite sweeps. Mixed parities
/// and a non-power-of-two so every registry restriction is exercised
/// (methods that reject a configuration are skipped, mirroring the paper).
struct Config {
  std::vector<uint32_t> dims;
  uint32_t num_disks;
};

std::vector<Config> EquivalenceConfigs() {
  return {
      {{8, 8}, 4},  {{16, 16}, 16}, {{5, 7}, 3},      {{12, 9}, 5},
      {{32, 1}, 8}, {{1, 32}, 8},   {{4, 8, 4}, 8},   {{3, 5, 7}, 6},
      {{64}, 16},   {{2, 2, 2, 2}, 4},
  };
}

TEST(DiskMapTest, LookupsMatchVirtualDiskOfForEveryRegistryMethod) {
  for (const Config& cfg : EquivalenceConfigs()) {
    const GridSpec grid = GridSpec::Create(cfg.dims).value();
    for (const std::string& name : AllMethodNames()) {
      MethodOptions opts;
      opts.seed = 7;
      Result<std::unique_ptr<DeclusteringMethod>> method =
          CreateMethod(name, grid, cfg.num_disks, opts);
      if (!method.ok()) continue;  // Restricted configuration; skip.
      const DiskMap map = DiskMap::Build(*method.value());
      EXPECT_EQ(map.num_disks(), cfg.num_disks);
      EXPECT_EQ(map.grid(), grid);
      grid.ForEachBucket([&](const BucketCoords& c) {
        ASSERT_EQ(map.DiskOf(c), method.value()->DiskOf(c))
            << name << " on " << grid.ToString() << " at " << c.ToString();
        // The flat index is the row-major rank.
        ASSERT_EQ(map.DiskAt(grid.Linearize(c)), map.DiskOf(c));
      });
    }
  }
}

TEST(DiskMapTest, CountsForRectMatchesPerDiskCountsOnRandomQueries) {
  Rng rng(20260806);
  for (const Config& cfg : EquivalenceConfigs()) {
    const GridSpec grid = GridSpec::Create(cfg.dims).value();
    for (const std::string& name : AllMethodNames()) {
      MethodOptions opts;
      opts.seed = 7;
      Result<std::unique_ptr<DeclusteringMethod>> method =
          CreateMethod(name, grid, cfg.num_disks, opts);
      if (!method.ok()) continue;
      const DiskMap map = DiskMap::Build(*method.value());
      std::vector<uint64_t> counts;
      for (int trial = 0; trial < 16; ++trial) {
        const BucketRect rect = RandomRect(grid, &rng);
        const RangeQuery q = RangeQuery::Create(grid, rect).value();
        map.CountsForRect(rect, counts);
        ASSERT_EQ(counts, PerDiskCounts(*method.value(), q))
            << name << " on " << grid.ToString() << " rect "
            << rect.ToString();
        std::vector<uint64_t> scratch;
        ASSERT_EQ(map.ResponseTimeForRect(rect, scratch),
                  ResponseTime(*method.value(), q));
      }
    }
  }
}

TEST(DiskMapTest, AnalyticPathCoversStrideGcdCases) {
  // GDM strides with every gcd class against M=8: coprime (period 8),
  // gcd 2 (period 4), gcd 4 (period 2), and 0 mod M (period 1).
  const GridSpec grid = GridSpec::Create({16, 24}).value();
  Rng rng(99);
  for (uint32_t last_coeff : {1u, 3u, 2u, 4u, 8u, 16u}) {
    MethodOptions opts;
    opts.gdm_coefficients = {5, last_coeff};
    const auto gdm = CreateMethod("gdm", grid, 8, opts).value();
    const DiskMap map = DiskMap::Build(*gdm);
    ASSERT_TRUE(map.has_row_stride()) << "coeff " << last_coeff;
    EXPECT_EQ(map.row_stride(), last_coeff % 8);
    std::vector<uint64_t> counts;
    for (int trial = 0; trial < 24; ++trial) {
      const BucketRect rect = RandomRect(grid, &rng);
      map.CountsForRect(rect, counts);
      const RangeQuery q = RangeQuery::Create(grid, rect).value();
      ASSERT_EQ(counts, PerDiskCounts(*gdm, q))
          << "coeff " << last_coeff << " rect " << rect.ToString();
    }
  }
}

TEST(DiskMapTest, RowStrideDetection) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  const DiskMap dm_map = DiskMap::Build(*dm);
  EXPECT_TRUE(dm_map.has_row_stride());
  EXPECT_EQ(dm_map.row_stride(), 1u);

  const auto linear = CreateMethod("linear", grid, 4).value();
  const DiskMap linear_map = DiskMap::Build(*linear);
  EXPECT_TRUE(linear_map.has_row_stride());
  EXPECT_EQ(linear_map.row_stride(), 1u);

  const auto hcam = CreateMethod("hcam", grid, 4).value();
  EXPECT_FALSE(DiskMap::Build(*hcam).has_row_stride());

  const auto random = CreateMethod("random", grid, 7).value();
  EXPECT_FALSE(DiskMap::Build(*random).has_row_stride());

  // Single-bucket rows hold any stride vacuously; the analytic path must
  // still count them exactly.
  const GridSpec thin = GridSpec::Create({9, 1}).value();
  const auto thin_hcam = CreateMethod("hcam", thin, 3).value();
  const DiskMap thin_map = DiskMap::Build(*thin_hcam);
  EXPECT_TRUE(thin_map.has_row_stride());
  std::vector<uint64_t> counts;
  const BucketRect all = BucketRect::Full(thin);
  thin_map.CountsForRect(all, counts);
  EXPECT_EQ(counts, PerDiskCounts(*thin_hcam,
                                  RangeQuery::Create(thin, all).value()));
}

TEST(DiskMapTest, ElementWidthTracksDiskCount) {
  const GridSpec small = GridSpec::Create({8, 8}).value();
  EXPECT_EQ(DiskMap::Build(*CreateMethod("dm", small, 16).value())
                .element_width(),
            1u);
  EXPECT_EQ(DiskMap::BytesNeeded(small, 16), small.num_buckets());

  const GridSpec wide = GridSpec::Create({40, 40}).value();
  const auto m300 = CreateMethod("linear", wide, 300).value();
  const DiskMap map300 = DiskMap::Build(*m300);
  EXPECT_EQ(map300.element_width(), 2u);
  EXPECT_EQ(map300.SizeBytes(), 2 * wide.num_buckets());

  const GridSpec big = GridSpec::Create({300, 300}).value();
  const auto m70k = CreateMethod("linear", big, 70000).value();
  const DiskMap map70k = DiskMap::Build(*m70k);
  EXPECT_EQ(map70k.element_width(), 4u);
  // Spot-check wide ids survive the widest table.
  std::vector<uint64_t> counts;
  const BucketRect rect = BucketRect::Create({10, 0}, {12, 299}).value();
  map70k.CountsForRect(rect, counts);
  ASSERT_EQ(counts,
            PerDiskCounts(*m70k, RangeQuery::Create(big, rect).value()));
}

TEST(EvaluatorEngineTest, DiskMapAndVirtualPathsProduceIdenticalAggregates) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({3, 5}, "3x5").value();
  for (const std::string& name : AllMethodNames()) {
    MethodOptions mopts;
    mopts.seed = 11;
    Result<std::unique_ptr<DeclusteringMethod>> method =
        CreateMethod(name, grid, 8, mopts);
    if (!method.ok()) continue;
    EvalOptions no_map;
    no_map.use_disk_map = false;
    const Evaluator fast(*method.value());
    const Evaluator slow(*method.value(), no_map);
    ASSERT_NE(fast.disk_map(), nullptr);
    EXPECT_EQ(slow.disk_map(), nullptr);
    const WorkloadEval a = fast.EvaluateWorkload(w);
    const WorkloadEval b = slow.EvaluateWorkload(w);
    // Same per-query integers in the same order: every aggregate is
    // bit-for-bit identical, doubles included.
    EXPECT_EQ(a.num_queries, b.num_queries) << name;
    EXPECT_EQ(a.num_optimal, b.num_optimal) << name;
    EXPECT_EQ(a.MeanResponse(), b.MeanResponse()) << name;
    EXPECT_EQ(a.MaxResponse(), b.MaxResponse()) << name;
    EXPECT_EQ(a.MeanRatio(), b.MeanRatio()) << name;
    EXPECT_EQ(a.MeanDeviation(), b.MeanDeviation()) << name;
  }
}

TEST(EvaluatorEngineTest, MemoryCapFallsBackToVirtualPath) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  EvalOptions tiny_cap;
  tiny_cap.max_disk_map_bytes = 16;  // 1024-byte table will not fit.
  const Evaluator ev(*dm, tiny_cap);
  EXPECT_EQ(ev.disk_map(), nullptr);
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 2}, "2x2").value();
  EXPECT_EQ(ev.EvaluateWorkload(w).num_queries, w.size());
}

TEST(EvaluatorEngineTest, ScratchOverloadIsExact) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 4).value();
  const Evaluator ev(*hcam);
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({3, 3}, "3x3").value();
  std::vector<uint64_t> scratch;
  for (const RangeQuery& q : w.queries) {
    const QueryEval with_scratch = ev.EvaluateQuery(q, scratch);
    const QueryEval fresh = ev.EvaluateQuery(q);
    EXPECT_EQ(with_scratch.response, fresh.response);
    EXPECT_EQ(with_scratch.optimal, fresh.optimal);
    EXPECT_EQ(with_scratch.num_buckets, fresh.num_buckets);
  }
}

TEST(ParallelEquivalenceTest, CountersEqualSerialBitForBit) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({4, 3}, "4x3").value();
  ASSERT_GE(w.size(), 64u);  // Above the serial fallback threshold.
  const WorkloadEval serial = Evaluator(*hcam).EvaluateWorkload(w);
  for (uint32_t threads : {2u, 3u, 8u}) {
    EvalOptions opts;
    opts.num_threads = threads;
    const WorkloadEval par = Evaluator(*hcam, opts).EvaluateWorkload(w);
    EXPECT_EQ(par.num_queries, serial.num_queries) << threads;
    EXPECT_EQ(par.num_optimal, serial.num_optimal) << threads;
    EXPECT_EQ(par.response.count(), serial.response.count()) << threads;
    EXPECT_EQ(par.response.min(), serial.response.min()) << threads;
    EXPECT_EQ(par.response.max(), serial.response.max()) << threads;
    EXPECT_EQ(par.additive_deviation.max(), serial.additive_deviation.max())
        << threads;
    EXPECT_NEAR(par.MeanResponse(), serial.MeanResponse(), 1e-9) << threads;
  }
  // The compatibility wrapper routes through the same engine.
  const WorkloadEval wrapped = ParallelEvaluateWorkload(*hcam, w, 4);
  EXPECT_EQ(wrapped.num_queries, serial.num_queries);
  EXPECT_EQ(wrapped.num_optimal, serial.num_optimal);
}

}  // namespace
}  // namespace griddecl
