#include "griddecl/query/distributions.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(ZipfSamplerTest, Validation) {
  EXPECT_FALSE(ZipfSampler::Create(0, 1.0).ok());
  EXPECT_FALSE(ZipfSampler::Create(4, -1.0).ok());
  EXPECT_TRUE(ZipfSampler::Create(4, 0.0).ok());
  EXPECT_TRUE(ZipfSampler::Create(1, 2.0).ok());
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOneAndDecrease) {
  const ZipfSampler z = ZipfSampler::Create(10, 1.0).value();
  double sum = 0;
  for (uint64_t v = 0; v < 10; ++v) {
    sum += z.Probability(v);
    if (v > 0) EXPECT_LE(z.Probability(v), z.Probability(v - 1));
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Zipf(1) over 10 values: P(0)/P(9) == 10.
  EXPECT_NEAR(z.Probability(0) / z.Probability(9), 10.0, 1e-9);
}

TEST(ZipfSamplerTest, ThetaZeroIsUniform) {
  const ZipfSampler z = ZipfSampler::Create(8, 0.0).value();
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_NEAR(z.Probability(v), 1.0 / 8, 1e-12);
  }
}

TEST(ZipfSamplerTest, SampleMatchesDistribution) {
  const ZipfSampler z = ZipfSampler::Create(5, 1.5).value();
  Rng rng(9);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(&rng)];
  for (uint64_t v = 0; v < 5; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / n, z.Probability(v), 0.01)
        << v;
  }
}

TEST(ZipfSamplerTest, SingleValue) {
  const ZipfSampler z = ZipfSampler::Create(1, 3.0).value();
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(z.Probability(0), 1.0);
}

TEST(ZipfPlacementsTest, ValidationAndBasics) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  Rng rng(2);
  EXPECT_FALSE(ZipfPlacements(grid, {4}, 10, 1.0, &rng, "w").ok());
  EXPECT_FALSE(ZipfPlacements(grid, {0, 4}, 10, 1.0, &rng, "w").ok());
  EXPECT_FALSE(ZipfPlacements(grid, {4, 17}, 10, 1.0, &rng, "w").ok());

  const Workload w = ZipfPlacements(grid, {4, 4}, 50, 1.0, &rng, "w").value();
  ASSERT_EQ(w.size(), 50u);
  for (const RangeQuery& q : w.queries) {
    EXPECT_EQ(q.NumBuckets(), 16u);
    EXPECT_TRUE(q.rect().WithinGrid(grid));
  }
}

TEST(ZipfPlacementsTest, SkewConcentratesNearOrigin) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  Rng rng(3);
  const Workload hot =
      ZipfPlacements(grid, {2, 2}, 400, 2.0, &rng, "hot").value();
  int near_origin = 0;
  for (const RangeQuery& q : hot.queries) {
    if (q.rect().lo()[0] < 8 && q.rect().lo()[1] < 8) ++near_origin;
  }
  // With theta=2 the head is heavy: well over half the mass sits in the
  // first few positions of each axis.
  EXPECT_GT(near_origin, 200);
}

TEST(ZipfPlacementsTest, DeterministicForSeed) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  Rng a(4);
  Rng b(4);
  const Workload wa = ZipfPlacements(grid, {3, 3}, 30, 1.0, &a, "a").value();
  const Workload wb = ZipfPlacements(grid, {3, 3}, 30, 1.0, &b, "b").value();
  for (size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa.queries[i].ToString(), wb.queries[i].ToString());
  }
}

}  // namespace
}  // namespace griddecl
