#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "griddecl/griddecl.h"

namespace griddecl {
namespace {

/// Boundary-of-the-domain coverage: maximum dimensionality, degenerate
/// dimensions, more disks than buckets, single-row grids — the corners a
/// downstream user will eventually hit.

TEST(EdgeCaseTest, MaxDimensionalityGrid) {
  // 8-d binary grid: 256 buckets — the classic ECC setting at the library's
  // dimensional limit.
  const GridSpec grid =
      GridSpec::Create({2, 2, 2, 2, 2, 2, 2, 2}).value();
  for (const char* name : {"dm", "fx", "exfx", "ecc", "hcam", "zcam",
                           "linear", "random"}) {
    const auto m = CreateMethod(name, grid, 8).value();
    std::vector<uint64_t> loads = m->DiskLoadHistogram();
    uint64_t total = 0;
    for (uint64_t l : loads) total += l;
    EXPECT_EQ(total, 256u) << name;
  }
}

TEST(EdgeCaseTest, DegenerateSingletonDimensions) {
  // Dimensions with a single partition carry no information; methods must
  // still work and effectively reduce to the non-degenerate dimensions.
  const GridSpec grid = GridSpec::Create({1, 16, 1, 16}).value();
  for (const char* name : {"dm", "fx", "exfx", "ecc", "hcam", "linear"}) {
    const auto m = CreateMethod(name, grid, 4).value();
    grid.ForEachBucket([&](const BucketCoords& c) {
      EXPECT_LT(m->DiskOf(c), 4u) << name;
    });
  }
  // DM on the degenerate grid equals DM on the reduced 16x16 grid.
  const auto full = CreateMethod("dm", grid, 4).value();
  const GridSpec reduced = GridSpec::Create({16, 16}).value();
  const auto red = CreateMethod("dm", reduced, 4).value();
  for (uint32_t i = 0; i < 16; ++i) {
    for (uint32_t j = 0; j < 16; ++j) {
      EXPECT_EQ(full->DiskOf({0, i, 0, j}), red->DiskOf({i, j}));
    }
  }
}

TEST(EdgeCaseTest, MoreDisksThanBuckets) {
  const GridSpec grid = GridSpec::Create({2, 2}).value();
  for (const char* name : {"dm", "fx", "exfx", "hcam", "linear", "random"}) {
    const auto m = CreateMethod(name, grid, 100).value();
    grid.ForEachBucket([&](const BucketCoords& c) {
      EXPECT_LT(m->DiskOf(c), 100u) << name;
    });
    // Any query is trivially optimal: |Q| <= 4 buckets can always be read
    // in ceil(|Q|/100) = 1 unit if distinct — check via IsStrictlyOptimal
    // only for methods that spread the 4 buckets onto 4 disks.
  }
  // HCAM round robin guarantees distinct disks here -> strictly optimal.
  const auto hcam = CreateMethod("hcam", grid, 100).value();
  EXPECT_TRUE(IsStrictlyOptimal(*hcam));
}

TEST(EdgeCaseTest, SingleRowGrid) {
  const GridSpec grid = GridSpec::Create({1, 64}).value();
  const auto dm = CreateMethod("dm", grid, 8).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  // On a 1-d layout DM is round robin along the row: every window of w
  // buckets costs exactly ceil(w/8). HCAM's rank order follows the Hilbert
  // traversal of the embedding square's edge, which is *not* the row
  // order, so it is merely sane here — a documented weakness of curve
  // allocation on degenerate grids.
  QueryGenerator gen(grid);
  for (uint32_t w : {3u, 8u, 20u}) {
    const Workload wl = gen.AllPlacements({1, w}, "row").value();
    const WorkloadEval e_dm = Evaluator(*dm).EvaluateWorkload(wl);
    const WorkloadEval e_h = Evaluator(*hcam).EvaluateWorkload(wl);
    EXPECT_DOUBLE_EQ(e_dm.MeanRatio(), 1.0) << w;
    EXPECT_GE(e_h.MeanRatio(), 1.0) << w;
    EXPECT_LE(e_h.MeanRatio(), 4.0) << w;
  }
}

TEST(EdgeCaseTest, WholeGridQueryEveryMethodNearOptimal) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const RangeQuery all =
      RangeQuery::Create(grid, BucketRect::Full(grid)).value();
  for (const char* name : {"dm", "fx", "ecc", "hcam", "zcam", "linear"}) {
    const auto m = CreateMethod(name, grid, 8).value();
    // Perfect static balance => whole-grid query is exactly optimal.
    EXPECT_EQ(ResponseTime(*m, all), 256u / 8) << name;
  }
}

TEST(EdgeCaseTest, EvaluatorHandlesMaxDisksAndTinyQueries) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto m = CreateMethod("hcam", grid, 65535).value();
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Point({1, 2})).value();
  EXPECT_EQ(ResponseTime(*m, q), 1u);
  EXPECT_EQ(OptimalResponseTime(1, 65535), 1u);
}

TEST(EdgeCaseTest, DeviationHistogramShape) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto dm = CreateMethod("dm", grid, 16).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({4, 4}, "4x4").value();
  const Histogram h = DeviationHistogram(*dm, w, 8);
  EXPECT_EQ(h.total_count(), w.size());
  // DM answers 4x4 queries at RT 4 vs optimal 1 -> deviation 3 everywhere.
  EXPECT_EQ(h.bucket_count(3), w.size());
  EXPECT_DOUBLE_EQ(h.FractionBelow(4), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(3), 0.0);
}

TEST(EdgeCaseTest, PagedExecutionChargesPages) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile file = GridFile::Create(std::move(schema), {4, 4}).value();
  // 60 records in one bucket, a handful elsewhere.
  for (int i = 0; i < 60; ++i) ASSERT_TRUE(file.Insert({0.1, 0.1}).ok());
  ASSERT_TRUE(file.Insert({0.9, 0.9}).ok());
  DeclusteredFile df =
      DeclusteredFile::Create(std::move(file), "hcam", 4).value();
  // Page holds 2 records: header 4 + 2*16 = 36 bytes.
  const auto exec = df.ExecuteRangePaged({0.0, 0.0}, {1.0, 1.0}, 36).value();
  // Bucket (0,0): ceil(60/2) = 30 pages; bucket (3,3): 1 page; all other
  // 14 buckets are empty -> 1 page each.
  EXPECT_EQ(exec.pages_touched, 30u + 1u + 14u);
  EXPECT_EQ(exec.buckets_touched, 16u);
  EXPECT_EQ(exec.io.TotalRequests(), exec.pages_touched);
  // The unpaged execution charges one request per bucket instead.
  const auto flat = df.ExecuteRange({0.0, 0.0}, {1.0, 1.0}).value();
  EXPECT_EQ(flat.io.TotalRequests(), 16u);
  EXPECT_GT(exec.io.makespan_ms, flat.io.makespan_ms);
}

}  // namespace
}  // namespace griddecl
