#include "griddecl/eval/evaluator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "griddecl/methods/registry.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

TEST(QueryEvalTest, DerivedQuantities) {
  QueryEval e;
  e.num_buckets = 10;
  e.response = 4;
  e.optimal = 3;
  EXPECT_EQ(e.AdditiveDeviation(), 1u);
  EXPECT_DOUBLE_EQ(e.Ratio(), 4.0 / 3.0);

  QueryEval empty;
  EXPECT_DOUBLE_EQ(empty.Ratio(), 1.0);
}

TEST(EvaluatorTest, SingleQueryAgainstHandComputation) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  Evaluator ev(*dm);
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Create({0, 0}, {1, 1}).value())
          .value();
  const QueryEval e = ev.EvaluateQuery(q);
  EXPECT_EQ(e.num_buckets, 4u);
  EXPECT_EQ(e.optimal, 1u);
  EXPECT_EQ(e.response, 2u);  // DM packs a 2x2 onto 3 disks.
}

TEST(EvaluatorTest, DeprecatedPointerCtorStillWorks) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  Evaluator ev(dm.get());
#pragma GCC diagnostic pop
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Create({0, 0}, {1, 1}).value())
          .value();
  EXPECT_EQ(ev.EvaluateQuery(q).response, Evaluator(*dm).EvaluateQuery(q).response);
}

TEST(EvaluatorTest, WorkloadAggregates) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 4).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 2}, "2x2").value();
  const WorkloadEval e = Evaluator(*hcam).EvaluateWorkload(w);
  EXPECT_EQ(e.num_queries, w.size());
  EXPECT_EQ(e.method_name, "HCAM");
  EXPECT_EQ(e.workload_name, "2x2");
  EXPECT_DOUBLE_EQ(e.MeanOptimal(), 1.0);
  EXPECT_GE(e.MeanResponse(), 1.0);
  EXPECT_LE(e.MeanResponse(), 4.0);
  EXPECT_GE(e.FractionOptimal(), 0.0);
  EXPECT_LE(e.FractionOptimal(), 1.0);
  EXPECT_NEAR(e.MeanDeviation(), e.MeanResponse() - e.MeanOptimal(), 1e-9);
}

TEST(EvaluatorTest, FractionOptimalCountsExactly) {
  // DM with M=2 on 1x2 queries: always optimal (adjacent buckets alternate).
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 2).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({1, 2}, "1x2").value();
  const WorkloadEval e = Evaluator(*dm).EvaluateWorkload(w);
  EXPECT_DOUBLE_EQ(e.FractionOptimal(), 1.0);
  EXPECT_EQ(e.num_optimal, e.num_queries);
  // 2x2 queries (volume 4, opt 2): checkerboard also optimal.
  const Workload w2 = gen.AllPlacements({2, 2}, "2x2").value();
  const WorkloadEval e2 = Evaluator(*dm).EvaluateWorkload(w2);
  EXPECT_DOUBLE_EQ(e2.FractionOptimal(), 1.0);
}

TEST(EvaluatorTest, EmptyWorkload) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto dm = CreateMethod("dm", grid, 2).value();
  Workload w;
  w.name = "empty";
  const WorkloadEval e = Evaluator(*dm).EvaluateWorkload(w);
  EXPECT_EQ(e.num_queries, 0u);
  EXPECT_DOUBLE_EQ(e.FractionOptimal(), 1.0);
  EXPECT_EQ(e.MeanResponse(), 0.0);
}

TEST(EvaluatorTest, ConfidenceIntervalHalfWidth) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  QueryGenerator gen(grid);
  // 2x2 under DM/4 costs exactly 2 everywhere: zero variance, zero CI.
  const Workload uniform = gen.AllPlacements({2, 2}, "2x2").value();
  const WorkloadEval e1 = Evaluator(*dm).EvaluateWorkload(uniform);
  EXPECT_DOUBLE_EQ(e1.ResponseCi95HalfWidth(), 0.0);
  // A mixed workload has spread; the CI must be positive and match the
  // closed form.
  Workload mixed = uniform;
  mixed.Append(gen.AllPlacements({1, 1}, "points").value());
  const WorkloadEval e2 = Evaluator(*dm).EvaluateWorkload(mixed);
  EXPECT_GT(e2.ResponseCi95HalfWidth(), 0.0);
  EXPECT_NEAR(e2.ResponseCi95HalfWidth(),
              1.96 * e2.response.stddev() /
                  std::sqrt(static_cast<double>(e2.num_queries)),
              1e-12);
  // Degenerate counts.
  WorkloadEval empty;
  EXPECT_DOUBLE_EQ(empty.ResponseCi95HalfWidth(), 0.0);
}

TEST(CompareMethodsTest, OrderAndSharedWorkload) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto dm = CreateMethod("dm", grid, 8).value();
  const auto fx = CreateMethod("fx", grid, 8).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({3, 3}, "3x3").value();
  const auto evals = CompareMethods({dm.get(), fx.get()}, w);
  ASSERT_EQ(evals.size(), 2u);
  EXPECT_EQ(evals[0].method_name, "DM/CMD");
  EXPECT_EQ(evals[1].method_name, "FX");
  EXPECT_EQ(evals[0].num_queries, evals[1].num_queries);
  // Same optimal baseline for both.
  EXPECT_DOUBLE_EQ(evals[0].MeanOptimal(), evals[1].MeanOptimal());
}

}  // namespace
}  // namespace griddecl
