#include "griddecl/sim/event_sim.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/eval/metrics.h"
#include "griddecl/methods/registry.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

DiskParams UnitParams() {
  DiskParams p;
  p.avg_seek_ms = 0.0;
  p.rotational_latency_ms = 0.0;
  p.transfer_ms_per_kb = 0.125;
  p.bucket_kb = 8.0;  // 1 ms per request.
  p.near_gap_buckets = 0;
  return p;
}

TEST(EventSimTest, Validation) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  ThroughputOptions opts;
  Workload empty;
  EXPECT_FALSE(SimulateInterleaved(*dm, empty, opts).ok());
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 2}, "w").value();
  opts.concurrency = 0;
  EXPECT_FALSE(SimulateInterleaved(*dm, w, opts).ok());
  opts.concurrency = 2;
  opts.slowdown = {1.0};
  EXPECT_FALSE(SimulateInterleaved(*dm, w, opts).ok());
}

TEST(EventSimTest, SingleQueryMatchesBatchModel) {
  // With one query there is nothing to interleave: both models charge the
  // same per-disk batches.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 4).value();
  Workload w;
  w.queries.push_back(
      RangeQuery::Create(grid, BucketRect::Create({2, 3}, {9, 10}).value())
          .value());
  ThroughputOptions opts;
  opts.concurrency = 1;
  opts.params = UnitParams();
  const ThroughputResult batch = SimulateThroughput(*hcam, w, opts).value();
  const ThroughputResult inter = SimulateInterleaved(*hcam, w, opts).value();
  EXPECT_NEAR(inter.total_ms, batch.total_ms, 1e-9);
  EXPECT_NEAR(inter.mean_latency_ms, batch.mean_latency_ms, 1e-9);
}

TEST(EventSimTest, WorkConservation) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto fx = CreateMethod("fx", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w = gen.SampledPlacements({3, 4}, 40, &rng, "w").value();
  ThroughputOptions opts;
  opts.concurrency = 4;
  opts.params = UnitParams();
  const ThroughputResult r = SimulateInterleaved(*fx, w, opts).value();
  // Unit service, no positioning: total busy time == total requests.
  double busy = 0;
  for (double b : r.disk_busy_ms) busy += b;
  EXPECT_NEAR(busy, static_cast<double>(w.TotalBuckets()), 1e-6);
  EXPECT_GE(r.max_latency_ms, r.mean_latency_ms);
  EXPECT_GT(r.ThroughputQps(), 0.0);
}

TEST(EventSimTest, InterleavingHelpsShortQueriesBehindLongOnes) {
  // One whole-grid scan admitted first, then many point queries. Batch
  // FIFO makes every point query wait for the scan's full batch on its
  // disk; round-robin interleaving serves them promptly.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 4).value();
  Workload w;
  w.queries.push_back(
      RangeQuery::Create(grid, BucketRect::Full(grid)).value());
  for (uint32_t i = 0; i < 12; ++i) {
    w.queries.push_back(
        RangeQuery::Create(grid,
                           BucketRect::Point({i % 16, (i * 5) % 16}))
            .value());
  }
  ThroughputOptions opts;
  opts.concurrency = 13;  // Everything in flight at once.
  opts.params = UnitParams();
  const ThroughputResult batch = SimulateThroughput(*hcam, w, opts).value();
  const ThroughputResult inter = SimulateInterleaved(*hcam, w, opts).value();
  EXPECT_LT(inter.mean_latency_ms, batch.mean_latency_ms);
}

TEST(EventSimTest, DeterministicAndMplSensitive) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto ecc = CreateMethod("ecc", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(2);
  const Workload w = gen.SampledPlacements({4, 4}, 50, &rng, "w").value();
  ThroughputOptions opts;
  opts.params = UnitParams();
  opts.concurrency = 1;
  const double serial = SimulateInterleaved(*ecc, w, opts).value().total_ms;
  const double serial2 = SimulateInterleaved(*ecc, w, opts).value().total_ms;
  EXPECT_DOUBLE_EQ(serial, serial2);
  opts.concurrency = 8;
  const double parallel =
      SimulateInterleaved(*ecc, w, opts).value().total_ms;
  EXPECT_LT(parallel, serial);
}

TEST(EventSimTest, SlowdownApplies) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  Workload w;
  w.queries.push_back(
      RangeQuery::Create(grid, BucketRect::Create({0, 0}, {3, 3}).value())
          .value());
  ThroughputOptions opts;
  opts.concurrency = 1;
  opts.params = UnitParams();
  const double nominal = SimulateInterleaved(*dm, w, opts).value().total_ms;
  opts.slowdown = {2.0, 2.0, 2.0, 2.0};
  const double slowed = SimulateInterleaved(*dm, w, opts).value().total_ms;
  EXPECT_NEAR(slowed, 2 * nominal, 1e-9);
}

TEST(LptReorderTest, SortsByDecreasingCostStably) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  Workload w;
  w.name = "mix";
  // Costs under DM/4: 8x8 -> 16; 2x2 -> 2; 1x1 -> 1; another 2x2 -> 2.
  w.queries.push_back(
      RangeQuery::Create(grid, BucketRect::Create({0, 0}, {7, 7}).value())
          .value());
  w.queries.push_back(
      RangeQuery::Create(grid, BucketRect::Create({0, 0}, {1, 1}).value())
          .value());
  w.queries.push_back(
      RangeQuery::Create(grid, BucketRect::Point({5, 5})).value());
  w.queries.push_back(
      RangeQuery::Create(grid, BucketRect::Create({4, 4}, {5, 5}).value())
          .value());
  // Shuffle to a known non-sorted order: move the big one to the end.
  std::rotate(w.queries.begin(), w.queries.begin() + 1, w.queries.end());
  const Workload sorted = ReorderLongestFirst(*dm, w);
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted.queries[0].NumBuckets(), 64u);
  // The two 2x2s keep their relative (stable) order, point query last.
  EXPECT_EQ(sorted.queries[1].NumBuckets(), 4u);
  EXPECT_EQ(sorted.queries[2].NumBuckets(), 4u);
  EXPECT_EQ(sorted.queries[3].NumBuckets(), 1u);
  EXPECT_EQ(sorted.name, "mix/lpt");
}

TEST(LptReorderTest, PreservesQueryMultiset) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(3);
  const Workload w = gen.SampledPlacements({3, 3}, 30, &rng, "w").value();
  const Workload sorted = ReorderLongestFirst(*hcam, w);
  ASSERT_EQ(sorted.size(), w.size());
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (const auto& q : w.queries) a.push_back(q.ToString());
  for (const auto& q : sorted.queries) b.push_back(q.ToString());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace griddecl
