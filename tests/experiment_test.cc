#include "griddecl/eval/experiment.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(ExperimentTest, MakeSweepMethodsDefaultsToPaperSet) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto methods = MakeSweepMethods(grid, 8, {}).value();
  ASSERT_EQ(methods.size(), 4u);
}

TEST(ExperimentTest, MakeSweepMethodsHonorsNames) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  SweepOptions opts;
  opts.method_names = {"dm", "hcam"};
  const auto methods = MakeSweepMethods(grid, 8, opts).value();
  ASSERT_EQ(methods.size(), 2u);
  EXPECT_EQ(methods[0]->name(), "DM/CMD");
  EXPECT_EQ(methods[1]->name(), "HCAM");
}

TEST(ExperimentTest, MakeSweepMethodsSkipsUnsupported) {
  const GridSpec grid = GridSpec::Create({15, 15}).value();
  SweepOptions opts;
  opts.method_names = {"ecc", "dm"};
  const auto methods = MakeSweepMethods(grid, 8, opts).value();
  ASSERT_EQ(methods.size(), 1u);  // ECC inapplicable on 15x15.
  EXPECT_EQ(methods[0]->name(), "DM/CMD");
}

TEST(ExperimentTest, MakeSweepMethodsFailsWhenEmpty) {
  const GridSpec grid = GridSpec::Create({15, 15}).value();
  SweepOptions opts;
  opts.method_names = {"ecc"};
  EXPECT_FALSE(MakeSweepMethods(grid, 8, opts).ok());
}

TEST(ExperimentTest, QuerySizeSweepShape) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  SweepOptions opts;
  opts.max_placements = 64;
  const SweepResult r =
      QuerySizeSweep(grid, 4, {1, 4, 16, 64}, opts).value();
  ASSERT_EQ(r.points.size(), 4u);
  EXPECT_EQ(r.x_label, "QueryArea");
  for (const SweepPoint& p : r.points) {
    ASSERT_EQ(p.mean_response.size(), r.method_names.size());
    for (size_t i = 0; i < p.mean_response.size(); ++i) {
      EXPECT_GE(p.mean_response[i], p.mean_optimal);
      EXPECT_GE(p.mean_ratio[i], 1.0);
    }
  }
  // Larger areas have larger optimal cost.
  EXPECT_LT(r.points[0].mean_optimal, r.points[3].mean_optimal);
}

TEST(ExperimentTest, QuerySizeSweepDeterministicForSeed) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  SweepOptions opts;
  opts.max_placements = 32;  // Forces sampling.
  opts.seed = 99;
  const SweepResult a = QuerySizeSweep(grid, 8, {9, 25}, opts).value();
  const SweepResult b = QuerySizeSweep(grid, 8, {9, 25}, opts).value();
  for (size_t i = 0; i < a.points.size(); ++i) {
    for (size_t j = 0; j < a.method_names.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.points[i].mean_response[j],
                       b.points[i].mean_response[j]);
    }
  }
}

TEST(ExperimentTest, QueryShapeSweep) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const SweepResult r =
      QueryShapeSweep(grid, 8, 16, {1.0, 4.0, 16.0}).value();
  ASSERT_EQ(r.points.size(), 3u);
  // All points share the same area, hence the same optimal cost.
  for (const SweepPoint& p : r.points) {
    EXPECT_DOUBLE_EQ(p.mean_optimal, r.points[0].mean_optimal);
  }
  // 3-d grids are rejected.
  const GridSpec g3 = GridSpec::Create({8, 8, 8}).value();
  EXPECT_FALSE(QueryShapeSweep(g3, 8, 16, {1.0}).ok());
}

TEST(ExperimentTest, DiskCountSweepAlignsColumns) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  // M=8 supports ECC, M=6 does not; columns must stay aligned with NaN.
  const SweepResult r = DiskCountSweep(grid, {8, 6}, 16).value();
  ASSERT_EQ(r.points.size(), 2u);
  const int ecc = r.MethodIndex("ECC");
  ASSERT_GE(ecc, 0);
  EXPECT_FALSE(std::isnan(r.points[0].mean_response[ecc]));
  EXPECT_TRUE(std::isnan(r.points[1].mean_response[ecc]));
  const int dm = r.MethodIndex("DM/CMD");
  ASSERT_GE(dm, 0);
  EXPECT_FALSE(std::isnan(r.points[1].mean_response[dm]));
}

TEST(ExperimentTest, DbSizeSweep) {
  std::vector<GridSpec> grids = {GridSpec::Create({8, 8}).value(),
                                 GridSpec::Create({16, 16}).value(),
                                 GridSpec::Create({32, 32}).value()};
  SweepOptions opts;
  opts.max_placements = 200;
  const SweepResult r = DbSizeSweep(grids, 4, 0.25, opts).value();
  ASSERT_EQ(r.points.size(), 3u);
  EXPECT_DOUBLE_EQ(r.points[0].x, 64.0);
  EXPECT_DOUBLE_EQ(r.points[2].x, 1024.0);
  // Coverage validation.
  EXPECT_FALSE(DbSizeSweep(grids, 4, 0.0).ok());
  EXPECT_FALSE(DbSizeSweep(grids, 4, 1.5).ok());
}

TEST(ExperimentTest, TablesRender) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const SweepResult r = QuerySizeSweep(grid, 4, {4, 16}).value();
  std::ostringstream os;
  r.ResponseTable().PrintText(os);
  r.RatioTable().PrintCsv(os);
  EXPECT_NE(os.str().find("QueryArea"), std::string::npos);
  EXPECT_NE(os.str().find("Optimal"), std::string::npos);
}

TEST(ExperimentTest, MethodIndex) {
  SweepResult r;
  r.method_names = {"A", "B"};
  EXPECT_EQ(r.MethodIndex("A"), 0);
  EXPECT_EQ(r.MethodIndex("B"), 1);
  EXPECT_EQ(r.MethodIndex("C"), -1);
}

}  // namespace
}  // namespace griddecl
