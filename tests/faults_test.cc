#include "griddecl/sim/faults.h"

#include <gtest/gtest.h>

#include "griddecl/methods/registry.h"
#include "griddecl/methods/replicated.h"
#include "griddecl/query/generator.h"
#include "griddecl/sim/event_sim.h"
#include "griddecl/sim/io_sim.h"
#include "griddecl/sim/throughput.h"

namespace griddecl {
namespace {

DiskParams SimpleParams() {
  DiskParams p;
  p.avg_seek_ms = 10.0;
  p.rotational_latency_ms = 0.0;
  p.transfer_ms_per_kb = 0.125;
  p.bucket_kb = 8.0;  // 1 ms transfer.
  p.near_seek_factor = 0.1;
  p.near_gap_buckets = 4;
  return p;
}

// ---------------------------------------------------------------- FaultModel

TEST(FaultModelTest, CreateValidation) {
  FaultSpec bad_disk;
  bad_disk.failures = {{7, 0.0}};
  EXPECT_FALSE(FaultModel::Create(4, bad_disk).ok());

  FaultSpec bad_time;
  bad_time.failures = {{0, -1.0}};
  EXPECT_FALSE(FaultModel::Create(4, bad_time).ok());

  FaultSpec bad_prob;
  bad_prob.transient_error_prob = 1.0;  // Would retry forever.
  EXPECT_FALSE(FaultModel::Create(4, bad_prob).ok());

  FaultSpec bad_backoff;
  bad_backoff.retry_backoff_ms = -1.0;
  EXPECT_FALSE(FaultModel::Create(4, bad_backoff).ok());

  FaultSpec bad_factor;
  bad_factor.stragglers = {{0, 0.0, 0.0, 10.0}};
  EXPECT_FALSE(FaultModel::Create(4, bad_factor).ok());

  FaultSpec bad_window;
  bad_window.stragglers = {{0, 2.0, 10.0, 5.0}};
  EXPECT_FALSE(FaultModel::Create(4, bad_window).ok());

  EXPECT_FALSE(FaultModel::Create(0, FaultSpec{}).ok());
  EXPECT_TRUE(FaultModel::Create(4, FaultSpec{}).ok());
}

TEST(FaultModelTest, FailureTiming) {
  FaultSpec spec;
  spec.failures = {{1, 0.0}, {3, 100.0}};
  const FaultModel fm = FaultModel::Create(4, spec).value();
  EXPECT_TRUE(fm.has_failures());
  EXPECT_EQ(fm.num_terminal_failed(), 2u);

  EXPECT_TRUE(fm.FailedAt(1, 0.0));
  EXPECT_FALSE(fm.FailedAt(3, 99.9));
  EXPECT_TRUE(fm.FailedAt(3, 100.0));
  EXPECT_FALSE(fm.FailedAt(0, 1e9));

  const std::vector<bool> early = fm.FailedMaskAt(50.0);
  EXPECT_EQ(early, (std::vector<bool>{false, true, false, false}));
  EXPECT_EQ(fm.terminal_failed(),
            (std::vector<bool>{false, true, false, true}));
}

TEST(FaultModelTest, StragglerWindowsCompound) {
  FaultSpec spec;
  spec.stragglers = {{0, 2.0, 10.0, 20.0}, {0, 3.0, 15.0, 30.0}};
  const FaultModel fm = FaultModel::Create(2, spec).value();
  EXPECT_DOUBLE_EQ(fm.SlowdownAt(0, 5.0), 1.0);    // Before both windows.
  EXPECT_DOUBLE_EQ(fm.SlowdownAt(0, 12.0), 2.0);   // First only.
  EXPECT_DOUBLE_EQ(fm.SlowdownAt(0, 17.0), 6.0);   // Overlap compounds.
  EXPECT_DOUBLE_EQ(fm.SlowdownAt(0, 25.0), 3.0);   // Second only.
  EXPECT_DOUBLE_EQ(fm.SlowdownAt(0, 30.0), 1.0);   // Past both ends.
  EXPECT_DOUBLE_EQ(fm.SlowdownAt(1, 17.0), 1.0);   // Other disk untouched.
  EXPECT_FALSE(fm.IsNoop());
}

TEST(FaultModelTest, TransientErrorsDeterministicAndBounded) {
  FaultSpec spec;
  spec.seed = 7;
  spec.transient_error_prob = 0.5;
  spec.max_retries = 3;
  const FaultModel fm = FaultModel::Create(4, spec).value();
  for (uint64_t addr = 0; addr < 64; ++addr) {
    const uint32_t k = fm.TransientRetries(1, addr);
    EXPECT_LE(k, 3u);
    EXPECT_EQ(k, fm.TransientRetries(1, addr));  // Pure function.
    // Bounded retry: the attempt after the last allowed failure succeeds.
    EXPECT_FALSE(fm.AttemptFails(1, addr, 3));
  }
  // The same (seed, disk, address) pattern in an independent model.
  const FaultModel fm2 = FaultModel::Create(4, spec).value();
  for (uint64_t addr = 0; addr < 64; ++addr) {
    EXPECT_EQ(fm.TransientRetries(2, addr), fm2.TransientRetries(2, addr));
  }
  // Zero probability => noop, regardless of retry settings.
  FaultSpec clean;
  clean.max_retries = 5;
  const FaultModel none = FaultModel::Create(4, clean).value();
  EXPECT_TRUE(none.IsNoop());
  EXPECT_EQ(none.TransientRetries(0, 123), 0u);
}

TEST(FaultModelTest, TransientRateTracksProbability) {
  FaultSpec spec;
  spec.seed = 11;
  spec.transient_error_prob = 0.25;
  const FaultModel fm = FaultModel::Create(2, spec).value();
  uint32_t fails = 0;
  const uint32_t trials = 4000;
  for (uint64_t addr = 0; addr < trials; ++addr) {
    fails += fm.AttemptFails(0, addr, 0) ? 1 : 0;
  }
  const double rate = static_cast<double>(fails) / trials;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

// -------------------------------------------------------------- DegradedPlan

TEST(DegradedPlanTest, PlainMarksDeadBucketsUnavailable) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  std::vector<bool> failed(4, false);
  failed[0] = true;
  const DegradedPlan plan = DegradedPlan::ForMethod(*dm, failed).value();
  EXPECT_EQ(plan.strategy(), DegradedReadStrategy::kUnavailable);

  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Full(grid)).value();
  const DegradedPlan::QueryPlan qp = plan.ExpandQuery(q).value();
  // DM on 4x4 with M=4: (i + j) mod 4 == 0 for exactly 4 buckets.
  EXPECT_EQ(qp.unavailable_buckets, 4u);
  EXPECT_TRUE(qp.per_disk[0].empty());
  uint64_t reads = 0;
  for (const auto& batch : qp.per_disk) reads += batch.size();
  EXPECT_EQ(reads, q.NumBuckets() - 4);
  EXPECT_EQ(qp.rerouted_buckets, 0u);
  EXPECT_EQ(qp.reconstruction_reads, 0u);
}

TEST(DegradedPlanTest, ReplicatedReroutesAroundFailure) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  auto base = CreateMethod("dm", grid, 4).value();
  const ReplicatedPlacement placement =
      ReplicatedPlacement::Create(std::move(base), 2, 1).value();
  std::vector<bool> failed(4, false);
  failed[0] = true;
  const DegradedPlan plan =
      DegradedPlan::ForReplicated(placement, failed).value();

  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Full(grid)).value();
  const DegradedPlan::QueryPlan qp = plan.ExpandQuery(q).value();
  EXPECT_EQ(qp.unavailable_buckets, 0u);
  EXPECT_TRUE(qp.per_disk[0].empty());
  EXPECT_GT(qp.rerouted_buckets, 0u);
  uint64_t reads = 0;
  for (const auto& batch : qp.per_disk) reads += batch.size();
  EXPECT_EQ(reads, q.NumBuckets());
}

TEST(DegradedPlanTest, ReplicatedWholeQueryUnavailable) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  auto base = CreateMethod("dm", grid, 4).value();
  const ReplicatedPlacement placement =
      ReplicatedPlacement::Create(std::move(base), 2, 1).value();
  // Chained r=2 stores on d and d+1: disks {0, 1} dead kills both copies
  // of every primary-0 bucket.
  std::vector<bool> failed = {true, true, false, false};
  const DegradedPlan plan =
      DegradedPlan::ForReplicated(placement, failed).value();
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Full(grid)).value();
  const DegradedPlan::QueryPlan qp = plan.ExpandQuery(q).value();
  EXPECT_EQ(qp.unavailable_buckets, q.NumBuckets());
}

TEST(DegradedPlanTest, EccRequiresEccMethod) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  const auto r = DegradedPlan::ForEcc(*hcam, std::vector<bool>(8, false));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(DegradedPlanTest, EccReconstructsSingleFailure) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto ecc = CreateMethod("ecc", grid, 8).value();
  std::vector<bool> failed(8, false);
  failed[0] = true;
  const DegradedPlan plan = DegradedPlan::ForEcc(*ecc, failed).value();

  const RangeQuery q = RangeQuery::Create(
      grid, BucketRect::Create({0, 0}, {7, 7}).value()).value();
  uint64_t dead_primaries = 0;
  q.rect().ForEachBucket([&](const BucketCoords& c) {
    dead_primaries += ecc->DiskOf(c) == 0 ? 1 : 0;
  });
  ASSERT_GT(dead_primaries, 0u);

  const DegradedPlan::QueryPlan qp = plan.ExpandQuery(q).value();
  // Single failure: distance 3 guarantees every group member survives.
  EXPECT_EQ(qp.unavailable_buckets, 0u);
  EXPECT_TRUE(qp.per_disk[0].empty());  // Nothing reads the dead disk.
  // 32x32 => 10 concatenated coordinate bits => 10 reads per rebuild.
  EXPECT_EQ(qp.reconstruction_reads, dead_primaries * 10);
  uint64_t reads = 0;
  for (const auto& batch : qp.per_disk) reads += batch.size();
  EXPECT_EQ(reads,
            q.NumBuckets() - dead_primaries + qp.reconstruction_reads);
}

TEST(DegradedPlanTest, EccDoubleFailureLosesBuckets) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto ecc = CreateMethod("ecc", grid, 8).value();
  std::vector<bool> failed(8, false);
  failed[0] = true;
  failed[1] = true;
  const DegradedPlan plan = DegradedPlan::ForEcc(*ecc, failed).value();
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Full(grid)).value();
  const DegradedPlan::QueryPlan qp = plan.ExpandQuery(q).value();
  // Beyond the code's single-failure tolerance: buckets are lost.
  EXPECT_GT(qp.unavailable_buckets, 0u);
}

TEST(DegradedPlanTest, FailedNowOverridesTerminalMask) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  std::vector<bool> failed(4, false);
  failed[0] = true;
  const DegradedPlan plan = DegradedPlan::ForMethod(*dm, failed).value();
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Full(grid)).value();
  // Before the failure takes effect, everything is readable.
  const std::vector<bool> alive(4, false);
  EXPECT_EQ(plan.ExpandQuery(q, &alive).value().unavailable_buckets, 0u);
  EXPECT_EQ(plan.ExpandQuery(q).value().unavailable_buckets, 4u);
  // Arity errors are rejected.
  const std::vector<bool> wrong(3, false);
  EXPECT_FALSE(plan.ExpandQuery(q, &wrong).ok());
}

// --------------------------------------------------------- simulator wiring

TEST(SimFaultsTest, SimulatorCreateValidation) {
  EXPECT_FALSE(ParallelIoSimulator::Create(0, SimpleParams()).ok());
  DiskParams bad = SimpleParams();
  bad.avg_seek_ms = -1.0;
  EXPECT_FALSE(ParallelIoSimulator::Create(2, bad).ok());
  EXPECT_FALSE(
      ParallelIoSimulator::Create(2, SimpleParams(), {1.0}).ok());
  EXPECT_FALSE(
      ParallelIoSimulator::Create(2, SimpleParams(), {1.0, 0.0}).ok());
  EXPECT_FALSE(
      ParallelIoSimulator::Create(2, SimpleParams(), {1.0, -2.0}).ok());
  EXPECT_TRUE(
      ParallelIoSimulator::Create(2, SimpleParams(), {1.0, 2.0}).ok());
}

TEST(SimFaultsTest, ThroughputOptionsValidation) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 2}, "w").value();

  ThroughputOptions zero_mpl;
  zero_mpl.concurrency = 0;
  EXPECT_FALSE(SimulateThroughput(*dm, w, zero_mpl).ok());
  EXPECT_FALSE(SimulateInterleaved(*dm, w, zero_mpl).ok());

  ThroughputOptions bad_slow;
  bad_slow.slowdown = {1.0, 0.0, 1.0, 1.0};
  EXPECT_FALSE(SimulateThroughput(*dm, w, bad_slow).ok());
  EXPECT_FALSE(SimulateInterleaved(*dm, w, bad_slow).ok());

  const FaultModel wrong_arity = FaultModel::None(8);
  ThroughputOptions bad_faults;
  bad_faults.faults = &wrong_arity;
  EXPECT_FALSE(SimulateThroughput(*dm, w, bad_faults).ok());
  EXPECT_FALSE(SimulateInterleaved(*dm, w, bad_faults).ok());

  const auto other = CreateMethod("dm", grid, 8).value();
  const DegradedPlan wrong_plan =
      DegradedPlan::ForMethod(*other, std::vector<bool>(8, false)).value();
  ThroughputOptions bad_plan;
  bad_plan.degraded = &wrong_plan;
  EXPECT_FALSE(SimulateThroughput(*dm, w, bad_plan).ok());
  EXPECT_FALSE(SimulateInterleaved(*dm, w, bad_plan).ok());
}

TEST(SimFaultsTest, ZeroFaultsBitIdenticalSingleQuery) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 4).value();
  const ParallelIoSimulator sim(4, SimpleParams());
  const FaultModel none = FaultModel::None(4);
  const DegradedPlan plan =
      DegradedPlan::ForMethod(*hcam, std::vector<bool>(4, false)).value();
  const RangeQuery q = RangeQuery::Create(
      grid, BucketRect::Create({1, 2}, {9, 11}).value()).value();

  const SimResult healthy = sim.RunQuery(*hcam, q);
  const SimResult degraded = sim.RunQueryDegraded(q, plan, none).value();
  EXPECT_EQ(healthy.makespan_ms, degraded.makespan_ms);  // Bit-identical.
  ASSERT_EQ(healthy.per_disk.size(), degraded.per_disk.size());
  for (size_t d = 0; d < healthy.per_disk.size(); ++d) {
    EXPECT_EQ(healthy.per_disk[d].busy_ms, degraded.per_disk[d].busy_ms);
    EXPECT_EQ(healthy.per_disk[d].requests, degraded.per_disk[d].requests);
  }
  EXPECT_EQ(degraded.transient_retries, 0u);
  EXPECT_FALSE(degraded.Unavailable());
}

TEST(SimFaultsTest, ZeroFaultsMatchesHealthyMultiQuery) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 4).value();
  QueryGenerator gen(grid);
  Rng rng(3);
  const Workload w = gen.SampledPlacements({3, 3}, 40, &rng, "w").value();
  const DegradedPlan plan =
      DegradedPlan::ForMethod(*hcam, std::vector<bool>(4, false)).value();

  ThroughputOptions healthy_opts;
  ThroughputOptions degraded_opts;
  degraded_opts.degraded = &plan;  // Forces the fault-aware path.

  const ThroughputResult h =
      SimulateThroughput(*hcam, w, healthy_opts).value();
  const ThroughputResult d =
      SimulateThroughput(*hcam, w, degraded_opts).value();
  // The fault-aware batch clock accumulates from the batch's start time
  // rather than zero, so allow rounding in the last few ulps.
  EXPECT_NEAR(d.total_ms, h.total_ms, 1e-9 * h.total_ms);
  EXPECT_NEAR(d.mean_latency_ms, h.mean_latency_ms,
              1e-9 * h.mean_latency_ms);
  EXPECT_EQ(d.unavailable_queries, 0u);
  EXPECT_DOUBLE_EQ(d.Availability(), 1.0);

  // The interleaved simulator's per-request arithmetic is unchanged:
  // bit-identical results through the fault-aware path.
  const ThroughputResult hi =
      SimulateInterleaved(*hcam, w, healthy_opts).value();
  const ThroughputResult di =
      SimulateInterleaved(*hcam, w, degraded_opts).value();
  EXPECT_EQ(di.total_ms, hi.total_ms);
  EXPECT_EQ(di.mean_latency_ms, hi.mean_latency_ms);
  EXPECT_EQ(di.max_latency_ms, hi.max_latency_ms);
  EXPECT_EQ(di.unavailable_queries, 0u);
}

TEST(SimFaultsTest, TransientRetriesInflateMakespanDeterministically) {
  const ParallelIoSimulator sim(2, SimpleParams());
  std::vector<std::vector<uint64_t>> schedule = {
      {0, 10, 20, 30, 40, 50, 60, 70, 80, 90}, {5, 15, 25}};
  FaultSpec spec;
  spec.seed = 21;
  spec.transient_error_prob = 0.3;
  spec.retry_backoff_ms = 2.0;
  const FaultModel fm = FaultModel::Create(2, spec).value();

  const SimResult clean = sim.RunSchedule(schedule);
  const SimResult a = sim.RunScheduleWithFaults(schedule, fm);
  const SimResult b = sim.RunScheduleWithFaults(schedule, fm);
  EXPECT_GT(a.transient_retries, 0u);
  EXPECT_GT(a.makespan_ms, clean.makespan_ms);
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);  // Same seed, same run.
  EXPECT_EQ(a.transient_retries, b.transient_retries);
}

TEST(SimFaultsTest, StragglerWindowScalesService) {
  const ParallelIoSimulator sim(1, SimpleParams());
  FaultSpec spec;
  spec.stragglers = {{0, 2.0}};  // Slow from t=0 forever.
  const FaultModel fm = FaultModel::Create(1, spec).value();
  const SimResult clean = sim.RunSchedule({{100}});
  const SimResult slow = sim.RunScheduleWithFaults({{100}}, fm);
  EXPECT_DOUBLE_EQ(slow.makespan_ms, 2.0 * clean.makespan_ms);
}

TEST(SimFaultsTest, PermanentFailureCostsAvailability) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({1, 1}, "points").value();

  FaultSpec spec;
  spec.failures = {{0, 0.0}};
  const FaultModel fm = FaultModel::Create(4, spec).value();
  ThroughputOptions opts;
  opts.faults = &fm;  // No plan: plain policy by default.

  // DM on 8x8 with M=4 puts exactly 16 of 64 point queries on disk 0.
  const ThroughputResult r = SimulateThroughput(*dm, w, opts).value();
  EXPECT_EQ(r.unavailable_queries, 16u);
  EXPECT_DOUBLE_EQ(r.Availability(), 0.75);
  const ThroughputResult ri = SimulateInterleaved(*dm, w, opts).value();
  EXPECT_EQ(ri.unavailable_queries, 16u);
  EXPECT_DOUBLE_EQ(ri.Availability(), 0.75);
}

TEST(SimFaultsTest, LateFailureOnlyDegradesLaterQueries) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({1, 1}, "points").value();

  // The failure lands far past the workload's end: admission-time masks
  // never see it, so every query is answered.
  FaultSpec spec;
  spec.failures = {{0, 1e12}};
  const FaultModel fm = FaultModel::Create(4, spec).value();
  ThroughputOptions opts;
  opts.faults = &fm;
  EXPECT_EQ(SimulateThroughput(*dm, w, opts).value().unavailable_queries,
            0u);
  EXPECT_EQ(SimulateInterleaved(*dm, w, opts).value().unavailable_queries,
            0u);
}

TEST(SimFaultsTest, ReplicaReroutePreservesAvailability) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  auto base = CreateMethod("dm", grid, 4).value();
  const ReplicatedPlacement placement =
      ReplicatedPlacement::Create(std::move(base), 2, 1).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 2}, "w").value();

  FaultSpec spec;
  spec.failures = {{0, 0.0}};
  const FaultModel fm = FaultModel::Create(4, spec).value();
  const DegradedPlan plan =
      DegradedPlan::ForReplicated(placement, fm.terminal_failed()).value();
  ThroughputOptions opts;
  opts.faults = &fm;
  opts.degraded = &plan;

  const ThroughputResult r =
      SimulateThroughput(placement.base(), w, opts).value();
  EXPECT_EQ(r.unavailable_queries, 0u);
  EXPECT_GT(r.rerouted_buckets, 0u);
  EXPECT_DOUBLE_EQ(r.disk_busy_ms[0], 0.0);  // The dead disk serves nothing.
}

TEST(SimFaultsTest, EccReconstructionFansOutRealReads) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto ecc = CreateMethod("ecc", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(5);
  const Workload w = gen.SampledPlacements({4, 4}, 30, &rng, "w").value();

  FaultSpec spec;
  spec.failures = {{2, 0.0}};
  const FaultModel fm = FaultModel::Create(8, spec).value();
  const DegradedPlan plan =
      DegradedPlan::ForEcc(*ecc, fm.terminal_failed()).value();
  ThroughputOptions opts;
  opts.faults = &fm;
  opts.degraded = &plan;

  const ThroughputResult healthy =
      SimulateInterleaved(*ecc, w, ThroughputOptions{}).value();
  const ThroughputResult r = SimulateInterleaved(*ecc, w, opts).value();
  EXPECT_EQ(r.unavailable_queries, 0u);
  EXPECT_GT(r.reconstruction_reads, 0u);
  // Reconstruction's extra reads cost real time.
  EXPECT_GT(r.total_ms, healthy.total_ms);
  EXPECT_DOUBLE_EQ(r.disk_busy_ms[2], 0.0);
}

TEST(SimFaultsTest, InterleavedRetriesReenqueueDeterministically) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 4).value();
  QueryGenerator gen(grid);
  Rng rng(9);
  const Workload w = gen.SampledPlacements({3, 3}, 25, &rng, "w").value();

  FaultSpec spec;
  spec.seed = 13;
  spec.transient_error_prob = 0.2;
  const FaultModel fm = FaultModel::Create(4, spec).value();
  ThroughputOptions opts;
  opts.faults = &fm;

  const ThroughputResult clean =
      SimulateInterleaved(*hcam, w, ThroughputOptions{}).value();
  const ThroughputResult a = SimulateInterleaved(*hcam, w, opts).value();
  const ThroughputResult b = SimulateInterleaved(*hcam, w, opts).value();
  EXPECT_GT(a.transient_retries, 0u);
  EXPECT_GT(a.total_ms, clean.total_ms);
  EXPECT_EQ(a.total_ms, b.total_ms);
  EXPECT_EQ(a.transient_retries, b.transient_retries);
  EXPECT_EQ(a.unavailable_queries, 0u);  // Transients never lose queries.
}

}  // namespace
}  // namespace griddecl
