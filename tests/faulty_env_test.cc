#include "griddecl/gridfile/faulty_env.h"

#include <limits>
#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

MemEnv SeededEnv() {
  MemEnv env;
  EXPECT_TRUE(env.WriteFile("data", std::string(256, 'a')).ok());
  EXPECT_TRUE(env.WriteFile("other", std::string(64, 'b')).ok());
  return env;
}

TEST(FaultyEnvTest, ValidatesOptions) {
  MemEnv target;
  EXPECT_FALSE(FaultyEnv::Create(nullptr, {}).ok());
  FaultyEnvOptions opts;
  opts.transient_error_prob = 1.5;
  EXPECT_FALSE(FaultyEnv::Create(&target, opts).ok());
  opts = {};
  opts.latency_ms = -1.0;
  EXPECT_FALSE(FaultyEnv::Create(&target, opts).ok());
  opts = {};
  opts.permanent.push_back({"data", 0, 0});  // Empty range.
  EXPECT_FALSE(FaultyEnv::Create(&target, opts).ok());
}

TEST(FaultyEnvTest, CleanOptionsPassReadsThrough) {
  MemEnv target = SeededEnv();
  auto env = FaultyEnv::Create(&target, {}).value();
  EXPECT_EQ(env->ReadAt("data", 8, 4).value(), "aaaa");
  EXPECT_EQ(env->ReadFile("other").value(), std::string(64, 'b'));
  EXPECT_EQ(env->reads_issued(), 1u);
  EXPECT_EQ(env->transient_faults_injected(), 0u);
  EXPECT_EQ(env->permanent_faults_injected(), 0u);
}

TEST(FaultyEnvTest, TransientScheduleIsDeterministicAndBounded) {
  MemEnv target = SeededEnv();
  FaultyEnvOptions opts;
  opts.seed = 7;
  opts.transient_error_prob = 0.5;
  opts.max_transient_attempts = 3;
  auto env = FaultyEnv::Create(&target, opts).value();
  auto env2 = FaultyEnv::Create(&target, opts).value();

  // The pure schedule matches across instances with the same seed, and
  // never fails at or beyond max_transient_attempts.
  for (uint64_t offset = 0; offset < 256; offset += 32) {
    for (uint32_t attempt = 0; attempt < 6; ++attempt) {
      EXPECT_EQ(env->TransientFails("data", offset, attempt),
                env2->TransientFails("data", offset, attempt));
      if (attempt >= opts.max_transient_attempts) {
        EXPECT_FALSE(env->TransientFails("data", offset, attempt));
      }
    }
  }

  // Live reads follow the schedule: reading one site repeatedly walks the
  // attempt counter, so outcomes replay the precomputed schedule in order,
  // and a persistent reader always eventually succeeds.
  uint32_t failures = 0;
  for (uint32_t attempt = 0; attempt < 6; ++attempt) {
    const bool expect_fail = env->TransientFails("data", 32, attempt);
    const Result<std::string> got = env->ReadAt("data", 32, 8);
    EXPECT_EQ(!got.ok(), expect_fail) << "attempt " << attempt;
    if (!got.ok()) {
      failures++;
      EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
    }
  }
  EXPECT_EQ(env->transient_faults_injected(), failures);
}

TEST(FaultyEnvTest, DifferentSeedsGiveDifferentSchedules) {
  MemEnv target = SeededEnv();
  FaultyEnvOptions a;
  a.seed = 1;
  a.transient_error_prob = 0.5;
  FaultyEnvOptions b = a;
  b.seed = 2;
  auto env_a = FaultyEnv::Create(&target, a).value();
  auto env_b = FaultyEnv::Create(&target, b).value();
  int differing = 0;
  for (uint64_t offset = 0; offset < 2048; offset += 8) {
    if (env_a->TransientFails("data", offset, 0) !=
        env_b->TransientFails("data", offset, 0)) {
      differing++;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultyEnvTest, PermanentRangesFailOnOverlapOnly) {
  MemEnv target = SeededEnv();
  FaultyEnvOptions opts;
  opts.permanent.push_back({"data", 64, 32});  // [64, 96)
  auto env = FaultyEnv::Create(&target, opts).value();

  EXPECT_TRUE(env->PermanentlyFaulted("data", 64, 32));
  EXPECT_TRUE(env->PermanentlyFaulted("data", 90, 100));
  EXPECT_TRUE(env->PermanentlyFaulted("data", 0, 65));
  EXPECT_FALSE(env->PermanentlyFaulted("data", 0, 64));
  EXPECT_FALSE(env->PermanentlyFaulted("data", 96, 8));
  EXPECT_FALSE(env->PermanentlyFaulted("other", 64, 32));

  // Every retry of a permanently faulted read fails the same way.
  for (int i = 0; i < 4; ++i) {
    const Result<std::string> got = env->ReadAt("data", 80, 8);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(env->permanent_faults_injected(), 4u);
  // Reads outside the range still succeed.
  EXPECT_EQ(env->ReadAt("data", 96, 4).value(), "aaaa");
}

TEST(FaultyEnvTest, TimeWindowedFaultsFollowTheVirtualClock) {
  MemEnv target = SeededEnv();
  FaultyEnvOptions opts;
  opts.permanent.push_back({"data", 0, 256, 100.0, 200.0});
  auto env = FaultyEnv::Create(&target, opts).value();

  // The window has not opened yet (clock starts at 0).
  EXPECT_EQ(env->NowMs(), 0.0);
  EXPECT_TRUE(env->ReadAt("data", 0, 8).ok());

  env->SetNowMs(99.9);
  EXPECT_TRUE(env->ReadAt("data", 0, 8).ok());

  env->SetNowMs(100.0);  // from_ms is inclusive.
  EXPECT_FALSE(env->ReadAt("data", 0, 8).ok());
  env->SetNowMs(150.0);
  const Result<std::string> mid = env->ReadAt("data", 0, 8);
  ASSERT_FALSE(mid.ok());
  EXPECT_EQ(mid.status().code(), StatusCode::kUnavailable);

  env->SetNowMs(200.0);  // until_ms is exclusive: the fault has healed.
  EXPECT_TRUE(env->ReadAt("data", 0, 8).ok());

  // The clock moves only by explicit calls — rewinding replays the fault.
  env->SetNowMs(150.0);
  EXPECT_FALSE(env->ReadAt("data", 0, 8).ok());
}

TEST(FaultyEnvTest, WildcardRangeCrashesTheWholeNode) {
  MemEnv target = SeededEnv();
  FaultyEnvOptions opts;
  // Empty file name = wildcard: every ReadAt on every file faults while
  // the window is open. This is how the cluster models whole-node death.
  opts.permanent.push_back(
      {"", 0, std::numeric_limits<uint64_t>::max(), 100.0, 200.0});
  auto env = FaultyEnv::Create(&target, opts).value();

  env->SetNowMs(150.0);
  EXPECT_FALSE(env->ReadAt("data", 0, 8).ok());
  EXPECT_FALSE(env->ReadAt("other", 0, 8).ok());
  // ReadFile stays clean even under a wildcard — bootstrap always works.
  EXPECT_TRUE(env->ReadFile("data").ok());

  env->SetNowMs(200.0);
  EXPECT_TRUE(env->ReadAt("data", 0, 8).ok());
  EXPECT_TRUE(env->ReadAt("other", 0, 8).ok());
}

TEST(FaultyEnvTest, MutationsAndMetadataPassThrough) {
  MemEnv target = SeededEnv();
  FaultyEnvOptions opts;
  opts.transient_error_prob = 1.0;  // Even then: only ReadAt is injected.
  opts.max_transient_attempts = 1000;
  auto env = FaultyEnv::Create(&target, opts).value();
  EXPECT_TRUE(env->WriteFile("new", "xyz").ok());
  EXPECT_TRUE(env->Exists("new"));
  EXPECT_EQ(env->ReadFile("new").value(), "xyz");
  EXPECT_TRUE(env->Rename("new", "renamed").ok());
  EXPECT_TRUE(target.Exists("renamed"));
  EXPECT_TRUE(env->Remove("renamed").ok());
  EXPECT_FALSE(target.Exists("renamed"));
  EXPECT_EQ(env->ListFiles().value().size(), target.ListFiles().value().size());
  EXPECT_FALSE(env->ReadAt("data", 0, 8).ok());
}

}  // namespace
}  // namespace griddecl
