#include "griddecl/common/flags.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(FlagsTest, EqualsSyntax) {
  const Flags f = Flags::Parse({"--grid=32x32", "--disks=16"}).value();
  EXPECT_EQ(f.GetString("grid", ""), "32x32");
  EXPECT_EQ(f.GetInt("disks", 0).value(), 16);
  EXPECT_FALSE(f.Has("method"));
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags f = Flags::Parse({"--grid", "8x8", "--seed", "7"}).value();
  EXPECT_EQ(f.GetString("grid", ""), "8x8");
  EXPECT_EQ(f.GetInt("seed", 0).value(), 7);
}

TEST(FlagsTest, BareBooleanFlag) {
  const Flags f = Flags::Parse({"--verbose", "--x=1"}).value();
  EXPECT_TRUE(f.GetBool("verbose", false).value());
  EXPECT_FALSE(f.GetBool("quiet", false).value());
  EXPECT_TRUE(f.GetBool("quiet", true).value());
}

TEST(FlagsTest, BoolParsing) {
  const Flags f =
      Flags::Parse({"--a=true", "--b=false", "--c=1", "--d=0", "--e=maybe"})
          .value();
  EXPECT_TRUE(f.GetBool("a", false).value());
  EXPECT_FALSE(f.GetBool("b", true).value());
  EXPECT_TRUE(f.GetBool("c", false).value());
  EXPECT_FALSE(f.GetBool("d", true).value());
  EXPECT_FALSE(f.GetBool("e", false).ok());
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f =
      Flags::Parse({"eval", "--disks", "4", "trailing"}).value();
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "eval");
  EXPECT_EQ(f.positional()[1], "trailing");
}

TEST(FlagsTest, DoubleDashEndsFlags) {
  const Flags f = Flags::Parse({"--a=1", "--", "--b=2"}).value();
  EXPECT_TRUE(f.Has("a"));
  EXPECT_FALSE(f.Has("b"));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "--b=2");
}

TEST(FlagsTest, NumericValidation) {
  const Flags f = Flags::Parse({"--n=abc", "--x=1.5", "--y=2e3"}).value();
  EXPECT_FALSE(f.GetInt("n", 0).ok());
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 0).value(), 1.5);
  EXPECT_DOUBLE_EQ(f.GetDouble("y", 0).value(), 2000.0);
  EXPECT_EQ(f.GetInt("missing", 42).value(), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 2.5).value(), 2.5);
}

TEST(FlagsTest, NegativeValueAfterSpace) {
  const Flags f = Flags::Parse({"--offset", "-5"}).value();
  EXPECT_EQ(f.GetInt("offset", 0).value(), -5);
}

TEST(FlagsTest, Uint32List) {
  const Flags f = Flags::Parse({"--areas=1,4,16"}).value();
  EXPECT_EQ(f.GetUint32List("areas", {}).value(),
            (std::vector<uint32_t>{1, 4, 16}));
  EXPECT_EQ(f.GetUint32List("missing", {9}).value(),
            (std::vector<uint32_t>{9}));
  const Flags bad = Flags::Parse({"--areas=1,,2", "--b=1,x"}).value();
  EXPECT_FALSE(bad.GetUint32List("areas", {}).ok());
  EXPECT_FALSE(bad.GetUint32List("b", {}).ok());
}

TEST(FlagsTest, FlagNamesAndMalformed) {
  const Flags f = Flags::Parse({"--a=1", "--b"}).value();
  const auto names = f.FlagNames();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_FALSE(Flags::Parse({"--=x"}).ok());
}

TEST(FlagsTest, ArgcArgvEntryPoint) {
  const char* argv[] = {"prog", "--k=v", "pos"};
  const Flags f = Flags::Parse(3, argv).value();
  EXPECT_EQ(f.GetString("k", ""), "v");
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos");
}

}  // namespace
}  // namespace griddecl
