#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/gridfile/storage.h"
#include "griddecl/methods/registry.h"
#include "griddecl/methods/table_method.h"
#include "griddecl/query/generator.h"
#include "griddecl/query/trace.h"

namespace griddecl {
namespace {

/// Deterministic mutation fuzzing of the three persistence formats: every
/// parser must either reject mutated input with a Status or parse it into
/// a fully valid object — never crash, never return out-of-contract data.

std::string MutateBytes(const std::string& input, Rng* rng) {
  std::string out = input;
  const int kind = static_cast<int>(rng->NextBelow(3));
  if (out.empty()) return out;
  switch (kind) {
    case 0: {  // Flip a byte.
      const size_t pos = static_cast<size_t>(rng->NextBelow(out.size()));
      out[pos] = static_cast<char>(rng->NextBelow(256));
      break;
    }
    case 1: {  // Truncate.
      out.resize(static_cast<size_t>(rng->NextBelow(out.size())));
      break;
    }
    default: {  // Duplicate a chunk.
      const size_t pos = static_cast<size_t>(rng->NextBelow(out.size()));
      out.insert(pos, out.substr(pos, 16));
      break;
    }
  }
  return out;
}

TEST(FormatFuzzTest, AllocationParserNeverCrashes) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto method = CreateMethod("hcam", grid, 4).value();
  std::stringstream canonical;
  ASSERT_TRUE(SerializeAllocation(*method, canonical).ok());
  const std::string bytes = canonical.str();

  Rng rng(1);
  int parsed_ok = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::stringstream in(MutateBytes(bytes, &rng));
    const auto result = DeserializeAllocation(in);
    if (result.ok()) {
      ++parsed_ok;
      // If it parses, the object must be internally consistent.
      const auto& m = *result.value();
      m.grid().ForEachBucket([&](const BucketCoords& c) {
        EXPECT_LT(m.DiskOf(c), m.num_disks());
      });
    }
  }
  // Most mutations must be rejected (sanity that the parser validates).
  EXPECT_LT(parsed_ok, 200);
}

TEST(FormatFuzzTest, TraceParserNeverCrashes) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  QueryGenerator gen(grid);
  Rng wl_rng(2);
  const Workload w =
      gen.SampledPlacements({3, 3}, 20, &wl_rng, "fuzz").value();
  std::stringstream canonical;
  ASSERT_TRUE(SerializeWorkload(grid, w, canonical).ok());
  const std::string bytes = canonical.str();

  Rng rng(3);
  for (int trial = 0; trial < 400; ++trial) {
    std::stringstream in(MutateBytes(bytes, &rng));
    const auto result = DeserializeWorkload(in);
    if (result.ok()) {
      for (const RangeQuery& q : result.value().workload.queries) {
        EXPECT_TRUE(q.rect().WithinGrid(result.value().grid));
      }
    }
  }
}

TEST(FormatFuzzTest, GridFileLoaderNeverCrashes) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile file = GridFile::Create(std::move(schema), {4, 4}).value();
  Rng data_rng(4);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(file.Insert({data_rng.NextDouble(), data_rng.NextDouble()})
                    .ok());
  }
  std::stringstream canonical;
  ASSERT_TRUE(SaveGridFile(file, canonical, 64).ok());
  const std::string bytes = canonical.str();

  Rng rng(5);
  for (int trial = 0; trial < 400; ++trial) {
    std::stringstream in(MutateBytes(bytes, &rng));
    const auto result = LoadGridFile(in);
    if (result.ok()) {
      // Internally consistent: every record lands in a real bucket.
      const GridFile& f = result.value();
      for (RecordId id = 0; id < f.num_records(); ++id) {
        EXPECT_TRUE(f.grid().Contains(f.BucketOfRecord(id)));
      }
    }
  }
}

std::string SerializeSmallGridFile(uint32_t format_version) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile file = GridFile::Create(std::move(schema), {4, 4}).value();
  Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    EXPECT_TRUE(file.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  SaveOptions options;
  options.page_size_bytes = 64;
  options.format_version = format_version;
  return SerializeGridFile(file, options).value();
}

/// Checks a mutated grid file: the strict loader must reject or accept
/// with a fully consistent object; never crash (sanitizers watching).
void ExpectParseSafe(const std::string& bytes) {
  const auto result = ParseGridFile(bytes);
  if (result.ok()) {
    const GridFile& f = result.value();
    for (RecordId id = 0; id < f.num_records(); ++id) {
      EXPECT_TRUE(f.grid().Contains(f.BucketOfRecord(id)));
    }
  }
  // Best-effort mode must be equally crash-free on the same input.
  LoadOptions best_effort;
  best_effort.policy = SalvageReadPolicy();
  LoadReport report;
  (void)ParseGridFile(bytes, best_effort, &report);
}

TEST(FormatFuzzTest, SystematicHeaderByteSweep) {
  // Every single-byte mutation over the entire header region, all three
  // formats, several XOR masks: no crash, no sanitizer report, and for
  // the checksummed formats (v2/v3 header CRC) every mutation must be
  // rejected outright.
  for (uint32_t version : {kFormatV1, kFormatV2, kFormatV3}) {
    const std::string bytes = SerializeSmallGridFile(version);
    const FileLayout layout = ParseFileLayout(bytes).value();
    for (size_t pos = 0; pos < layout.header_bytes; ++pos) {
      for (uint8_t mask : {0x01, 0x80, 0xFF}) {
        std::string copy = bytes;
        copy[pos] = static_cast<char>(copy[pos] ^ mask);
        ExpectParseSafe(copy);
        if (version != kFormatV1) {
          EXPECT_FALSE(ParseGridFile(copy).ok())
              << "v" << version << " header mutation accepted at byte "
              << pos;
        }
      }
    }
  }
}

TEST(FormatFuzzTest, TruncationAtEveryByteBoundary) {
  // A strict load of any proper prefix must fail cleanly (the only valid
  // size is the exact one), and best-effort must stay crash-free.
  for (uint32_t version : {kFormatV1, kFormatV2, kFormatV3}) {
    const std::string bytes = SerializeSmallGridFile(version);
    for (size_t len = 0; len < bytes.size(); ++len) {
      const std::string prefix = bytes.substr(0, len);
      EXPECT_FALSE(ParseGridFile(prefix).ok())
          << "v" << version << " len=" << len;
      LoadOptions best_effort;
      best_effort.policy = SalvageReadPolicy();
      (void)ParseGridFile(prefix, best_effort);
    }
  }
}

TEST(FormatFuzzTest, RoundTripSurvivesParseableMutants) {
  // Any allocation accepted by the parser must itself round trip.
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto method = CreateMethod("dm", grid, 3).value();
  std::stringstream canonical;
  ASSERT_TRUE(SerializeAllocation(*method, canonical).ok());
  const std::string bytes = canonical.str();
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    std::stringstream in(MutateBytes(bytes, &rng));
    const auto first = DeserializeAllocation(in);
    if (!first.ok()) continue;
    std::stringstream again;
    ASSERT_TRUE(SerializeAllocation(*first.value(), again).ok());
    const auto second = DeserializeAllocation(again);
    ASSERT_TRUE(second.ok());
    first.value()->grid().ForEachBucket([&](const BucketCoords& c) {
      EXPECT_EQ(first.value()->DiskOf(c), second.value()->DiskOf(c));
    });
  }
}

}  // namespace
}  // namespace griddecl
