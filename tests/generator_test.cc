#include "griddecl/query/generator.h"

#include <set>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(GeneratorTest, SquarishShapeExactSquares) {
  QueryGenerator gen(GridSpec::Create({32, 32}).value());
  EXPECT_EQ(gen.SquarishShape(16).value(), QueryShape({4, 4}));
  EXPECT_EQ(gen.SquarishShape(64).value(), QueryShape({8, 8}));
  EXPECT_EQ(gen.SquarishShape(1).value(), QueryShape({1, 1}));
}

TEST(GeneratorTest, SquarishShapeNonSquareAreas) {
  QueryGenerator gen(GridSpec::Create({32, 32}).value());
  // 12 = 3x4 or 4x3 (tie broken deterministically), never 2x6 or 1x12.
  const QueryShape s = gen.SquarishShape(12).value();
  EXPECT_EQ(static_cast<uint64_t>(s[0]) * s[1], 12u);
  EXPECT_TRUE((s[0] == 3 && s[1] == 4) || (s[0] == 4 && s[1] == 3));
  // Primes must become lines.
  const QueryShape p = gen.SquarishShape(7).value();
  EXPECT_EQ(static_cast<uint64_t>(p[0]) * p[1], 7u);
}

TEST(GeneratorTest, SquarishShape3D) {
  QueryGenerator gen(GridSpec::Create({16, 16, 16}).value());
  EXPECT_EQ(gen.SquarishShape(27).value(), QueryShape({3, 3, 3}));
  const QueryShape s = gen.SquarishShape(24).value();
  EXPECT_EQ(static_cast<uint64_t>(s[0]) * s[1] * s[2], 24u);
  for (uint32_t e : s) {
    EXPECT_GE(e, 2u);  // Near-cubic, not 1x4x6.
    EXPECT_LE(e, 4u);
  }
}

TEST(GeneratorTest, SquarishShapeTooBigFails) {
  QueryGenerator gen(GridSpec::Create({4, 4}).value());
  EXPECT_FALSE(gen.SquarishShape(17).ok());  // Prime > dims.
  EXPECT_TRUE(gen.SquarishShape(16).ok());
  EXPECT_FALSE(gen.SquarishShape(0).ok());
}

TEST(GeneratorTest, Shape2DAspects) {
  QueryGenerator gen(GridSpec::Create({64, 64}).value());
  EXPECT_EQ(gen.Shape2D(16, 1.0).value(), QueryShape({4, 4}));
  EXPECT_EQ(gen.Shape2D(16, 4.0).value(), QueryShape({2, 8}));
  EXPECT_EQ(gen.Shape2D(16, 16.0).value(), QueryShape({1, 16}));
  EXPECT_EQ(gen.Shape2D(16, 1.0 / 16).value(), QueryShape({16, 1}));
}

TEST(GeneratorTest, Shape2DValidation) {
  QueryGenerator gen2(GridSpec::Create({8, 8}).value());
  EXPECT_FALSE(gen2.Shape2D(16, 0.0).ok());
  EXPECT_FALSE(gen2.Shape2D(0, 1.0).ok());
  QueryGenerator gen3(GridSpec::Create({8, 8, 8}).value());
  EXPECT_FALSE(gen3.Shape2D(4, 1.0).ok());
}

TEST(GeneratorTest, LineShape) {
  QueryGenerator gen(GridSpec::Create({8, 16}).value());
  EXPECT_EQ(gen.LineShape(1, 10).value(), QueryShape({1, 10}));
  EXPECT_FALSE(gen.LineShape(0, 10).ok());  // Exceeds dim 0.
  EXPECT_FALSE(gen.LineShape(2, 2).ok());   // No such dim.
}

TEST(GeneratorTest, NumPlacements) {
  QueryGenerator gen(GridSpec::Create({8, 8}).value());
  EXPECT_EQ(gen.NumPlacements({8, 8}).value(), 1u);
  EXPECT_EQ(gen.NumPlacements({1, 1}).value(), 64u);
  EXPECT_EQ(gen.NumPlacements({3, 5}).value(), 6u * 4u);
}

TEST(GeneratorTest, AllPlacementsEnumeratesExactly) {
  QueryGenerator gen(GridSpec::Create({6, 5}).value());
  const Workload w = gen.AllPlacements({2, 3}, "w").value();
  EXPECT_EQ(w.size(), gen.NumPlacements({2, 3}).value());
  std::set<std::string> seen;
  for (const RangeQuery& q : w.queries) {
    EXPECT_EQ(q.NumBuckets(), 6u);
    EXPECT_TRUE(q.rect().WithinGrid(gen.grid()));
    EXPECT_TRUE(seen.insert(q.ToString()).second);
  }
}

TEST(GeneratorTest, SampledPlacementsValidAndSeeded) {
  QueryGenerator gen(GridSpec::Create({32, 32}).value());
  Rng rng1(5);
  Rng rng2(5);
  const Workload a = gen.SampledPlacements({4, 4}, 50, &rng1, "a").value();
  const Workload b = gen.SampledPlacements({4, 4}, 50, &rng2, "b").value();
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.queries[i].ToString(), b.queries[i].ToString());
    EXPECT_TRUE(a.queries[i].rect().WithinGrid(gen.grid()));
  }
}

TEST(GeneratorTest, PlacementsSwitchesToSampling) {
  QueryGenerator gen(GridSpec::Create({32, 32}).value());
  Rng rng(1);
  // 29x29 = 841 placements > 100 -> sampled at 100.
  const Workload sampled = gen.Placements({4, 4}, 100, &rng, "s").value();
  EXPECT_EQ(sampled.size(), 100u);
  // 1 placement <= 100 -> exhaustive.
  const Workload full = gen.Placements({32, 32}, 100, &rng, "f").value();
  EXPECT_EQ(full.size(), 1u);
}

TEST(GeneratorTest, AllPartialMatchEnumeratesValues) {
  QueryGenerator gen(GridSpec::Create({3, 4}).value());
  const Workload w = gen.AllPartialMatch({0}, "pm").value();
  EXPECT_EQ(w.size(), 3u);  // One query per value of dim 0.
  for (const RangeQuery& q : w.queries) {
    EXPECT_EQ(q.NumBuckets(), 4u);  // Full span of dim 1.
  }
  const Workload w2 = gen.AllPartialMatch({0, 1}, "pm2").value();
  EXPECT_EQ(w2.size(), 12u);  // Every cell, as point queries.
}

TEST(GeneratorTest, AllPartialMatchEmptySpec) {
  QueryGenerator gen(GridSpec::Create({3, 4}).value());
  const Workload w = gen.AllPartialMatch({}, "pm").value();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.queries[0].NumBuckets(), 12u);
}

TEST(GeneratorTest, RandomPartialMatch) {
  QueryGenerator gen(GridSpec::Create({8, 8, 8}).value());
  Rng rng(3);
  const Workload w = gen.RandomPartialMatch(2, 40, &rng, "rpm").value();
  ASSERT_EQ(w.size(), 40u);
  for (const RangeQuery& q : w.queries) {
    // Two specified dims -> 8 buckets along the free one.
    EXPECT_EQ(q.NumBuckets(), 8u);
  }
  EXPECT_FALSE(gen.RandomPartialMatch(4, 1, &rng, "bad").ok());
}

TEST(WorkloadTest, TotalBucketsAndAppend) {
  QueryGenerator gen(GridSpec::Create({4, 4}).value());
  Workload a = gen.AllPlacements({2, 2}, "a").value();
  const uint64_t a_total = a.TotalBuckets();
  EXPECT_EQ(a_total, a.size() * 4);
  const Workload b = gen.AllPlacements({1, 1}, "b").value();
  a.Append(b);
  EXPECT_EQ(a.TotalBuckets(), a_total + b.size());
}

}  // namespace
}  // namespace griddecl
