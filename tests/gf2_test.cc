#include "griddecl/coding/gf2.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(BitVectorTest, SetGet) {
  BitVector v(130);  // Spans three words.
  EXPECT_TRUE(v.IsZero());
  v.Set(0, true);
  v.Set(64, true);
  v.Set(129, true);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(129));
  EXPECT_FALSE(v.Get(1));
  EXPECT_FALSE(v.IsZero());
  v.Set(64, false);
  EXPECT_FALSE(v.Get(64));
}

TEST(BitVectorTest, FromUint64AndBack) {
  const BitVector v = BitVector::FromUint64(0b1011, 6);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(1));
  EXPECT_FALSE(v.Get(2));
  EXPECT_TRUE(v.Get(3));
  EXPECT_EQ(v.ToUint64(), 0b1011u);
  EXPECT_EQ(v.ToString(), "110100");
}

TEST(BitVectorTest, XorWith) {
  BitVector a = BitVector::FromUint64(0b1100, 4);
  const BitVector b = BitVector::FromUint64(0b1010, 4);
  a.XorWith(b);
  EXPECT_EQ(a.ToUint64(), 0b0110u);
}

TEST(BitVectorTest, DotProduct) {
  const BitVector a = BitVector::FromUint64(0b1101, 4);
  const BitVector b = BitVector::FromUint64(0b1011, 4);
  // Overlap = 0b1001, two bits -> parity 0.
  EXPECT_FALSE(a.Dot(b));
  const BitVector c = BitVector::FromUint64(0b0001, 4);
  EXPECT_TRUE(a.Dot(c));
}

TEST(BitMatrixTest, IdentityMultiply) {
  const BitMatrix id = BitMatrix::Identity(5);
  const BitVector v = BitVector::FromUint64(0b10110, 5);
  EXPECT_EQ(id.Multiply(v).ToUint64(), 0b10110u);
  EXPECT_EQ(id.Rank(), 5u);
}

TEST(BitMatrixTest, ColumnOps) {
  BitMatrix m(3, 4);
  m.SetColumn(0, 0b101);
  m.SetColumn(3, 0b011);
  EXPECT_EQ(m.Column(0).ToUint64(), 0b101u);
  EXPECT_EQ(m.Column(3).ToUint64(), 0b011u);
  EXPECT_EQ(m.Column(1).ToUint64(), 0u);
  EXPECT_TRUE(m.Get(0, 0));
  EXPECT_FALSE(m.Get(1, 0));
  EXPECT_TRUE(m.Get(2, 0));
}

TEST(BitMatrixTest, MultiplyKnown) {
  // H = [1 0 1; 0 1 1] (columns 0b01, 0b10, 0b11).
  BitMatrix h(2, 3);
  h.SetColumn(0, 0b01);
  h.SetColumn(1, 0b10);
  h.SetColumn(2, 0b11);
  EXPECT_EQ(h.Multiply(BitVector::FromUint64(0b001, 3)).ToUint64(), 0b01u);
  EXPECT_EQ(h.Multiply(BitVector::FromUint64(0b010, 3)).ToUint64(), 0b10u);
  EXPECT_EQ(h.Multiply(BitVector::FromUint64(0b100, 3)).ToUint64(), 0b11u);
  // 0b111: xor of all three columns = 0.
  EXPECT_EQ(h.Multiply(BitVector::FromUint64(0b111, 3)).ToUint64(), 0u);
}

TEST(BitMatrixTest, RankDeficient) {
  BitMatrix m(3, 3);
  m.SetColumn(0, 0b001);
  m.SetColumn(1, 0b001);  // Duplicate column.
  m.SetColumn(2, 0b010);
  EXPECT_EQ(m.Rank(), 2u);
}

TEST(BitMatrixTest, MinDistanceHamming) {
  // Hamming(7,4) parity check: columns 1..7 — min distance 3.
  BitMatrix h(3, 7);
  for (uint32_t j = 0; j < 7; ++j) h.SetColumn(j, j + 1);
  EXPECT_EQ(h.MinDistanceUpTo(4), 3u);
}

TEST(BitMatrixTest, MinDistanceDuplicateColumnsIsTwo) {
  BitMatrix h(3, 4);
  h.SetColumn(0, 1);
  h.SetColumn(1, 2);
  h.SetColumn(2, 4);
  h.SetColumn(3, 1);  // Duplicate of column 0.
  EXPECT_EQ(h.MinDistanceUpTo(4), 2u);
}

TEST(BitMatrixTest, MinDistanceExceedsProbe) {
  // Identity 4x4: no <=1-weight codewords; any single column nonzero, and
  // distinct columns means weight-2 impossible... identity columns XOR of
  // any subset is nonzero unless empty, so distance exceeds probe.
  const BitMatrix id = BitMatrix::Identity(4);
  EXPECT_EQ(id.MinDistanceUpTo(3), 4u);  // max_weight + 1 sentinel.
}

}  // namespace
}  // namespace griddecl
