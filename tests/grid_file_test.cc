#include "griddecl/gridfile/grid_file.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"

namespace griddecl {
namespace {

Schema TwoAttrSchema() {
  return Schema::Create({{"age", 0.0, 100.0}, {"salary", 0.0, 200000.0}})
      .value();
}

TEST(SchemaTest, Validation) {
  EXPECT_FALSE(Schema::Create({}).ok());
  EXPECT_FALSE(Schema::Create({{"", 0.0, 1.0}}).ok());
  EXPECT_FALSE(Schema::Create({{"a", 1.0, 1.0}}).ok());
  EXPECT_FALSE(Schema::Create({{"a", 0.0, 1.0}, {"a", 0.0, 1.0}}).ok());
  const Schema s = TwoAttrSchema();
  EXPECT_EQ(s.num_attributes(), 2u);
  EXPECT_EQ(s.IndexOf("salary"), 1);
  EXPECT_EQ(s.IndexOf("nope"), -1);
}

TEST(GridFileTest, CreateValidation) {
  EXPECT_FALSE(GridFile::Create(TwoAttrSchema(), {8}).ok());
  EXPECT_FALSE(GridFile::Create(TwoAttrSchema(), {8, 0}).ok());
  const GridFile f = GridFile::Create(TwoAttrSchema(), {8, 4}).value();
  EXPECT_EQ(f.grid().ToString(), "8x4");
  EXPECT_EQ(f.num_records(), 0u);
}

TEST(GridFileTest, InsertAndBucketPlacement) {
  GridFile f = GridFile::Create(TwoAttrSchema(), {10, 10}).value();
  const RecordId id = f.Insert({25.0, 50000.0}).value();
  EXPECT_EQ(f.num_records(), 1u);
  EXPECT_EQ(f.record(id), Record({25.0, 50000.0}));
  // age 25 -> interval 2 of [0,100)/10; salary 50k -> interval 2.
  EXPECT_EQ(f.BucketOfRecord(id), BucketCoords({2, 2}));
  EXPECT_EQ(f.BucketContents({2, 2}).size(), 1u);
  EXPECT_TRUE(f.BucketContents({0, 0}).empty());
}

TEST(GridFileTest, InsertRejectsWrongArity) {
  GridFile f = GridFile::Create(TwoAttrSchema(), {4, 4}).value();
  EXPECT_FALSE(f.Insert({1.0}).ok());
  EXPECT_FALSE(f.Insert({1.0, 2.0, 3.0}).ok());
}

TEST(GridFileTest, OutOfDomainValuesClampIntoBoundaryBuckets) {
  GridFile f = GridFile::Create(TwoAttrSchema(), {4, 4}).value();
  const RecordId low = f.Insert({-50.0, -1.0}).value();
  const RecordId high = f.Insert({500.0, 1e9}).value();
  EXPECT_EQ(f.BucketOfRecord(low), BucketCoords({0, 0}));
  EXPECT_EQ(f.BucketOfRecord(high), BucketCoords({3, 3}));
}

TEST(GridFileTest, ResolveRangeMapsPredicateToBuckets) {
  const GridFile f = GridFile::Create(TwoAttrSchema(), {10, 10}).value();
  const RangeQuery q = f.ResolveRange({20.0, 0.0}, {39.0, 99999.0}).value();
  EXPECT_EQ(q.rect().lo(), BucketCoords({2, 0}));
  EXPECT_EQ(q.rect().hi(), BucketCoords({3, 4}));
  EXPECT_FALSE(f.ResolveRange({30.0}, {40.0}).ok());
  EXPECT_FALSE(f.ResolveRange({30.0, 0.0}, {20.0, 0.0}).ok());
}

TEST(GridFileTest, RangeSearchExactSemantics) {
  GridFile f = GridFile::Create(TwoAttrSchema(), {8, 8}).value();
  // Records straddling a bucket boundary: the bucket overlaps the query but
  // only some records inside match.
  ASSERT_TRUE(f.Insert({10.0, 10000.0}).ok());  // id 0: in range
  ASSERT_TRUE(f.Insert({11.0, 10000.0}).ok());  // id 1: in range
  ASSERT_TRUE(f.Insert({12.6, 10000.0}).ok());  // id 2: same bucket, out
  ASSERT_TRUE(f.Insert({80.0, 10000.0}).ok());  // id 3: different bucket
  const auto hits = f.RangeSearch({9.0, 0.0}, {12.0, 20000.0}).value();
  EXPECT_EQ(hits, (std::vector<RecordId>{0, 1}));
}

TEST(GridFileTest, RangeSearchMatchesBruteForce) {
  GridFile f = GridFile::Create(TwoAttrSchema(), {16, 16}).value();
  Rng rng(42);
  std::vector<Record> data;
  for (int i = 0; i < 500; ++i) {
    Record r = {rng.NextDouble() * 100.0, rng.NextDouble() * 200000.0};
    data.push_back(r);
    ASSERT_TRUE(f.Insert(r).ok());
  }
  for (int trial = 0; trial < 20; ++trial) {
    double a0 = rng.NextDouble() * 100.0;
    double a1 = rng.NextDouble() * 100.0;
    if (a0 > a1) std::swap(a0, a1);
    double s0 = rng.NextDouble() * 200000.0;
    double s1 = rng.NextDouble() * 200000.0;
    if (s0 > s1) std::swap(s0, s1);
    auto hits = f.RangeSearch({a0, s0}, {a1, s1}).value();
    std::vector<RecordId> expected;
    for (RecordId id = 0; id < data.size(); ++id) {
      const Record& r = data[static_cast<size_t>(id)];
      if (a0 <= r[0] && r[0] <= a1 && s0 <= r[1] && r[1] <= s1) {
        expected.push_back(id);
      }
    }
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace griddecl
