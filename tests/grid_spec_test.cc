#include "griddecl/grid/grid_spec.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(GridSpecTest, CreateValid) {
  Result<GridSpec> g = GridSpec::Create({4, 8});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_dims(), 2u);
  EXPECT_EQ(g.value().dim(0), 4u);
  EXPECT_EQ(g.value().dim(1), 8u);
  EXPECT_EQ(g.value().num_buckets(), 32u);
  EXPECT_EQ(g.value().ToString(), "4x8");
}

TEST(GridSpecTest, CreateRejectsBadInput) {
  EXPECT_FALSE(GridSpec::Create({}).ok());
  EXPECT_FALSE(GridSpec::Create({4, 0}).ok());
  EXPECT_FALSE(
      GridSpec::Create(std::vector<uint32_t>(kMaxDims + 1, 2)).ok());
}

TEST(GridSpecTest, Square) {
  Result<GridSpec> g = GridSpec::Square(3, 5);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_buckets(), 125u);
  EXPECT_EQ(g.value().ToString(), "5x5x5");
}

TEST(GridSpecTest, Contains) {
  const GridSpec g = GridSpec::Create({3, 4}).value();
  EXPECT_TRUE(g.Contains({0, 0}));
  EXPECT_TRUE(g.Contains({2, 3}));
  EXPECT_FALSE(g.Contains({3, 0}));
  EXPECT_FALSE(g.Contains({0, 4}));
  EXPECT_FALSE(g.Contains(BucketCoords({0})));  // Wrong arity.
}

TEST(GridSpecTest, LinearizeRowMajorOrder) {
  const GridSpec g = GridSpec::Create({2, 3}).value();
  // Last dimension varies fastest.
  EXPECT_EQ(g.Linearize({0, 0}), 0u);
  EXPECT_EQ(g.Linearize({0, 1}), 1u);
  EXPECT_EQ(g.Linearize({0, 2}), 2u);
  EXPECT_EQ(g.Linearize({1, 0}), 3u);
  EXPECT_EQ(g.Linearize({1, 2}), 5u);
}

TEST(GridSpecTest, LinearizeDelinearizeRoundTrip) {
  const GridSpec g = GridSpec::Create({3, 5, 2}).value();
  for (uint64_t i = 0; i < g.num_buckets(); ++i) {
    const BucketCoords c = g.Delinearize(i);
    EXPECT_TRUE(g.Contains(c));
    EXPECT_EQ(g.Linearize(c), i);
  }
}

TEST(GridSpecTest, ForEachBucketVisitsAllOnceInOrder) {
  const GridSpec g = GridSpec::Create({4, 3}).value();
  std::vector<uint64_t> visited;
  g.ForEachBucket([&](const BucketCoords& c) {
    visited.push_back(g.Linearize(c));
  });
  ASSERT_EQ(visited.size(), g.num_buckets());
  for (uint64_t i = 0; i < visited.size(); ++i) EXPECT_EQ(visited[i], i);
}

TEST(GridSpecTest, OneDimensionalGrid) {
  const GridSpec g = GridSpec::Create({7}).value();
  EXPECT_EQ(g.num_buckets(), 7u);
  EXPECT_EQ(g.Linearize(BucketCoords({6})), 6u);
}

TEST(GridSpecTest, SingleBucketGrid) {
  const GridSpec g = GridSpec::Create({1, 1, 1}).value();
  EXPECT_EQ(g.num_buckets(), 1u);
  int count = 0;
  g.ForEachBucket([&](const BucketCoords&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(GridSpecTest, Equality) {
  EXPECT_TRUE(GridSpec::Create({2, 3}).value() ==
              GridSpec::Create({2, 3}).value());
  EXPECT_FALSE(GridSpec::Create({2, 3}).value() ==
               GridSpec::Create({3, 2}).value());
}

TEST(BucketCoordsTest, Basics) {
  BucketCoords c(3);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], 0u);
  c[1] = 9;
  EXPECT_EQ(c[1], 9u);
  EXPECT_EQ(c.ToString(), "<0, 9, 0>");
  EXPECT_EQ(BucketCoords({1, 2}), BucketCoords({1, 2}));
  EXPECT_NE(BucketCoords({1, 2}), BucketCoords({2, 1}));
  EXPECT_NE(BucketCoords({1, 2}), BucketCoords({1, 2, 0}));
}

TEST(GridSpecDeathTest, LinearizeOutsideGridAborts) {
  const GridSpec g = GridSpec::Create({2, 2}).value();
  EXPECT_DEATH(g.Linearize({2, 0}), "CHECK failed");
}

}  // namespace
}  // namespace griddecl
