#include "griddecl/curve/hilbert.h"

#include <cstdlib>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(HilbertTest, CreateValidation) {
  EXPECT_TRUE(HilbertCurve::Create(2, 5).ok());
  EXPECT_FALSE(HilbertCurve::Create(0, 5).ok());
  EXPECT_FALSE(HilbertCurve::Create(9, 5).ok());
  EXPECT_FALSE(HilbertCurve::Create(2, 0).ok());
  EXPECT_FALSE(HilbertCurve::Create(8, 9).ok());  // 72 bits > 64.
  EXPECT_TRUE(HilbertCurve::Create(8, 8).ok());
}

TEST(HilbertTest, Known2DOrder1) {
  // The order-1 2-D Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
  const HilbertCurve h = HilbertCurve::Create(2, 1).value();
  std::vector<BucketCoords> expect = {
      {0, 0}, {0, 1}, {1, 1}, {1, 0}};
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.Coords(i), expect[i]) << "i=" << i;
    EXPECT_EQ(h.Index(expect[i]), i);
  }
}

class HilbertParamTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(HilbertParamTest, Bijective) {
  const auto [dims, order] = GetParam();
  const HilbertCurve h = HilbertCurve::Create(dims, order).value();
  std::set<uint64_t> seen;
  // Walk all cells via coordinates; indices must be a permutation.
  std::vector<uint32_t> c(dims, 0);
  for (;;) {
    BucketCoords bc(dims);
    for (uint32_t i = 0; i < dims; ++i) bc[i] = c[i];
    const uint64_t idx = h.Index(bc);
    EXPECT_LT(idx, h.num_cells());
    EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    EXPECT_EQ(h.Coords(idx), bc);
    uint32_t d = dims;
    for (;;) {
      if (d == 0) goto done;
      --d;
      if (++c[d] < h.side()) break;
      c[d] = 0;
    }
  }
done:
  EXPECT_EQ(seen.size(), h.num_cells());
}

TEST_P(HilbertParamTest, ConsecutiveIndicesAreAdjacentCells) {
  const auto [dims, order] = GetParam();
  const HilbertCurve h = HilbertCurve::Create(dims, order).value();
  for (uint64_t i = 0; i + 1 < h.num_cells(); ++i) {
    const BucketCoords a = h.Coords(i);
    const BucketCoords b = h.Coords(i + 1);
    uint64_t manhattan = 0;
    for (uint32_t d = 0; d < dims; ++d) {
      manhattan += static_cast<uint64_t>(
          std::abs(static_cast<int64_t>(a[d]) - static_cast<int64_t>(b[d])));
    }
    EXPECT_EQ(manhattan, 1u) << "step " << i << ": " << a.ToString() << " -> "
                             << b.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndOrders, HilbertParamTest,
    ::testing::Values(std::pair<uint32_t, uint32_t>{1, 4},
                      std::pair<uint32_t, uint32_t>{2, 1},
                      std::pair<uint32_t, uint32_t>{2, 2},
                      std::pair<uint32_t, uint32_t>{2, 3},
                      std::pair<uint32_t, uint32_t>{2, 5},
                      std::pair<uint32_t, uint32_t>{3, 1},
                      std::pair<uint32_t, uint32_t>{3, 2},
                      std::pair<uint32_t, uint32_t>{3, 3},
                      std::pair<uint32_t, uint32_t>{4, 2}));

TEST(HilbertTest, StartsAtOrigin) {
  for (uint32_t dims = 1; dims <= 4; ++dims) {
    const HilbertCurve h = HilbertCurve::Create(dims, 3).value();
    const BucketCoords origin = h.Coords(0);
    for (uint32_t d = 0; d < dims; ++d) EXPECT_EQ(origin[d], 0u);
  }
}

TEST(HilbertTest, LargeOrderRoundTrip) {
  const HilbertCurve h = HilbertCurve::Create(2, 16).value();
  for (uint64_t idx : {uint64_t{0}, uint64_t{1}, uint64_t{12345678},
                       h.num_cells() - 1}) {
    EXPECT_EQ(h.Index(h.Coords(idx)), idx);
  }
}

TEST(HilbertDeathTest, OutOfCubeCoordAborts) {
  const HilbertCurve h = HilbertCurve::Create(2, 2).value();
  EXPECT_DEATH(h.Index({4, 0}), "CHECK failed");
}

}  // namespace
}  // namespace griddecl
