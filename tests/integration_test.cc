#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "griddecl/griddecl.h"

namespace griddecl {
namespace {

/// End-to-end: build a relation, decluster it four ways, run the same
/// realistic query mix through every stack layer, and cross-check that the
/// bucket-level evaluator and the record-level executor agree.
TEST(IntegrationTest, FullStackAgreement) {
  Schema schema =
      Schema::Create({{"lat", 0.0, 90.0}, {"lon", 0.0, 180.0}}).value();
  Rng rng(2024);
  for (const char* name : {"dm", "fx", "ecc", "hcam"}) {
    GridFile file = GridFile::Create(schema, {16, 16}).value();
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(
          file.Insert({rng.NextDouble() * 90, rng.NextDouble() * 180}).ok());
    }
    DeclusteredFile df =
        DeclusteredFile::Create(std::move(file), name, 8).value();

    const std::vector<double> qlo = {10.0, 20.0};
    const std::vector<double> qhi = {40.0, 100.0};
    const QueryExecution exec = df.ExecuteRange(qlo, qhi).value();

    // Recompute through the bucket-level API.
    const RangeQuery q = df.file().ResolveRange(qlo, qhi).value();
    EXPECT_EQ(exec.buckets_touched, q.NumBuckets()) << name;
    EXPECT_EQ(exec.response_units, ResponseTime(df.method(), q)) << name;
    EXPECT_EQ(exec.optimal_units,
              OptimalResponseTime(q.NumBuckets(), 8))
        << name;
  }
}

/// The registry, generator, evaluator and table writer compose into the
/// experiment driver; sanity-check an entire mini-experiment end to end.
TEST(IntegrationTest, MiniExperimentPipeline) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  SweepOptions opts;
  opts.max_placements = 512;
  const SweepResult sweep =
      QuerySizeSweep(grid, 16, {4, 16, 64, 1024}, opts).value();
  ASSERT_EQ(sweep.points.size(), 4u);
  ASSERT_EQ(sweep.method_names.size(), 4u);

  // Every method converges toward optimal as queries grow (the paper's
  // finding (i)): the ratio at area 1024 is essentially no worse than at
  // area 4 and close to 1.
  for (size_t m = 0; m < sweep.method_names.size(); ++m) {
    const double small_ratio = sweep.points[0].mean_ratio[m];
    const double large_ratio = sweep.points[3].mean_ratio[m];
    EXPECT_LE(large_ratio, small_ratio + 0.05) << sweep.method_names[m];
    EXPECT_LT(large_ratio, 1.20) << sweep.method_names[m];
  }

  const Table t = sweep.ResponseTable();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_cols(), 2u + 4u);
}

/// Declustering changes I/O cost but never query answers: every method
/// returns identical record sets.
TEST(IntegrationTest, MethodsAgreeOnQueryAnswers) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  Rng rng(7);
  std::vector<Record> data;
  for (int i = 0; i < 250; ++i) {
    data.push_back({rng.NextDouble(), rng.NextDouble()});
  }
  std::map<std::string, std::vector<RecordId>> answers;
  for (const char* name : {"dm", "fx", "ecc", "hcam", "random"}) {
    GridFile file = GridFile::Create(schema, {16, 16}).value();
    for (const Record& r : data) ASSERT_TRUE(file.Insert(r).ok());
    DeclusteredFile df =
        DeclusteredFile::Create(std::move(file), name, 8).value();
    auto exec = df.ExecuteRange({0.1, 0.3}, {0.6, 0.9}).value();
    std::sort(exec.matches.begin(), exec.matches.end());
    answers[name] = exec.matches;
  }
  for (const auto& [name, ids] : answers) {
    EXPECT_EQ(ids, answers["dm"]) << name;
  }
}

/// The timed simulator and the bucket metric must agree on the obvious
/// comparison: a method that is much worse in bucket units is not better in
/// simulated milliseconds on the same query (identical service parameters,
/// same addresses-per-disk distribution shape).
TEST(IntegrationTest, TimedSimTracksBucketMetricForExtremes) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  const auto linear = CreateMethod("linear", grid, 8).value();
  // A 8x1 column query: linear places the whole column on few disks when
  // rows map contiguously; rank-based round robin spreads it.
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Create({0, 3}, {7, 3}).value())
          .value();
  const uint64_t rt_hcam = ResponseTime(*hcam, q);
  const uint64_t rt_linear = ResponseTime(*linear, q);
  DiskParams params;
  params.near_gap_buckets = 0;  // Uniform service time per request.
  ParallelIoSimulator sim(8, params);
  const double ms_hcam = sim.RunQuery(*hcam, q).makespan_ms;
  const double ms_linear = sim.RunQuery(*linear, q).makespan_ms;
  ASSERT_LT(rt_hcam, rt_linear);  // Linear is terrible on columns.
  EXPECT_LT(ms_hcam, ms_linear);
}

}  // namespace
}  // namespace griddecl
