#include "griddecl/sim/io_sim.h"

#include <gtest/gtest.h>

#include "griddecl/methods/registry.h"

namespace griddecl {
namespace {

DiskParams SimpleParams() {
  DiskParams p;
  p.avg_seek_ms = 10.0;
  p.rotational_latency_ms = 0.0;
  p.transfer_ms_per_kb = 0.125;
  p.bucket_kb = 8.0;  // 1 ms transfer.
  p.near_seek_factor = 0.1;
  p.near_gap_buckets = 4;
  return p;
}

TEST(IoSimTest, EmptyScheduleIsFree) {
  ParallelIoSimulator sim(4, SimpleParams());
  const SimResult r = sim.RunSchedule({{}, {}, {}, {}});
  EXPECT_EQ(r.makespan_ms, 0.0);
  EXPECT_EQ(r.TotalRequests(), 0u);
}

TEST(IoSimTest, SingleRequestCost) {
  ParallelIoSimulator sim(2, SimpleParams());
  const SimResult r = sim.RunSchedule({{100}, {}});
  // One far request: full positioning (10ms) + transfer (1ms).
  EXPECT_DOUBLE_EQ(r.makespan_ms, 11.0);
  EXPECT_EQ(r.per_disk[0].requests, 1u);
  EXPECT_EQ(r.per_disk[1].requests, 0u);
}

TEST(IoSimTest, SequentialRunCheaperThanScattered) {
  ParallelIoSimulator sim(1, SimpleParams());
  // Four adjacent buckets vs four far-apart buckets.
  const SimResult seq = sim.RunSchedule({{10, 11, 12, 13}});
  const SimResult scatter = sim.RunSchedule({{10, 100, 1000, 10000}});
  EXPECT_LT(seq.makespan_ms, scatter.makespan_ms);
  // Sequential: 1 far + 3 near = 11 + 3 * (1 + 1) = 17 ms.
  EXPECT_DOUBLE_EQ(seq.makespan_ms, 11.0 + 3 * (1.0 + 1.0));
  EXPECT_DOUBLE_EQ(scatter.makespan_ms, 4 * 11.0);
}

TEST(IoSimTest, MakespanIsMaxDisk) {
  ParallelIoSimulator sim(3, SimpleParams());
  const SimResult r = sim.RunSchedule({{1000}, {1, 5000}, {}});
  EXPECT_DOUBLE_EQ(r.per_disk[0].busy_ms, 11.0);
  EXPECT_DOUBLE_EQ(r.per_disk[1].busy_ms, 22.0);
  EXPECT_DOUBLE_EQ(r.makespan_ms, 22.0);
  EXPECT_DOUBLE_EQ(r.SerialMs(), 33.0);
  EXPECT_DOUBLE_EQ(r.Speedup(), 1.5);
}

TEST(IoSimTest, RequestsSortedBeforeCosting) {
  ParallelIoSimulator sim(1, SimpleParams());
  // Same set, different order: cost must be identical (disk sorts by
  // address).
  const SimResult a = sim.RunSchedule({{13, 10, 12, 11}});
  const SimResult b = sim.RunSchedule({{10, 11, 12, 13}});
  EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
}

TEST(IoSimTest, RunQueryMatchesBucketCounts) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 4).value();
  ParallelIoSimulator sim(4, SimpleParams());
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Create({0, 0}, {7, 7}).value())
          .value();
  const SimResult r = sim.RunQuery(*hcam, q);
  EXPECT_EQ(r.TotalRequests(), q.NumBuckets());
  EXPECT_GT(r.makespan_ms, 0.0);
  EXPECT_LE(r.Speedup(), 4.0 + 1e-9);
  EXPECT_GE(r.Speedup(), 1.0);
  EXPECT_GT(r.MeanUtilization(), 0.0);
  EXPECT_LE(r.MeanUtilization(), 1.0 + 1e-9);
}

TEST(IoSimTest, BalancedBeatsSkewedDeclustering) {
  // All buckets on one disk vs spread evenly: parallel wins.
  ParallelIoSimulator sim(4, SimpleParams());
  const SimResult skewed = sim.RunSchedule({{0, 100, 200, 300}, {}, {}, {}});
  const SimResult balanced = sim.RunSchedule({{0}, {100}, {200}, {300}});
  EXPECT_GT(skewed.makespan_ms, balanced.makespan_ms);
  EXPECT_DOUBLE_EQ(balanced.Speedup(), 4.0);
}

TEST(IoSimTest, DefaultParamsSane) {
  const DiskParams p;
  EXPECT_GT(p.TransferMs(), 0.0);
  ParallelIoSimulator sim(2, p);
  const SimResult r = sim.RunSchedule({{1}, {2}});
  EXPECT_GT(r.makespan_ms, 0.0);
}

TEST(IoSimDeathTest, MismatchedDiskCountAborts) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  ParallelIoSimulator sim(8, SimpleParams());
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Point({0, 0})).value();
  EXPECT_DEATH(sim.RunQuery(*dm, q), "CHECK failed");
}

}  // namespace
}  // namespace griddecl
