#include "griddecl/theory/kd_strict_optimality.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(KdStrictOptimalityTest, Validation) {
  const GridSpec grid = GridSpec::Create({4, 4, 4}).value();
  EXPECT_FALSE(FindStrictlyOptimalAllocationKd(grid, 0).ok());
  const GridSpec huge = GridSpec::Create({100, 100}).value();
  EXPECT_FALSE(FindStrictlyOptimalAllocationKd(huge, 2).ok());
}

TEST(KdStrictOptimalityTest, AgreesWith2DSearcher) {
  // The k-d searcher on a 2-d grid must reach the same verdict as the
  // specialized 2-d searcher.
  for (uint32_t m : {2u, 3u, 4u, 6u}) {
    const GridSpec grid = GridSpec::Create({m + 2, m + 2}).value();
    const auto kd = FindStrictlyOptimalAllocationKd(grid, m).value();
    const auto d2 = FindStrictlyOptimalAllocation(m + 2, m + 2, m).value();
    EXPECT_EQ(kd.outcome, d2.outcome) << "M=" << m;
    if (kd.outcome == SearchOutcome::kFound) {
      EXPECT_TRUE(AllocationIsStrictlyOptimalKd(grid, m, kd.allocation));
    }
  }
}

TEST(KdStrictOptimalityTest, ThreeDimensionalCheckerboardForTwoDisks) {
  // (i+j+k) mod 2 is strictly optimal in 3-d; the searcher must find
  // something, and the verifier must accept the parity allocation.
  const GridSpec grid = GridSpec::Create({3, 3, 3}).value();
  const auto r = FindStrictlyOptimalAllocationKd(grid, 2).value();
  EXPECT_EQ(r.outcome, SearchOutcome::kFound);
  EXPECT_TRUE(AllocationIsStrictlyOptimalKd(grid, 2, r.allocation));

  std::vector<uint32_t> parity;
  grid.ForEachBucket([&](const BucketCoords& c) {
    parity.push_back((c[0] + c[1] + c[2]) % 2);
  });
  EXPECT_TRUE(AllocationIsStrictlyOptimalKd(grid, 2, parity));
}

TEST(KdStrictOptimalityTest, TheoremLiftsToThreeDimensions) {
  // M > 5 impossible in 2-d implies impossible in 3-d (a 3-d grid contains
  // 2-d sub-grids); check M = 6 directly on a small 3-d grid.
  const GridSpec grid = GridSpec::Create({3, 3, 2}).value();
  const auto r = FindStrictlyOptimalAllocationKd(grid, 6).value();
  EXPECT_EQ(r.outcome, SearchOutcome::kInfeasible);
}

TEST(KdStrictOptimalityTest, VerifierRejectsBadAllocation) {
  const GridSpec grid = GridSpec::Create({2, 2, 2}).value();
  // All zeros on 2 disks: a 1x1x2 query gets RT 2 > opt 1.
  std::vector<uint32_t> zeros(8, 0);
  EXPECT_FALSE(AllocationIsStrictlyOptimalKd(grid, 2, zeros));
}

TEST(KdStrictOptimalityTest, OneDimensionalRoundRobin) {
  const GridSpec grid = GridSpec::Create({12}).value();
  const auto r = FindStrictlyOptimalAllocationKd(grid, 5).value();
  ASSERT_EQ(r.outcome, SearchOutcome::kFound);
  EXPECT_TRUE(AllocationIsStrictlyOptimalKd(grid, 5, r.allocation));
}

TEST(KdStrictOptimalityTest, BudgetExhaustion) {
  StrictOptimalitySearchOptions opts;
  opts.max_nodes = 2;
  const GridSpec grid = GridSpec::Create({4, 4, 4}).value();
  const auto r = FindStrictlyOptimalAllocationKd(grid, 3, opts).value();
  EXPECT_EQ(r.outcome, SearchOutcome::kBudgetExhausted);
}

}  // namespace
}  // namespace griddecl
