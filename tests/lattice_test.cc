#include "griddecl/methods/lattice.h"

#include "griddecl/methods/dm.h"

#include <gtest/gtest.h>

#include "griddecl/eval/evaluator.h"
#include "griddecl/methods/registry.h"
#include "griddecl/query/generator.h"
#include "griddecl/theory/strict_optimality.h"

namespace griddecl {
namespace {

TEST(LatticeTest, ScoreValidation) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  EXPECT_FALSE(ScoreGdmCoefficients(grid, 0, {1, 1}).ok());
  EXPECT_FALSE(ScoreGdmCoefficients(grid, 4, {1}).ok());
  EXPECT_TRUE(ScoreGdmCoefficients(grid, 4, {1, 1}).ok());
}

TEST(LatticeTest, ScoreIsOneForStrictlyOptimalCoefficients) {
  // (i + 2j) mod 5 is strictly optimal: every probed shape scores 1.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  EXPECT_DOUBLE_EQ(ScoreGdmCoefficients(grid, 5, {1, 2}).value(), 1.0);
  // Plain DM with M=5 is not: (i + j) collides on squares.
  EXPECT_GT(ScoreGdmCoefficients(grid, 5, {1, 1}).value(), 1.0);
}

TEST(LatticeTest, SearchFindsTheKnownOptimumForFiveDisks) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto coeffs = SearchGdmCoefficients(grid, 5).value();
  EXPECT_DOUBLE_EQ(ScoreGdmCoefficients(grid, 5, coeffs).value(), 1.0);
  // The found coefficients must define a strictly optimal allocation.
  const auto gdm = GdmMethod::Create(
      GridSpec::Create({7, 7}).value(), 5, coeffs).value();
  EXPECT_TRUE([&] {
    // Reuse the exhaustive verifier through a small allocation copy.
    std::vector<uint32_t> alloc;
    gdm->grid().ForEachBucket(
        [&](const BucketCoords& c) { alloc.push_back(gdm->DiskOf(c)); });
    return AllocationIsStrictlyOptimal(7, 7, 5, alloc);
  }());
}

TEST(LatticeTest, SearchedBeatsOrMatchesPlainDmEverywhere) {
  for (uint32_t m : {4u, 7u, 8u, 13u, 16u}) {
    const GridSpec grid = GridSpec::Create({32, 32}).value();
    const double dm_score = ScoreGdmCoefficients(grid, m, {1, 1}).value();
    const auto coeffs = SearchGdmCoefficients(grid, m).value();
    const double searched = ScoreGdmCoefficients(grid, m, coeffs).value();
    EXPECT_LE(searched, dm_score + 1e-12) << "M=" << m;
  }
}

TEST(LatticeTest, SearchedGdmImprovesSmallSquareWorkloads) {
  // The concrete payoff: on the paper's small-square scenario the searched
  // coefficients clearly beat DM/CMD.
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const uint32_t m = 16;
  const auto dm = CreateMethod("dm", grid, m).value();
  const auto searched = CreateMethod("gdm-search", grid, m).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({4, 4}, "4x4").value();
  const double dm_rt = Evaluator(*dm).EvaluateWorkload(w).MeanResponse();
  const double s_rt =
      Evaluator(*searched).EvaluateWorkload(w).MeanResponse();
  EXPECT_LT(s_rt, dm_rt * 0.8);
}

TEST(LatticeTest, PinnedFirstCoefficient) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto coeffs = SearchGdmCoefficients(grid, 8).value();
  ASSERT_EQ(coeffs.size(), 2u);
  EXPECT_EQ(coeffs[0], 1u);
  EXPECT_GE(coeffs[1], 1u);
  EXPECT_LT(coeffs[1], 8u);
}

TEST(LatticeTest, DegenerateCases) {
  const GridSpec grid1 = GridSpec::Create({16}).value();
  EXPECT_EQ(SearchGdmCoefficients(grid1, 8).value(),
            std::vector<uint32_t>{1});
  const GridSpec grid2 = GridSpec::Create({4, 4}).value();
  EXPECT_EQ(SearchGdmCoefficients(grid2, 1).value(),
            (std::vector<uint32_t>{1, 1}));
}

TEST(LatticeTest, ThreeDimensionalSearchRuns) {
  const GridSpec grid = GridSpec::Create({8, 8, 8}).value();
  const auto coeffs = SearchGdmCoefficients(grid, 8).value();
  ASSERT_EQ(coeffs.size(), 3u);
  const double searched = ScoreGdmCoefficients(grid, 8, coeffs).value();
  const double dm = ScoreGdmCoefficients(grid, 8, {1, 1, 1}).value();
  EXPECT_LE(searched, dm + 1e-12);
}

}  // namespace
}  // namespace griddecl
