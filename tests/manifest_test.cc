#include "griddecl/gridfile/manifest.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/common/bytes.h"
#include "griddecl/common/crc32c.h"
#include "griddecl/common/random.h"
#include "griddecl/methods/registry.h"

namespace griddecl {
namespace {

DiskParams TestDiskParams() {
  DiskParams p;
  p.avg_seek_ms = 9.5;
  p.rotational_latency_ms = 4.25;
  p.transfer_ms_per_kb = 0.125;
  p.bucket_kb = 16.0;
  p.near_seek_factor = 0.2;
  p.near_gap_buckets = 32;
  return p;
}

GridFile MakeFile(int num_records, uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {8, 8}).value();
  Rng rng(seed);
  for (int i = 0; i < num_records; ++i) {
    EXPECT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  return f;
}

/// A catalog with one relation per registry method (8 disks: a power of
/// two, so every method including ECC is constructible).
Catalog MakeCatalog(uint32_t num_disks = 8) {
  Catalog catalog(num_disks);
  uint64_t seed = 100;
  for (const std::string& method : AllMethodNames()) {
    Result<DeclusteredFile> rel = DeclusteredFile::Create(
        MakeFile(120, seed++), method, num_disks, TestDiskParams());
    EXPECT_TRUE(rel.ok()) << method << ": " << rel.status().ToString();
    if (rel.ok()) {
      EXPECT_TRUE(catalog.AddRelation(method, std::move(rel).value()).ok());
    }
  }
  return catalog;
}

ManifestSaveOptions SmallPages() {
  ManifestSaveOptions options;
  options.page_size_bytes = 168;  // v3: (168 - 8 - 32) / 16 = 8 records per page.
  return options;
}

TEST(ManifestTest, SaveCommitsGenerationOne) {
  const Catalog catalog = MakeCatalog();
  MemEnv env;
  const uint64_t gen = SaveCatalogManifest(catalog, &env, SmallPages()).value();
  EXPECT_EQ(gen, 1u);
  EXPECT_TRUE(env.Exists(kCurrentFileName));
  EXPECT_TRUE(env.Exists(ManifestFileName(1)));

  const CatalogManifest m = ReadCurrentManifest(env).value();
  EXPECT_EQ(m.generation, 1u);
  EXPECT_EQ(m.num_disks, 8u);
  EXPECT_EQ(m.relations.size(), AllMethodNames().size());
  EXPECT_TRUE(VerifyManifestFiles(env, m).ok());
}

TEST(ManifestTest, CatalogRoundTripsThroughEveryMethod) {
  // The property test: for a catalog containing a relation per registry
  // method, save + reload must reproduce bucket placement, record ids,
  // disk assignment, and query responses exactly.
  const Catalog original = MakeCatalog();
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(original, &env, SmallPages()).ok());
  const Catalog loaded = LoadCatalogManifest(env).value();

  EXPECT_EQ(loaded.num_disks(), original.num_disks());
  ASSERT_EQ(loaded.RelationNames(), original.RelationNames());
  const std::vector<double> lo = {0.2, 0.2};
  const std::vector<double> hi = {0.7, 0.7};
  for (const std::string& name : original.RelationNames()) {
    const DeclusteredFile* a = original.Find(name);
    const DeclusteredFile* b = loaded.Find(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(b->method_name(), a->method_name());
    EXPECT_EQ(b->disk_params().avg_seek_ms, a->disk_params().avg_seek_ms);
    EXPECT_EQ(b->disk_params().near_gap_buckets,
              a->disk_params().near_gap_buckets);
    ASSERT_EQ(b->file().num_records(), a->file().num_records()) << name;
    for (RecordId id = 0; id < a->file().num_records(); ++id) {
      EXPECT_EQ(b->file().record(id), a->file().record(id));
      EXPECT_EQ(b->file().BucketOfRecord(id), a->file().BucketOfRecord(id));
      EXPECT_EQ(b->DiskOfRecord(id), a->DiskOfRecord(id)) << name;
    }
    const QueryExecution qa = a->ExecuteRange(lo, hi).value();
    const QueryExecution qb = b->ExecuteRange(lo, hi).value();
    EXPECT_EQ(qb.matches, qa.matches) << name;
    EXPECT_EQ(qb.response_units, qa.response_units) << name;
    EXPECT_EQ(qb.buckets_touched, qa.buckets_touched) << name;
  }
}

TEST(ManifestTest, GenerationsAdvanceAndOldOnesAreCollected) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  EXPECT_EQ(SaveCatalogManifest(catalog, &env).value(), 1u);
  EXPECT_EQ(SaveCatalogManifest(catalog, &env).value(), 2u);
  // Generation 1 is retained as the rollback target.
  EXPECT_TRUE(env.Exists(ManifestFileName(1)));
  EXPECT_EQ(SaveCatalogManifest(catalog, &env).value(), 3u);
  // Now generation 1 is gone, generation 2 retained.
  EXPECT_FALSE(env.Exists(ManifestFileName(1)));
  EXPECT_FALSE(env.Exists("rel-000001-0.gd"));
  EXPECT_TRUE(env.Exists(ManifestFileName(2)));
  EXPECT_EQ(ReadCurrentManifest(env).value().generation, 3u);
}

TEST(ManifestTest, ManifestRejectsEverySingleByteMutation) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  const std::string bytes = env.ReadFile(ManifestFileName(1)).value();
  ASSERT_TRUE(ParseManifest(bytes).ok());
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string copy = bytes;
    copy[pos] = static_cast<char>(copy[pos] ^ 0x04);
    EXPECT_FALSE(ParseManifest(copy).ok()) << "byte " << pos;
  }
  // Truncations and extensions are rejected too.
  EXPECT_FALSE(ParseManifest(bytes.substr(0, bytes.size() / 2)).ok());
  EXPECT_FALSE(ParseManifest(bytes + "x").ok());
  EXPECT_FALSE(ParseManifest("").ok());
}

TEST(ManifestTest, TornCurrentFallsBackToManifestScan) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  // Tear the CURRENT pointer mid-write.
  const std::string current = env.ReadFile(kCurrentFileName).value();
  ASSERT_TRUE(env.TruncateFile(kCurrentFileName, current.size() / 2).ok());
  EXPECT_EQ(ReadCurrentManifest(env).value().generation, 2u);
  // Remove it entirely: scan still lands on the newest intact generation.
  ASSERT_TRUE(env.Remove(kCurrentFileName).ok());
  EXPECT_EQ(ReadCurrentManifest(env).value().generation, 2u);
}

TEST(ManifestTest, EmptyEnvReportsNotFound) {
  MemEnv env;
  EXPECT_EQ(LoadCatalogManifest(env).status().code(), StatusCode::kNotFound);
}

TEST(ManifestTest, CorruptRelationFailsLoadByName) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env, SmallPages()).ok());
  const CatalogManifest m = ReadCurrentManifest(env).value();
  // Flip a byte deep inside relation 0's data file.
  ASSERT_TRUE(env.CorruptByte(m.DataFileName(0), 400, 0x20).ok());
  const Result<Catalog> loaded = LoadCatalogManifest(env);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(m.relations[0].name),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(ManifestTest, MirrorPolicyWritesCopies) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ManifestSaveOptions options = SmallPages();
  options.default_redundancy.policy = RelationRedundancy::Policy::kMirror;
  options.default_redundancy.copies = 3;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env, options).ok());
  const CatalogManifest m = ReadCurrentManifest(env).value();
  for (size_t i = 0; i < m.relations.size(); ++i) {
    const std::string data = env.ReadFile(m.DataFileName(i)).value();
    EXPECT_EQ(env.ReadFile(m.MirrorFileName(i, 1)).value(), data);
    EXPECT_EQ(env.ReadFile(m.MirrorFileName(i, 2)).value(), data);
    EXPECT_FALSE(env.Exists(m.ParityFileName(i)));
  }
  EXPECT_TRUE(VerifyManifestFiles(env, m).ok());
}

TEST(ManifestTest, ParityPolicyWritesXorSidecar) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ManifestSaveOptions options = SmallPages();
  options.default_redundancy.policy = RelationRedundancy::Policy::kParity;
  options.default_redundancy.group_pages = 4;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env, options).ok());
  const CatalogManifest m = ReadCurrentManifest(env).value();
  for (size_t i = 0; i < m.relations.size(); ++i) {
    const std::string data = env.ReadFile(m.DataFileName(i)).value();
    const std::string parity = env.ReadFile(m.ParityFileName(i)).value();
    const FileLayout layout = ParseFileLayout(data).value();
    const uint64_t stripes = (layout.num_pages - 1) / 4 + 1;
    EXPECT_EQ(parity.size(), stripes * layout.page_size_bytes);
    EXPECT_EQ(parity, BuildParityBytes(data, 4).value());
    // XOR property: page 0 equals parity(stripe 0) XOR pages 1..3.
    std::string reconstructed = parity.substr(0, layout.page_size_bytes);
    for (uint64_t q = 1; q < std::min<uint64_t>(4, layout.num_pages); ++q) {
      for (uint32_t b = 0; b < layout.page_size_bytes; ++b) {
        reconstructed[b] ^= data[layout.PageOffset(q) + b];
      }
    }
    EXPECT_EQ(reconstructed,
              data.substr(layout.PageOffset(0), layout.page_size_bytes));
  }
  EXPECT_TRUE(VerifyManifestFiles(env, m).ok());
}

TEST(ManifestTest, PerRelationRedundancyOverrides) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ManifestSaveOptions options = SmallPages();
  options.per_relation["dm"].policy = RelationRedundancy::Policy::kMirror;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env, options).ok());
  const CatalogManifest m = ReadCurrentManifest(env).value();
  for (size_t i = 0; i < m.relations.size(); ++i) {
    const bool is_dm = m.relations[i].name == "dm";
    EXPECT_EQ(m.relations[i].redundancy.policy,
              is_dm ? RelationRedundancy::Policy::kMirror
                    : RelationRedundancy::Policy::kNone);
    EXPECT_EQ(env.Exists(m.MirrorFileName(i, 1)), is_dm);
  }
}

TEST(ManifestTest, StagedGenerationStaysInvisibleUntilCommit) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  const uint64_t staged = StageCatalogManifest(catalog, &env).value();
  EXPECT_EQ(staged, 2u);
  // Durable but uncommitted: the files exist, CURRENT still resolves 1,
  // and the recovery scan skips the stage like crashed-save wreckage.
  EXPECT_TRUE(env.Exists(ManifestFileName(2)));
  EXPECT_EQ(ReadCurrentManifest(env).value().generation, 1u);

  EXPECT_TRUE(CommitStagedManifest(&env, 2).ok());
  EXPECT_EQ(ReadCurrentManifest(env).value().generation, 2u);
  // Committing the already-current generation is an idempotent no-op.
  EXPECT_TRUE(CommitStagedManifest(&env, 2).ok());
  // A committed generation can only be retired by GC, never dropped.
  EXPECT_EQ(DropStagedManifest(&env, 2).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ManifestTest, CommitFenceRefusesOvertakenStagedGeneration) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  const uint64_t staged = StageCatalogManifest(catalog, &env).value();
  EXPECT_EQ(staged, 2u);
  // A racing committer lands generation 3 (staged generations are visible
  // to NextManifestGeneration, so the racer numbers past the stage).
  EXPECT_EQ(SaveCatalogManifest(catalog, &env).value(), 3u);
  // The fence: flipping CURRENT back onto 2 would silently roll the
  // catalog backwards, so the stale commit must refuse.
  EXPECT_EQ(CommitStagedManifest(&env, 2).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ReadCurrentManifest(env).value().generation, 3u);
  // The loser's stage is still cleanly droppable.
  EXPECT_TRUE(DropStagedManifest(&env, 2).ok());
  EXPECT_FALSE(env.Exists(ManifestFileName(2)));
  EXPECT_FALSE(env.Exists("rel-000002-0.gd"));
}

TEST(ManifestTest, DropStagedRestoresTheExactFileSet) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  const std::vector<std::string> before = env.ListFiles().value();
  const uint64_t staged = StageCatalogManifest(catalog, &env).value();
  EXPECT_GT(env.ListFiles().value().size(), before.size());
  EXPECT_TRUE(DropStagedManifest(&env, staged).ok());
  EXPECT_EQ(env.ListFiles().value(), before);
  EXPECT_TRUE(LoadCatalogManifest(env).ok());
}

TEST(ManifestTest, RollbackToGenerationBypassesTheFence) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  ASSERT_EQ(ReadCurrentManifest(env).value().generation, 2u);
  // Generation 1 survives as the rollback target; the explicit rollback
  // primitive deliberately steps the fence backwards.
  EXPECT_TRUE(RollbackToGeneration(&env, 1).ok());
  EXPECT_EQ(ReadCurrentManifest(env).value().generation, 1u);
  EXPECT_TRUE(LoadCatalogManifest(env).ok());
  // Rolling back onto a generation whose files are gone must refuse.
  EXPECT_FALSE(RollbackToGeneration(&env, 7).ok());
}

/// Interposes on reads to commit new generations mid-load: the first
/// `fire_after` reads of relation files pass through, then the hook runs
/// once before the next relation-file read — simulating a committer whose
/// GC sweeps the resolved generation out from under a slow reader.
class RacingEnv : public StorageEnv {
 public:
  RacingEnv(MemEnv* target, std::function<void()> hook, int fire_after = 0)
      : target_(target), hook_(std::move(hook)), fuse_(fire_after) {}

  Result<std::string> ReadFile(const std::string& name) const override {
    MaybeFire(name);
    return target_->ReadFile(name);
  }
  Result<std::string> ReadAt(const std::string& name, uint64_t offset,
                             uint64_t length) const override {
    MaybeFire(name);
    return target_->ReadAt(name, offset, length);
  }
  Status WriteFile(const std::string& name, std::string_view data) override {
    return target_->WriteFile(name, data);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return target_->Rename(from, to);
  }
  Status Remove(const std::string& name) override {
    return target_->Remove(name);
  }
  bool Exists(const std::string& name) const override {
    return target_->Exists(name);
  }
  Result<std::vector<std::string>> ListFiles() const override {
    return target_->ListFiles();
  }

 private:
  void MaybeFire(const std::string& name) const {
    if (hook_ == nullptr || name.rfind("rel-", 0) != 0) return;
    if (fuse_-- > 0) return;
    auto hook = std::move(hook_);
    hook_ = nullptr;
    hook();
  }

  MemEnv* target_;
  mutable std::function<void()> hook_;
  mutable int fuse_;
};

TEST(ManifestTest, ConsistentLoadSurvivesConcurrentCommitAndGc) {
  // Regression for the concurrent-generation race: a reader resolves
  // CURRENT = 2, then a committer lands generations 3 and 4 — whose GC
  // retires generation 2's files — before the reader touches them. The
  // plain load fails (checksummed reads can never mix generations); the
  // consistent wrapper re-resolves and retries at the new CURRENT.
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());

  // Two commits: each save lands a new generation and its GC retires
  // everything but the new generation and its predecessor — so the
  // generation the racing reader resolved is swept mid-load.
  const auto race = [&catalog, &env] {
    EXPECT_TRUE(SaveCatalogManifest(catalog, &env).ok());
    EXPECT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  };

  {
    RacingEnv racing(&env, race);
    EXPECT_FALSE(LoadCatalogManifest(racing).ok());
    EXPECT_FALSE(env.Exists("rel-000002-0.gd"));  // GC swept the reader's gen.
  }
  {
    RacingEnv racing(&env, race);
    const Result<Catalog> loaded = LoadCatalogManifestConsistent(racing);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().RelationNames(), catalog.RelationNames());
  }
}

TEST(ManifestTest, InvalidRedundancyRejected) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ManifestSaveOptions options;
  options.default_redundancy.policy = RelationRedundancy::Policy::kMirror;
  options.default_redundancy.copies = 1;  // Mirror needs >= 2.
  EXPECT_FALSE(SaveCatalogManifest(catalog, &env, options).ok());
}

ManifestPlacement TestPlacement() {
  ManifestPlacement p;
  p.policy = 2;  // zone_aware
  p.seed = 0x5eedULL;
  p.node_rack = {0, 0, 1, 1};
  p.rack_zone = {0, 1};
  return p;
}

TEST(ManifestTest, PlacementRoundTripsThroughSaveAndLoad) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ManifestSaveOptions options;
  options.placement = TestPlacement();
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env, options).ok());

  const CatalogManifest m = ReadCurrentManifest(env).value();
  ASSERT_TRUE(m.placement.has_value());
  EXPECT_EQ(m.placement->policy, 2u);
  EXPECT_EQ(m.placement->seed, 0x5eedULL);
  EXPECT_EQ(m.placement->node_rack, (std::vector<uint32_t>{0, 0, 1, 1}));
  EXPECT_EQ(m.placement->rack_zone, (std::vector<uint32_t>{0, 1}));

  // A save without a placement record clears it.
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  EXPECT_FALSE(ReadCurrentManifest(env).value().placement.has_value());
}

TEST(ManifestTest, PlacementSurvivesStageCommitAndConsistentLoad) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());

  ManifestSaveOptions options;
  options.placement = TestPlacement();
  const uint64_t staged =
      StageCatalogManifest(catalog, &env, options).value();
  // Invisible until commit: the live manifest still has no placement.
  EXPECT_FALSE(ReadCurrentManifest(env).value().placement.has_value());
  ASSERT_TRUE(CommitStagedManifest(&env, staged).ok());

  const CatalogManifest m = ReadCurrentManifest(env).value();
  ASSERT_TRUE(m.placement.has_value());
  EXPECT_EQ(m.placement->node_rack, TestPlacement().node_rack);
  // The consistent-load path parses the same record without complaint.
  EXPECT_TRUE(LoadCatalogManifestConsistent(env).ok());
}

TEST(ManifestTest, VersionTwoManifestLoadsAsPlacementAbsent) {
  // Hand-craft a pre-placement (version 2) manifest from a fresh v3 one:
  // strip the trailing has_placement word + CRC, patch the version field,
  // and re-checksum. Old catalogs must keep loading, with the absent
  // record meaning "chained" to every consumer.
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env).ok());
  std::string bytes = env.ReadFile(ManifestFileName(1)).value();
  ASSERT_GE(bytes.size(), 8u);
  bytes.resize(bytes.size() - 8);  // drop has_placement u32 + CRC u32.
  const uint32_t v2 = 2;
  std::memcpy(bytes.data() + 4, &v2, 4);  // version follows the magic.
  AppendU32(&bytes, Crc32c(bytes));

  const Result<CatalogManifest> m = ParseManifest(bytes);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_FALSE(m.value().placement.has_value());
  EXPECT_EQ(m.value().relations.size(), catalog.RelationNames().size());
}

TEST(ManifestTest, MalformedPlacementRecordsRejected) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ManifestSaveOptions options;
  options.placement = TestPlacement();
  options.placement->policy = 7;  // no such policy
  EXPECT_FALSE(SaveCatalogManifest(catalog, &env, options).ok() &&
               ParseManifest(env.ReadFile(ManifestFileName(1)).value()).ok());

  // A record whose rack ids overflow the rack table must not parse.
  options.placement = TestPlacement();
  options.placement->node_rack = {0, 0, 9, 1};
  MemEnv env2;
  const Result<uint64_t> gen = SaveCatalogManifest(catalog, &env2, options);
  if (gen.ok()) {
    EXPECT_FALSE(
        ParseManifest(env2.ReadFile(ManifestFileName(1)).value()).ok());
  }
}

uint32_t ManifestVersionWord(const std::string& bytes) {
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, 4);  // Version follows the magic.
  return version;
}

TEST(ManifestTest, PlacementTableRoundTripsAsVersionFour) {
  // Repair output: an explicit (copy, disk) -> node table overriding the
  // policy formula. It must persist (version 4) and reload verbatim.
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ManifestSaveOptions options;
  options.placement = TestPlacement();
  options.placement->table_copies = 2;
  options.placement->table_disks = 4;
  options.placement->table = {0, 1, 2, 3, 2, 3, 1, 0};
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env, options).ok());

  const std::string bytes = env.ReadFile(ManifestFileName(1)).value();
  EXPECT_EQ(ManifestVersionWord(bytes), 4u);
  const CatalogManifest m = ParseManifest(bytes).value();
  ASSERT_TRUE(m.placement.has_value());
  EXPECT_EQ(m.placement->table_copies, 2u);
  EXPECT_EQ(m.placement->table_disks, 4u);
  EXPECT_EQ(m.placement->table,
            (std::vector<uint32_t>{0, 1, 2, 3, 2, 3, 1, 0}));
  EXPECT_TRUE(LoadCatalogManifestConsistent(env).ok());
}

TEST(ManifestTest, TablelessPlacementStaysVersionThree) {
  // Backward compatibility: a manifest whose placement record carries no
  // table serializes exactly as before the table existed, so pre-repair
  // readers keep working byte-for-byte.
  const Catalog catalog = MakeCatalog(4);
  MemEnv with_table_env;
  MemEnv tableless_env;
  ManifestSaveOptions options;
  options.placement = TestPlacement();
  ASSERT_TRUE(SaveCatalogManifest(catalog, &tableless_env, options).ok());
  options.placement->table_copies = 1;
  options.placement->table_disks = 4;
  options.placement->table = {0, 1, 2, 3};
  ASSERT_TRUE(SaveCatalogManifest(catalog, &with_table_env, options).ok());

  const std::string tableless =
      tableless_env.ReadFile(ManifestFileName(1)).value();
  EXPECT_EQ(ManifestVersionWord(tableless), 3u);
  EXPECT_NE(tableless,
            with_table_env.ReadFile(ManifestFileName(1)).value());

  // A no-placement manifest stays version 3 too.
  MemEnv plain_env;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &plain_env).ok());
  EXPECT_EQ(
      ManifestVersionWord(plain_env.ReadFile(ManifestFileName(1)).value()),
      3u);
}

TEST(ManifestTest, PlacementTableNamingUnknownNodeRejected) {
  const Catalog catalog = MakeCatalog(4);
  MemEnv env;
  ManifestSaveOptions options;
  options.placement = TestPlacement();  // 4 nodes.
  options.placement->table_copies = 1;
  options.placement->table_disks = 4;
  options.placement->table = {0, 1, 2, 9};  // No node 9.
  const Result<uint64_t> gen = SaveCatalogManifest(catalog, &env, options);
  if (gen.ok()) {
    EXPECT_FALSE(ParseManifest(env.ReadFile(ManifestFileName(1)).value()).ok());
  }
}

}  // namespace
}  // namespace griddecl
