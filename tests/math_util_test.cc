#include "griddecl/common/math_util.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
  EXPECT_EQ(CeilDiv(8, 4), 2u);
  EXPECT_EQ(CeilDiv(9, 4), 3u);
  EXPECT_EQ(CeilDiv(100, 1), 100u);
}

TEST(MathUtilTest, CeilDivMatchesDefinition) {
  for (uint64_t a = 0; a < 200; ++a) {
    for (uint64_t b = 1; b < 20; ++b) {
      const uint64_t q = CeilDiv(a, b);
      EXPECT_GE(q * b, a);
      EXPECT_LT((q - (q > 0 ? 1 : 0)) * b, a + (q == 0 ? 1 : 0));
    }
  }
}

TEST(MathUtilTest, Gcd) {
  EXPECT_EQ(Gcd(12, 18), 6u);
  EXPECT_EQ(Gcd(7, 13), 1u);
  EXPECT_EQ(Gcd(0, 5), 5u);
  EXPECT_EQ(Gcd(5, 0), 5u);
  EXPECT_EQ(Gcd(48, 36), 12u);
}

TEST(MathUtilTest, Lcm) {
  EXPECT_EQ(Lcm(4, 6), 12u);
  EXPECT_EQ(Lcm(7, 13), 91u);
  EXPECT_EQ(Lcm(0, 5), 0u);
  EXPECT_EQ(Lcm(8, 8), 8u);
}

TEST(MathUtilTest, IPow) {
  EXPECT_EQ(IPow(2, 0), 1u);
  EXPECT_EQ(IPow(2, 10), 1024u);
  EXPECT_EQ(IPow(3, 4), 81u);
  EXPECT_EQ(IPow(10, 6), 1000000u);
  EXPECT_EQ(IPow(0, 5), 0u);
  EXPECT_EQ(IPow(0, 0), 1u);
}

}  // namespace
}  // namespace griddecl
