#include "griddecl/common/maxflow.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  MaxFlowGraph g(2);
  const uint32_t e = g.AddEdge(0, 1, 7);
  EXPECT_EQ(g.MaxFlow(0, 1), 7u);
  EXPECT_EQ(g.flow(e), 7u);
}

TEST(MaxFlowTest, ClassicDiamond) {
  //      1
  //   /     \
  //  0       3   two paths, bottlenecks 2 and 3.
  //   \     /
  //      2
  MaxFlowGraph g(4);
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 3, 5);
  g.AddEdge(0, 2, 4);
  g.AddEdge(2, 3, 3);
  EXPECT_EQ(g.MaxFlow(0, 3), 5u);
}

TEST(MaxFlowTest, CrossEdgeRequiresResidualReasoning) {
  // The textbook example where augmenting greedily through the middle
  // edge must be undone via the residual graph.
  MaxFlowGraph g(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(0, 2, 1);
  g.AddEdge(1, 2, 1);
  g.AddEdge(1, 3, 1);
  g.AddEdge(2, 3, 1);
  EXPECT_EQ(g.MaxFlow(0, 3), 2u);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlowGraph g(4);
  g.AddEdge(0, 1, 5);
  g.AddEdge(2, 3, 5);
  EXPECT_EQ(g.MaxFlow(0, 3), 0u);
}

TEST(MaxFlowTest, BipartiteMatching) {
  // 3 jobs, 3 machines; job0 -> {m0}, job1 -> {m0, m1}, job2 -> {m1, m2}.
  // Perfect matching exists.
  MaxFlowGraph g(8);  // 0 src, 1-3 jobs, 4-6 machines, 7 sink.
  for (uint32_t j = 1; j <= 3; ++j) g.AddEdge(0, j, 1);
  g.AddEdge(1, 4, 1);
  g.AddEdge(2, 4, 1);
  g.AddEdge(2, 5, 1);
  g.AddEdge(3, 5, 1);
  g.AddEdge(3, 6, 1);
  for (uint32_t m = 4; m <= 6; ++m) g.AddEdge(m, 7, 1);
  EXPECT_EQ(g.MaxFlow(0, 7), 3u);
}

TEST(MaxFlowTest, ResetAndRetune) {
  MaxFlowGraph g(3);
  g.AddEdge(0, 1, 4);
  const uint32_t bottleneck = g.AddEdge(1, 2, 1);
  EXPECT_EQ(g.MaxFlow(0, 2), 1u);
  // Widen the bottleneck and re-solve.
  g.ResetCapacities();
  g.SetCapacity(bottleneck, 10);
  EXPECT_EQ(g.MaxFlow(0, 2), 4u);
  // Shrink to zero.
  g.ResetCapacities();
  g.SetCapacity(bottleneck, 0);
  EXPECT_EQ(g.MaxFlow(0, 2), 0u);
}

TEST(MaxFlowTest, FlowConservationOnSolvedGraph) {
  MaxFlowGraph g(5);
  const uint32_t a = g.AddEdge(0, 1, 3);
  const uint32_t b = g.AddEdge(0, 2, 3);
  const uint32_t c = g.AddEdge(1, 3, 2);
  const uint32_t d = g.AddEdge(2, 3, 2);
  const uint32_t e = g.AddEdge(1, 2, 1);
  const uint32_t f = g.AddEdge(3, 4, 10);
  const uint64_t total = g.MaxFlow(0, 4);
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(g.flow(a) + g.flow(b), total);
  EXPECT_EQ(g.flow(c) + g.flow(d), total);
  EXPECT_EQ(g.flow(f), total);
  EXPECT_LE(g.flow(e), 1u);
}

}  // namespace
}  // namespace griddecl
