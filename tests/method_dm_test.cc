#include "griddecl/methods/dm.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(DmMethodTest, FormulaMatchesPaper) {
  // disk(<i1, i2>) = (i1 + i2) mod M.
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = GdmMethod::Dm(grid, 5).value();
  EXPECT_EQ(dm->name(), "DM/CMD");
  for (uint32_t i = 0; i < 8; ++i) {
    for (uint32_t j = 0; j < 8; ++j) {
      EXPECT_EQ(dm->DiskOf({i, j}), (i + j) % 5);
    }
  }
}

TEST(DmMethodTest, ThreeDimensional) {
  const GridSpec grid = GridSpec::Create({4, 4, 4}).value();
  const auto dm = GdmMethod::Dm(grid, 3).value();
  EXPECT_EQ(dm->DiskOf({1, 2, 3}), (1 + 2 + 3) % 3u);
  EXPECT_EQ(dm->DiskOf({3, 3, 3}), 0u);
}

TEST(GdmMethodTest, CoefficientsApplied) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto gdm = GdmMethod::Create(grid, 5, {1, 2}).value();
  EXPECT_EQ(gdm->name(), "GDM");
  for (uint32_t i = 0; i < 8; ++i) {
    for (uint32_t j = 0; j < 8; ++j) {
      EXPECT_EQ(gdm->DiskOf({i, j}), (i + 2 * j) % 5);
    }
  }
}

TEST(GdmMethodTest, WrongCoefficientArityRejected) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  EXPECT_FALSE(GdmMethod::Create(grid, 5, {1}).ok());
  EXPECT_FALSE(GdmMethod::Create(grid, 5, {1, 2, 3}).ok());
}

TEST(DmMethodTest, RowsAreRotationsOfEachOther) {
  // DM's diagonal structure: row i+1 is row i shifted by one disk.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto dm = GdmMethod::Dm(grid, 7).value();
  for (uint32_t i = 0; i + 1 < 16; ++i) {
    for (uint32_t j = 0; j + 1 < 16; ++j) {
      EXPECT_EQ(dm->DiskOf({i + 1, j}), dm->DiskOf({i, j + 1}));
    }
  }
}

TEST(DmMethodTest, PerfectLoadBalanceWhenSideMultipleOfM) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = GdmMethod::Dm(grid, 4).value();
  const std::vector<uint64_t> loads = dm->DiskLoadHistogram();
  for (uint64_t l : loads) EXPECT_EQ(l, 64u / 4);
}

TEST(DmMethodTest, OneDisk) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto dm = GdmMethod::Dm(grid, 1).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(dm->DiskOf(c), 0u);
  });
}

TEST(DmMethodTest, RejectsZeroDisks) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  EXPECT_FALSE(GdmMethod::Dm(grid, 0).ok());
}

}  // namespace
}  // namespace griddecl
