#include "griddecl/methods/ecc.h"

#include <gtest/gtest.h>

#include "griddecl/coding/parity_check.h"

namespace griddecl {
namespace {

TEST(EccMethodTest, RequiresPowerOfTwoDisks) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  EXPECT_TRUE(EccMethod::Create(grid, 4).ok());
  const auto bad = EccMethod::Create(grid, 6);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnsupported);
}

TEST(EccMethodTest, RequiresPowerOfTwoDomains) {
  const GridSpec grid = GridSpec::Create({8, 6}).value();
  const auto bad = EccMethod::Create(grid, 4);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnsupported);
}

TEST(EccMethodTest, DisksInRangeAndBalanced) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto ecc = EccMethod::Create(grid, 8).value();
  EXPECT_EQ(ecc->name(), "ECC");
  // Cosets of a linear code partition the space into equal parts.
  for (uint64_t l : ecc->DiskLoadHistogram()) EXPECT_EQ(l, 256u / 8);
}

TEST(EccMethodTest, DiskZeroIsTheCode) {
  // Bucket <0,...,0> has zero syndrome -> disk 0, and the set of disk-0
  // buckets is closed under coordinate-bit XOR (a linear code).
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto ecc = EccMethod::Create(grid, 4).value();
  EXPECT_EQ(ecc->DiskOf({0, 0}), 0u);
  std::vector<BucketCoords> code;
  grid.ForEachBucket([&](const BucketCoords& c) {
    if (ecc->DiskOf(c) == 0) code.push_back(c);
  });
  for (const auto& a : code) {
    for (const auto& b : code) {
      const BucketCoords x({a[0] ^ b[0], a[1] ^ b[1]});
      EXPECT_EQ(ecc->DiskOf(x), 0u)
          << a.ToString() << " ^ " << b.ToString();
    }
  }
}

TEST(EccMethodTest, MinDistancePropertySeparatesCloseBuckets) {
  // With n <= 2^c - 1, buckets differing in 1 or 2 coordinate bits must be
  // on different disks.
  const GridSpec grid = GridSpec::Create({8, 8}).value();  // n = 6 bits.
  const auto ecc = EccMethod::Create(grid, 8).value();     // c = 3, 6 <= 7.
  grid.ForEachBucket([&](const BucketCoords& a) {
    // Flip each single coordinate bit.
    for (uint32_t dim = 0; dim < 2; ++dim) {
      for (uint32_t bit = 0; bit < 3; ++bit) {
        BucketCoords b = a;
        b[dim] = a[dim] ^ (1u << bit);
        EXPECT_NE(ecc->DiskOf(a), ecc->DiskOf(b))
            << a.ToString() << " vs " << b.ToString();
      }
    }
  });
}

TEST(EccMethodTest, AdjacentBucketsNeverShareDisk) {
  // Coordinate neighbours differ in >= 1 bit; with distance-3 codes even
  // some 2-bit flips separate, but at minimum direct binary neighbours
  // (+1 on a value ending in 0) always differ in exactly one bit.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto ecc = EccMethod::Create(grid, 16).value();  // n=8, c=4, 8<=15.
  for (uint32_t i = 0; i < 16; ++i) {
    for (uint32_t j = 0; j + 1 < 16; j += 2) {
      EXPECT_NE(ecc->DiskOf({i, j}), ecc->DiskOf({i, j + 1}));
    }
  }
}

TEST(EccMethodTest, CustomMatrixValidation) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  // Needs 2 x 6 for M=4 over 6 bits; wrong shape rejected.
  BitMatrix wrong(3, 6);
  EXPECT_FALSE(EccMethod::CreateWithMatrix(grid, 4, wrong).ok());
  BitMatrix right = BuildHammingParityCheck(2, 6).value();
  EXPECT_TRUE(EccMethod::CreateWithMatrix(grid, 4, right).ok());
}

TEST(EccMethodTest, OneDiskDegenerate) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto ecc = EccMethod::Create(grid, 1).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(ecc->DiskOf(c), 0u);
  });
}

TEST(EccMethodTest, SingleBucketGrid) {
  const GridSpec grid = GridSpec::Create({1, 1}).value();
  const auto ecc = EccMethod::Create(grid, 4).value();
  EXPECT_EQ(ecc->DiskOf({0, 0}), 0u);
}

TEST(EccMethodTest, BinaryAttributesClassicCase) {
  // The original ECC setting: k binary attributes. 2^6 buckets, 8 disks.
  const GridSpec grid = GridSpec::Create({2, 2, 2, 2, 2, 2}).value();
  const auto ecc = EccMethod::Create(grid, 8).value();
  for (uint64_t l : ecc->DiskLoadHistogram()) EXPECT_EQ(l, 64u / 8);
}

}  // namespace
}  // namespace griddecl
