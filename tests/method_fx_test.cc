#include "griddecl/methods/fx.h"

#include <gtest/gtest.h>

#include "griddecl/methods/dm.h"

namespace griddecl {
namespace {

TEST(FxMethodTest, FormulaMatchesPaper) {
  // disk(<i1, i2>) = (i1 XOR i2) mod M.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto fx = FxMethod::Create(grid, 8).value();
  EXPECT_EQ(fx->name(), "FX");
  for (uint32_t i = 0; i < 16; ++i) {
    for (uint32_t j = 0; j < 16; ++j) {
      EXPECT_EQ(fx->DiskOf({i, j}), (i ^ j) % 8);
    }
  }
}

TEST(FxMethodTest, ThreeDimensionalXor) {
  const GridSpec grid = GridSpec::Create({8, 8, 8}).value();
  const auto fx = FxMethod::Create(grid, 4).value();
  EXPECT_EQ(fx->DiskOf({1, 2, 4}), (1 ^ 2 ^ 4) % 4u);
  EXPECT_EQ(fx->DiskOf({7, 7, 7}), (7 ^ 7 ^ 7) % 4u);
}

TEST(FxMethodTest, PerfectBalanceOnPowerOfTwoGrid) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto fx = FxMethod::Create(grid, 8).value();
  for (uint64_t l : fx->DiskLoadHistogram()) EXPECT_EQ(l, 256u / 8);
}

TEST(ExFxMethodTest, MatchesFxWhenDomainsLarge) {
  // When every d_i >= M (and widths agree), ExFX degenerates to FX.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto fx = FxMethod::Create(grid, 8).value();
  const auto exfx = FxMethod::CreateExtended(grid, 8).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(fx->DiskOf(c), exfx->DiskOf(c)) << c.ToString();
  });
}

TEST(ExFxMethodTest, SpreadsSmallDomainsAcrossAllDisks) {
  // 4x4 grid, 16 disks: plain FX can only reach (i^j) in 0..3 -> 4 disks;
  // ExFX's bit replication must reach more than plain FX does.
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto fx = FxMethod::Create(grid, 16).value();
  const auto exfx = FxMethod::CreateExtended(grid, 16).value();
  auto distinct = [&](const DeclusteringMethod& m) {
    std::vector<bool> used(16, false);
    grid.ForEachBucket([&](const BucketCoords& c) { used[m.DiskOf(c)] = true; });
    int n = 0;
    for (bool u : used) n += u ? 1 : 0;
    return n;
  };
  EXPECT_EQ(distinct(*fx), 4);
  EXPECT_GT(distinct(*exfx), 4);
}

TEST(FxAutoTest, SelectionRule) {
  // Paper: FX when partitions >= disks, ExFX otherwise.
  const GridSpec big = GridSpec::Create({32, 32}).value();
  const GridSpec small = GridSpec::Create({4, 32}).value();
  EXPECT_EQ(FxMethod::CreateAuto(big, 16).value()->name(), "FX");
  EXPECT_EQ(FxMethod::CreateAuto(small, 16).value()->name(), "ExFX");
}

TEST(FxMethodTest, OptimalForRowQueriesPowerOfTwo) {
  // For a 1 x M row query with M a power of 2 and aligned domains, the XOR
  // of a full aligned block of M consecutive values hits all residues.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto fx = FxMethod::Create(grid, 8).value();
  for (uint32_t i = 0; i < 16; ++i) {
    for (uint32_t j0 = 0; j0 + 8 <= 16; j0 += 8) {  // Aligned blocks.
      std::vector<bool> used(8, false);
      for (uint32_t j = j0; j < j0 + 8; ++j) used[fx->DiskOf({i, j})] = true;
      for (bool u : used) EXPECT_TRUE(u);
    }
  }
}

TEST(FxMethodTest, DiffersFromDm) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto fx = FxMethod::Create(grid, 8).value();
  const auto dm = GdmMethod::Dm(grid, 8).value();
  bool any_diff = false;
  grid.ForEachBucket([&](const BucketCoords& c) {
    any_diff = any_diff || (fx->DiskOf(c) != dm->DiskOf(c));
  });
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace griddecl
