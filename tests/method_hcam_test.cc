#include "griddecl/methods/hcam.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/curve/hilbert.h"

namespace griddecl {
namespace {

TEST(HcamTest, EqualsHilbertModMOnPowerOfTwoSquare) {
  // For a full power-of-two cube the rank along the curve IS the curve
  // index, so HCAM reduces to the papers' H(b) mod M.
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto hcam =
      CurveAllocMethod::Create(grid, 5, CurveKind::kHilbert).value();
  const HilbertCurve h = HilbertCurve::Create(2, 3).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(hcam->DiskOf(c), h.Index(c) % 5) << c.ToString();
  });
}

TEST(HcamTest, RoundRobinBalance) {
  // Round robin along the curve: loads differ by at most 1, on any grid.
  for (const auto& dims : std::vector<std::vector<uint32_t>>{
           {8, 8}, {6, 10}, {7, 5}, {4, 4, 4}, {3, 5, 7}}) {
    const GridSpec grid = GridSpec::Create(dims).value();
    const auto hcam =
        CurveAllocMethod::Create(grid, 7, CurveKind::kHilbert).value();
    const std::vector<uint64_t> loads = hcam->DiskLoadHistogram();
    const uint64_t lo = *std::min_element(loads.begin(), loads.end());
    const uint64_t hi = *std::max_element(loads.begin(), loads.end());
    EXPECT_LE(hi - lo, 1u) << grid.ToString();
  }
}

TEST(HcamTest, RanksAreAPermutation) {
  const GridSpec grid = GridSpec::Create({6, 9}).value();
  const auto m =
      CurveAllocMethod::Create(grid, 4, CurveKind::kHilbert).value();
  const auto* hcam = static_cast<const CurveAllocMethod*>(m.get());
  std::set<uint64_t> ranks;
  grid.ForEachBucket([&](const BucketCoords& c) {
    const uint64_t r = hcam->CurveRank(c);
    EXPECT_LT(r, grid.num_buckets());
    EXPECT_TRUE(ranks.insert(r).second);
  });
  EXPECT_EQ(ranks.size(), grid.num_buckets());
}

TEST(HcamTest, RankOrderFollowsCurveOrder) {
  // Ranks must be monotone in the underlying Hilbert index.
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto m =
      CurveAllocMethod::Create(grid, 3, CurveKind::kHilbert).value();
  const auto* hcam = static_cast<const CurveAllocMethod*>(m.get());
  const HilbertCurve h = HilbertCurve::Create(2, 3).value();
  std::vector<std::pair<uint64_t, uint64_t>> pairs;  // (hilbert, rank)
  grid.ForEachBucket([&](const BucketCoords& c) {
    pairs.push_back({h.Index(c), hcam->CurveRank(c)});
  });
  std::sort(pairs.begin(), pairs.end());
  for (uint64_t i = 0; i < pairs.size(); ++i) EXPECT_EQ(pairs[i].second, i);
}

TEST(HcamTest, NonPowerOfTwoGridWorks) {
  const GridSpec grid = GridSpec::Create({5, 13}).value();
  const auto hcam =
      CurveAllocMethod::Create(grid, 6, CurveKind::kHilbert).value();
  EXPECT_EQ(hcam->name(), "HCAM");
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_LT(hcam->DiskOf(c), 6u);
  });
}

TEST(ZcamTest, UsesMortonOrder) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto zcam =
      CurveAllocMethod::Create(grid, 3, CurveKind::kZOrder).value();
  EXPECT_EQ(zcam->name(), "ZCAM");
  // On a full power-of-two square, rank == Morton index.
  // Morton visits (0,0),(0,1),(1,0),(1,1),(0,2),...
  EXPECT_EQ(zcam->DiskOf({0, 0}), 0u);
  EXPECT_EQ(zcam->DiskOf({0, 1}), 1u);
  EXPECT_EQ(zcam->DiskOf({1, 0}), 2u);
  EXPECT_EQ(zcam->DiskOf({1, 1}), 0u);
}

TEST(ZcamTest, DiffersFromHcam) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam =
      CurveAllocMethod::Create(grid, 8, CurveKind::kHilbert).value();
  const auto zcam =
      CurveAllocMethod::Create(grid, 8, CurveKind::kZOrder).value();
  bool any_diff = false;
  grid.ForEachBucket([&](const BucketCoords& c) {
    any_diff = any_diff || (hcam->DiskOf(c) != zcam->DiskOf(c));
  });
  EXPECT_TRUE(any_diff);
}

TEST(HcamTest, TooManyDisksRejected) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  EXPECT_FALSE(CurveAllocMethod::Create(grid, 70000).ok());
}

TEST(HcamTest, DeterministicAcrossInstances) {
  const GridSpec grid = GridSpec::Create({12, 9}).value();
  const auto a = CurveAllocMethod::Create(grid, 5).value();
  const auto b = CurveAllocMethod::Create(grid, 5).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(a->DiskOf(c), b->DiskOf(c));
  });
}

}  // namespace
}  // namespace griddecl
