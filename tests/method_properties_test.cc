#include <algorithm>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "griddecl/methods/registry.h"

namespace griddecl {
namespace {

/// Property tests that every declustering method must satisfy, run across
/// the full registry and several grid/disk configurations.
struct PropertyCase {
  std::string method;
  std::vector<uint32_t> dims;
  uint32_t disks;
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << c.method << " on ";
  for (size_t i = 0; i < c.dims.size(); ++i) {
    *os << (i ? "x" : "") << c.dims[i];
  }
  *os << " M=" << c.disks;
}

class MethodPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  std::unique_ptr<DeclusteringMethod> MakeMethod() {
    const PropertyCase& c = GetParam();
    const GridSpec grid = GridSpec::Create(c.dims).value();
    Result<std::unique_ptr<DeclusteringMethod>> m =
        CreateMethod(c.method, grid, c.disks);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return std::move(m).value();
  }
};

TEST_P(MethodPropertyTest, DiskAlwaysInRange) {
  const auto m = MakeMethod();
  m->grid().ForEachBucket([&](const BucketCoords& c) {
    EXPECT_LT(m->DiskOf(c), m->num_disks());
  });
}

TEST_P(MethodPropertyTest, Deterministic) {
  const auto m = MakeMethod();
  const auto m2 = MakeMethod();
  m->grid().ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(m->DiskOf(c), m->DiskOf(c));
    EXPECT_EQ(m->DiskOf(c), m2->DiskOf(c));
  });
}

TEST_P(MethodPropertyTest, TotalLoadEqualsBucketCount) {
  const auto m = MakeMethod();
  const auto loads = m->DiskLoadHistogram();
  uint64_t total = 0;
  for (uint64_t l : loads) total += l;
  EXPECT_EQ(total, m->grid().num_buckets());
}

TEST_P(MethodPropertyTest, GridLevelBalanceReasonable) {
  const auto m = MakeMethod();
  const auto loads = m->DiskLoadHistogram();
  const uint64_t lo = *std::min_element(loads.begin(), loads.end());
  const uint64_t hi = *std::max_element(loads.begin(), loads.end());
  const double ideal = static_cast<double>(m->grid().num_buckets()) /
                       m->num_disks();
  bool power_of_two_config = (GetParam().disks & (GetParam().disks - 1)) == 0;
  for (uint32_t d : GetParam().dims) {
    power_of_two_config = power_of_two_config && ((d & (d - 1)) == 0);
  }
  if (GetParam().method == "random") {
    // Statistical bound only.
    EXPECT_LT(static_cast<double>(hi), 2.0 * ideal + 8);
  } else if (power_of_two_config) {
    // Every structured method is exactly uniform on power-of-two grids with
    // a power-of-two disk count.
    EXPECT_LE(hi - lo, 0u) << "loads hi=" << hi << " lo=" << lo;
  } else {
    // Loose sanity bound for awkward configurations: no disk may carry more
    // than 3x its fair share.
    EXPECT_LT(static_cast<double>(hi), 3.0 * ideal + 3);
  }
}

std::vector<PropertyCase> AllCases() {
  std::vector<PropertyCase> cases;
  const std::vector<std::vector<uint32_t>> grids = {
      {16, 16},   // friendly power-of-two
      {8, 32},    // asymmetric power-of-two
      {8, 8, 8},  // 3-d
  };
  for (const std::string& name : AllMethodNames()) {
    for (const auto& dims : grids) {
      for (uint32_t m : {2u, 4u, 8u}) {
        cases.push_back({name, dims, m});
      }
    }
  }
  // Non-power-of-two configurations for methods without restrictions.
  for (const std::string& name :
       {"dm", "gdm", "fx", "exfx", "fx-auto", "hcam", "zcam", "linear",
        "random"}) {
    cases.push_back({name, {15, 21}, 7});
    cases.push_back({name, {5, 9, 3}, 6});
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string s = info.param.method;
  for (uint32_t d : info.param.dims) s += "_" + std::to_string(d);
  s += "_m" + std::to_string(info.param.disks);
  std::replace(s.begin(), s.end(), '-', '_');
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodPropertyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace griddecl
