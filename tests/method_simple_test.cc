#include "griddecl/methods/simple.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(LinearMethodTest, RowMajorRoundRobin) {
  const GridSpec grid = GridSpec::Create({4, 6}).value();
  const auto linear = LinearMethod::Create(grid, 5).value();
  EXPECT_EQ(linear->name(), "Linear");
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(linear->DiskOf(c), grid.Linearize(c) % 5);
  });
}

TEST(LinearMethodTest, BalanceWithinOne) {
  const GridSpec grid = GridSpec::Create({7, 9}).value();
  const auto linear = LinearMethod::Create(grid, 4).value();
  const auto loads = linear->DiskLoadHistogram();
  const uint64_t lo = *std::min_element(loads.begin(), loads.end());
  const uint64_t hi = *std::max_element(loads.begin(), loads.end());
  EXPECT_LE(hi - lo, 1u);
}

TEST(RandomMethodTest, DeterministicPerSeed) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto a = RandomMethod::Create(grid, 8, 123).value();
  const auto b = RandomMethod::Create(grid, 8, 123).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(a->DiskOf(c), b->DiskOf(c));
  });
}

TEST(RandomMethodTest, SeedsChangeAssignment) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto a = RandomMethod::Create(grid, 8, 1).value();
  const auto b = RandomMethod::Create(grid, 8, 2).value();
  int diff = 0;
  grid.ForEachBucket([&](const BucketCoords& c) {
    diff += (a->DiskOf(c) != b->DiskOf(c)) ? 1 : 0;
  });
  EXPECT_GT(diff, 100);  // ~7/8 of 256 expected.
}

TEST(RandomMethodTest, RoughlyUniformLoads) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  const auto r = RandomMethod::Create(grid, 8, 7).value();
  const auto loads = r->DiskLoadHistogram();
  const double expected = 4096.0 / 8.0;
  for (uint64_t l : loads) {
    EXPECT_GT(static_cast<double>(l), expected * 0.8);
    EXPECT_LT(static_cast<double>(l), expected * 1.2);
  }
}

TEST(RandomMethodTest, InRange) {
  const GridSpec grid = GridSpec::Create({9, 11}).value();
  const auto r = RandomMethod::Create(grid, 7, 99).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_LT(r->DiskOf(c), 7u);
  });
}

}  // namespace
}  // namespace griddecl
