#include "griddecl/eval/metrics.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "griddecl/methods/dm.h"
#include "griddecl/methods/registry.h"

namespace griddecl {
namespace {

RangeQuery MakeQuery(const GridSpec& grid, BucketCoords lo, BucketCoords hi) {
  return RangeQuery::Create(grid, BucketRect::Create(lo, hi).value()).value();
}

TEST(MetricsTest, OptimalResponseTime) {
  EXPECT_EQ(OptimalResponseTime(0, 4), 0u);
  EXPECT_EQ(OptimalResponseTime(1, 4), 1u);
  EXPECT_EQ(OptimalResponseTime(4, 4), 1u);
  EXPECT_EQ(OptimalResponseTime(5, 4), 2u);
  EXPECT_EQ(OptimalResponseTime(100, 1), 100u);
}

TEST(MetricsTest, ResponseTimeHandComputedDm) {
  // DM on a 4x4 grid with M=2: disk = (i+j) mod 2, a checkerboard.
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto dm = GdmMethod::Dm(grid, 2).value();
  // A 2x2 query has two buckets on each disk.
  EXPECT_EQ(ResponseTime(*dm, MakeQuery(grid, {0, 0}, {1, 1})), 2u);
  // A 1x2 query: one on each.
  EXPECT_EQ(ResponseTime(*dm, MakeQuery(grid, {0, 0}, {0, 1})), 1u);
  // A single bucket.
  EXPECT_EQ(ResponseTime(*dm, MakeQuery(grid, {3, 3}, {3, 3})), 1u);
  // The whole grid: 8 per disk.
  EXPECT_EQ(ResponseTime(*dm, MakeQuery(grid, {0, 0}, {3, 3})), 8u);
}

TEST(MetricsTest, DmWorstCaseDiagonalQuery) {
  // DM assigns the same disk along anti-diagonals; a query aligned so that
  // i+j is constant... rows of a 1xM line hit M distinct disks, but an
  // M x M square has exactly M buckets of each residue... the classic DM
  // weakness: a 2x2 query under M=4 touches disks {0,1,1,2} -> RT 2 > opt 1.
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = GdmMethod::Dm(grid, 4).value();
  const RangeQuery q = MakeQuery(grid, {0, 0}, {1, 1});
  EXPECT_EQ(q.NumBuckets(), 4u);
  EXPECT_EQ(OptimalResponseTime(4, 4), 1u);
  EXPECT_EQ(ResponseTime(*dm, q), 2u);
  EXPECT_FALSE(IsOptimalFor(*dm, q));
}

TEST(MetricsTest, PerDiskCountsSumToVolume) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  for (const char* name : {"dm", "fx", "ecc", "hcam", "linear", "random"}) {
    const auto m = CreateMethod(name, grid, 8).value();
    const RangeQuery q = MakeQuery(grid, {2, 3}, {9, 14});
    const auto counts = PerDiskCounts(*m, q);
    ASSERT_EQ(counts.size(), 8u);
    uint64_t total = 0;
    uint64_t max = 0;
    for (uint64_t c : counts) {
      total += c;
      max = std::max(max, c);
    }
    EXPECT_EQ(total, q.NumBuckets()) << name;
    EXPECT_EQ(max, ResponseTime(*m, q)) << name;
  }
}

TEST(MetricsTest, ResponseTimeBounds) {
  // For any method: opt <= RT <= |Q|.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  for (const char* name : {"dm", "fx", "ecc", "hcam", "zcam", "random"}) {
    const auto m = CreateMethod(name, grid, 4).value();
    for (uint32_t size = 1; size <= 8; ++size) {
      const RangeQuery q = MakeQuery(grid, {1, 2}, {size, size + 1});
      const uint64_t rt = ResponseTime(*m, q);
      EXPECT_GE(rt, OptimalResponseTime(q.NumBuckets(), 4)) << name;
      EXPECT_LE(rt, q.NumBuckets()) << name;
    }
  }
}

TEST(MetricsTest, IsStrictlyOptimalAcceptsKnownAllocation) {
  // (i + 2j) mod 5 is strictly optimal — wire it up as a GDM method.
  const GridSpec grid = GridSpec::Create({6, 6}).value();
  const auto gdm = GdmMethod::Create(grid, 5, {1, 2}).value();
  EXPECT_TRUE(IsStrictlyOptimal(*gdm));
}

TEST(MetricsTest, IsStrictlyOptimalRejectsDmOnFourDisks) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto dm = GdmMethod::Dm(grid, 4).value();
  EXPECT_FALSE(IsStrictlyOptimal(*dm));
}

TEST(MetricsTest, EveryMethodStrictlyOptimalOnOneDisk) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  for (const char* name : {"dm", "fx", "hcam", "linear", "random"}) {
    const auto m = CreateMethod(name, grid, 1).value();
    EXPECT_TRUE(IsStrictlyOptimal(*m)) << name;
  }
}

}  // namespace
}  // namespace griddecl
