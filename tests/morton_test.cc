#include "griddecl/curve/morton.h"

#include <set>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(MortonTest, CreateValidation) {
  EXPECT_TRUE(MortonCurve::Create(2, 5).ok());
  EXPECT_FALSE(MortonCurve::Create(0, 5).ok());
  EXPECT_FALSE(MortonCurve::Create(2, 0).ok());
  EXPECT_FALSE(MortonCurve::Create(8, 9).ok());
}

TEST(MortonTest, Known2DValues) {
  const MortonCurve m = MortonCurve::Create(2, 2).value();
  // Z-order on a 4x4 grid: (0,0)=0, (0,1)=1, (1,0)=2, (1,1)=3, (0,2)=4 ...
  EXPECT_EQ(m.Index({0, 0}), 0u);
  EXPECT_EQ(m.Index({0, 1}), 1u);
  EXPECT_EQ(m.Index({1, 0}), 2u);
  EXPECT_EQ(m.Index({1, 1}), 3u);
  EXPECT_EQ(m.Index({0, 2}), 4u);
  EXPECT_EQ(m.Index({3, 3}), 15u);
}

TEST(MortonTest, BijectiveOn3D) {
  const MortonCurve m = MortonCurve::Create(3, 2).value();
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 4; ++x) {
    for (uint32_t y = 0; y < 4; ++y) {
      for (uint32_t z = 0; z < 4; ++z) {
        const uint64_t idx = m.Index({x, y, z});
        EXPECT_LT(idx, m.num_cells());
        EXPECT_TRUE(seen.insert(idx).second);
        EXPECT_EQ(m.Coords(idx), BucketCoords({x, y, z}));
      }
    }
  }
  EXPECT_EQ(seen.size(), m.num_cells());
}

TEST(MortonTest, RoundTripLarge) {
  const MortonCurve m = MortonCurve::Create(2, 16).value();
  for (uint64_t idx : {uint64_t{0}, uint64_t{987654321},
                       m.num_cells() - 1}) {
    EXPECT_EQ(m.Index(m.Coords(idx)), idx);
  }
}

}  // namespace
}  // namespace griddecl
