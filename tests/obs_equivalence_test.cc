/// Instrumentation-equivalence tests: every subsystem that accepts an
/// observability sink must produce bit-identical primary results with and
/// without one (the "absent registry == true no-op" design rule), and the
/// recorded counters must agree exactly with the result structs they
/// mirror.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/eval/evaluator.h"
#include "griddecl/gridfile/scrub.h"
#include "griddecl/gridfile/storage.h"
#include "griddecl/methods/registry.h"
#include "griddecl/obs/metrics.h"
#include "griddecl/query/generator.h"
#include "griddecl/sim/event_sim.h"
#include "griddecl/sim/throughput.h"

namespace griddecl {
namespace {

uint64_t Value(obs::MetricsRegistry& reg, const std::string& name) {
  return reg.GetCounter(name)->value();
}

void ExpectSameEval(const WorkloadEval& a, const WorkloadEval& b) {
  EXPECT_EQ(a.num_queries, b.num_queries);
  EXPECT_EQ(a.num_optimal, b.num_optimal);
  EXPECT_EQ(a.response.count(), b.response.count());
  EXPECT_EQ(a.response.mean(), b.response.mean());
  EXPECT_EQ(a.response.min(), b.response.min());
  EXPECT_EQ(a.response.max(), b.response.max());
  EXPECT_EQ(a.response.variance(), b.response.variance());
  EXPECT_EQ(a.optimal.mean(), b.optimal.mean());
  EXPECT_EQ(a.ratio.mean(), b.ratio.mean());
  EXPECT_EQ(a.additive_deviation.mean(), b.additive_deviation.mean());
  EXPECT_EQ(a.method_name, b.method_name);
  EXPECT_EQ(a.workload_name, b.workload_name);
}

void ExpectSameThroughput(const ThroughputResult& a,
                          const ThroughputResult& b) {
  EXPECT_EQ(a.total_ms, b.total_ms);
  EXPECT_EQ(a.num_queries, b.num_queries);
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.max_latency_ms, b.max_latency_ms);
  EXPECT_EQ(a.disk_busy_ms, b.disk_busy_ms);
  EXPECT_EQ(a.unavailable_queries, b.unavailable_queries);
  EXPECT_EQ(a.transient_retries, b.transient_retries);
  EXPECT_EQ(a.reconstruction_reads, b.reconstruction_reads);
  EXPECT_EQ(a.rerouted_buckets, b.rerouted_buckets);
}

Workload MakeWorkload(const GridSpec& grid, int n, uint64_t seed) {
  QueryGenerator gen(grid);
  Rng rng(seed);
  return gen.SampledPlacements({4, 4}, n, &rng, "w").value();
}

TEST(ObsEquivalenceTest, EvaluatorSerialBitIdentical) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  const Workload w = MakeWorkload(grid, 400, 1);

  const WorkloadEval plain = Evaluator(*hcam).EvaluateWorkload(w);

  obs::MetricsRegistry reg;
  EvalOptions opts;
  opts.metrics = &reg;
  const WorkloadEval metered = Evaluator(*hcam, opts).EvaluateWorkload(w);

  ExpectSameEval(metered, plain);
  EXPECT_EQ(Value(reg, "eval.queries"), plain.num_queries);
  EXPECT_EQ(Value(reg, "eval.fastpath_queries") +
                Value(reg, "eval.generic_queries"),
            plain.num_queries);
  obs::Histogram* response =
      reg.GetHistogram("eval.response_time", {1.0});
  EXPECT_EQ(response->count(), plain.num_queries);
  EXPECT_EQ(response->max(), plain.response.max());
}

TEST(ObsEquivalenceTest, EvaluatorParallelBitIdenticalAndThreadInvariant) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto fx = CreateMethod("fx", grid, 8).value();
  const Workload w = MakeWorkload(grid, 600, 2);

  std::vector<uint64_t> bucket_totals;
  for (const uint32_t threads : {2u, 4u}) {
    EvalOptions plain_opts;
    plain_opts.num_threads = threads;
    const WorkloadEval plain = Evaluator(*fx, plain_opts).EvaluateWorkload(w);

    obs::MetricsRegistry reg;
    EvalOptions metered_opts = plain_opts;
    metered_opts.metrics = &reg;
    const WorkloadEval metered =
        Evaluator(*fx, metered_opts).EvaluateWorkload(w);

    ExpectSameEval(metered, plain);
    // Shards merge in slice order: totals are thread-count independent.
    EXPECT_EQ(Value(reg, "eval.queries"), plain.num_queries);
    bucket_totals.push_back(Value(reg, "eval.buckets_scanned"));
  }
  EXPECT_EQ(bucket_totals[0], bucket_totals[1]);
  EXPECT_GT(bucket_totals[0], 0u);
}

TEST(ObsEquivalenceTest, ThroughputHealthyBitIdentical) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  const Workload w = MakeWorkload(grid, 80, 3);

  ThroughputOptions opts;
  opts.concurrency = 4;
  const ThroughputResult plain = SimulateThroughput(*hcam, w, opts).value();

  obs::MetricsRegistry reg;
  opts.metrics = &reg;
  const ThroughputResult metered = SimulateThroughput(*hcam, w, opts).value();

  ExpectSameThroughput(metered, plain);
  EXPECT_EQ(Value(reg, "sim.throughput.admitted_queries"),
            plain.num_queries);
  EXPECT_EQ(Value(reg, "sim.throughput.unavailable_queries"), 0u);
  obs::Histogram* latency =
      reg.GetHistogram("sim.throughput.latency", {1.0});
  EXPECT_EQ(latency->count(), plain.num_queries);
  EXPECT_EQ(latency->max(), plain.max_latency_ms);
  // Per-disk request counts sum to the total request count.
  uint64_t per_disk_sum = 0;
  for (uint32_t d = 0; d < 8; ++d) {
    per_disk_sum +=
        Value(reg, "sim.throughput.disk_requests." + std::to_string(d));
  }
  EXPECT_EQ(per_disk_sum, Value(reg, "sim.throughput.requests"));
  EXPECT_GT(per_disk_sum, 0u);
}

TEST(ObsEquivalenceTest, ThroughputDegradedBitIdentical) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto ecc = CreateMethod("ecc", grid, 8).value();
  const Workload w = MakeWorkload(grid, 40, 5);

  FaultSpec spec;
  spec.seed = 7;
  spec.failures = {{2, 0.0}};
  spec.transient_error_prob = 0.1;
  const FaultModel fm = FaultModel::Create(8, spec).value();
  const DegradedPlan plan =
      DegradedPlan::ForEcc(*ecc, fm.terminal_failed()).value();

  ThroughputOptions opts;
  opts.concurrency = 4;
  opts.faults = &fm;
  opts.degraded = &plan;
  const ThroughputResult plain = SimulateThroughput(*ecc, w, opts).value();

  obs::MetricsRegistry reg;
  opts.metrics = &reg;
  const ThroughputResult metered = SimulateThroughput(*ecc, w, opts).value();

  ExpectSameThroughput(metered, plain);
  // Counters mirror the result's availability tallies exactly.
  EXPECT_EQ(Value(reg, "sim.throughput.transient_retries"),
            plain.transient_retries);
  EXPECT_EQ(Value(reg, "sim.throughput.reconstruction_reads"),
            plain.reconstruction_reads);
  EXPECT_EQ(Value(reg, "sim.throughput.rerouted_buckets"),
            plain.rerouted_buckets);
  EXPECT_GT(plain.transient_retries, 0u);
  EXPECT_GT(plain.reconstruction_reads, 0u);
}

TEST(ObsEquivalenceTest, InterleavedDegradedBitIdentical) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 4).value();
  const Workload w = MakeWorkload(grid, 25, 9);

  FaultSpec spec;
  spec.seed = 13;
  spec.transient_error_prob = 0.2;
  const FaultModel fm = FaultModel::Create(4, spec).value();

  ThroughputOptions opts;
  opts.concurrency = 4;
  opts.faults = &fm;
  const ThroughputResult plain = SimulateInterleaved(*hcam, w, opts).value();

  obs::MetricsRegistry reg;
  opts.metrics = &reg;
  const ThroughputResult metered =
      SimulateInterleaved(*hcam, w, opts).value();

  ExpectSameThroughput(metered, plain);
  EXPECT_EQ(Value(reg, "sim.throughput.admitted_queries"),
            plain.num_queries);
  EXPECT_EQ(Value(reg, "sim.throughput.transient_retries"),
            plain.transient_retries);
  EXPECT_GT(plain.transient_retries, 0u);
}

TEST(ObsEquivalenceTest, IoSimulatorBitIdentical) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto dm = CreateMethod("dm", grid, 8).value();
  const RangeQuery q =
      RangeQuery::Create(grid,
                         BucketRect::Create({4, 4}, {19, 19}).value())
          .value();

  const ParallelIoSimulator sim(8, DiskParams{});
  const SimResult plain = sim.RunQuery(*dm, q);

  obs::MetricsRegistry reg;
  ParallelIoSimulator metered_sim(8, DiskParams{});
  metered_sim.set_metrics(&reg);
  const SimResult metered = metered_sim.RunQuery(*dm, q);

  EXPECT_EQ(metered.makespan_ms, plain.makespan_ms);
  ASSERT_EQ(metered.per_disk.size(), plain.per_disk.size());
  for (size_t d = 0; d < plain.per_disk.size(); ++d) {
    EXPECT_EQ(metered.per_disk[d].requests, plain.per_disk[d].requests);
    EXPECT_EQ(metered.per_disk[d].busy_ms, plain.per_disk[d].busy_ms);
  }

  EXPECT_EQ(Value(reg, "sim.io.queries"), 1u);
  EXPECT_EQ(Value(reg, "sim.io.requests"), plain.TotalRequests());
  uint64_t per_disk_sum = 0;
  for (uint32_t d = 0; d < 8; ++d) {
    per_disk_sum += Value(reg, "sim.io.disk_requests." + std::to_string(d));
  }
  EXPECT_EQ(per_disk_sum, plain.TotalRequests());
  obs::Histogram* makespan = reg.GetHistogram("sim.io.makespan", {1.0});
  EXPECT_EQ(makespan->count(), 1u);
  EXPECT_EQ(makespan->max(), plain.makespan_ms);
}

// --- Storage / scrub -------------------------------------------------------

GridFile MakeGridFile(int num_records, uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {8, 8}).value();
  Rng rng(seed);
  for (int i = 0; i < num_records; ++i) {
    EXPECT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  return f;
}

TEST(ObsEquivalenceTest, StorageSerializeBitIdenticalAndCountersMatch) {
  const GridFile f = MakeGridFile(100, 11);
  SaveOptions plain_opts;
  plain_opts.page_size_bytes = 256;
  const std::string plain = SerializeGridFile(f, plain_opts).value();

  obs::MetricsRegistry reg;
  SaveOptions metered_opts = plain_opts;
  metered_opts.metrics = &reg;
  EXPECT_EQ(SerializeGridFile(f, metered_opts).value(), plain);

  EXPECT_EQ(Value(reg, "storage.saves"), 1u);
  EXPECT_EQ(Value(reg, "storage.bytes_written"), plain.size());
  EXPECT_GT(Value(reg, "storage.pages_written"), 1u);
}

TEST(ObsEquivalenceTest, StorageBestEffortLoadMirrorsReport) {
  const GridFile f = MakeGridFile(100, 11);
  SaveOptions save;
  save.page_size_bytes = 256;
  std::string bytes = SerializeGridFile(f, save).value();
  const FileLayout layout = ParseFileLayout(bytes).value();
  bytes[layout.PageOffset(1) + 20] ^= 0x55;  // damage one page

  LoadOptions plain_opts;
  plain_opts.policy = SalvageReadPolicy();
  LoadReport plain_report;
  const GridFile plain =
      ParseGridFile(bytes, plain_opts, &plain_report).value();

  obs::MetricsRegistry reg;
  LoadOptions metered_opts = plain_opts;
  metered_opts.metrics = &reg;
  LoadReport metered_report;
  const GridFile metered =
      ParseGridFile(bytes, metered_opts, &metered_report).value();

  EXPECT_EQ(metered.num_records(), plain.num_records());
  EXPECT_EQ(metered_report.damaged_page_count,
            plain_report.damaged_page_count);
  EXPECT_EQ(metered_report.records_loaded, plain_report.records_loaded);
  EXPECT_EQ(metered_report.records_lost, plain_report.records_lost);

  EXPECT_EQ(Value(reg, "storage.loads"), 1u);
  EXPECT_EQ(Value(reg, "storage.pages_read"), plain_report.num_pages);
  EXPECT_EQ(Value(reg, "storage.pages_damaged"),
            plain_report.damaged_page_count);
  EXPECT_EQ(Value(reg, "storage.records_loaded"),
            plain_report.records_loaded);
  EXPECT_EQ(Value(reg, "storage.records_lost"), plain_report.records_lost);
  EXPECT_GT(plain_report.damaged_page_count, 0u);
  EXPECT_GT(plain_report.records_lost, 0u);
}

/// One-relation catalog saved with mirror redundancy, one page damaged —
/// deterministic, so two identically built envs corrupt identically.
MemEnv MakeDamagedMirrorEnv() {
  Catalog catalog(4);
  EXPECT_TRUE(catalog
                  .AddRelation("r", DeclusteredFile::Create(
                                        MakeGridFile(120, 50), "dm", 4)
                                        .value())
                  .ok());
  MemEnv env;
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy.policy = RelationRedundancy::Policy::kMirror;
  options.default_redundancy.copies = 2;
  EXPECT_TRUE(SaveCatalogManifest(catalog, &env, options).ok());

  const CatalogManifest m = ReadCurrentManifest(env).value();
  const std::string bytes = env.ReadFile(m.DataFileName(0)).value();
  const FileLayout layout = ParseFileLayout(bytes).value();
  EXPECT_TRUE(env.CorruptByte(m.DataFileName(0),
                              layout.PageOffset(3) + 21, 0xFF).ok());
  return env;
}

TEST(ObsEquivalenceTest, ScrubBitIdenticalAndCountersMirrorReport) {
  MemEnv plain_env = MakeDamagedMirrorEnv();
  const ScrubReport plain = ScrubCatalog(&plain_env).value();

  MemEnv metered_env = MakeDamagedMirrorEnv();
  obs::MetricsRegistry reg;
  ScrubOptions opts;
  opts.metrics = &reg;
  const ScrubReport metered = ScrubCatalog(&metered_env, opts).value();

  EXPECT_EQ(metered.relations_scanned, plain.relations_scanned);
  EXPECT_EQ(metered.relations_repaired, plain.relations_repaired);
  EXPECT_EQ(metered.pages_scanned, plain.pages_scanned);
  EXPECT_EQ(metered.pages_repaired, plain.pages_repaired);
  EXPECT_EQ(metered.pages_unrepairable, plain.pages_unrepairable);
  EXPECT_EQ(metered.Clean(), plain.Clean());
  ASSERT_EQ(metered.relations.size(), plain.relations.size());
  EXPECT_EQ(metered.relations[0].pages_repaired_mirror,
            plain.relations[0].pages_repaired_mirror);

  EXPECT_EQ(Value(reg, "scrub.pages_scanned"), plain.pages_scanned);
  EXPECT_EQ(Value(reg, "scrub.relations_scanned"), plain.relations_scanned);
  EXPECT_EQ(Value(reg, "scrub.relations_repaired"),
            plain.relations_repaired);
  EXPECT_EQ(Value(reg, "scrub.repairs.mirror"),
            plain.relations[0].pages_repaired_mirror);
  EXPECT_EQ(Value(reg, "scrub.repairs.parity"), 0u);
  EXPECT_EQ(Value(reg, "scrub.pages_unrepairable"), 0u);
  // The repair really happened and was mirror-sourced.
  EXPECT_GT(plain.relations[0].pages_repaired_mirror, 0u);
  EXPECT_EQ(plain.relations[0].pages_repaired,
            plain.relations[0].pages_repaired_mirror +
                plain.relations[0].pages_repaired_parity);
}

TEST(ObsEquivalenceTest, ManifestSaveRecordsCommittedGeneration) {
  Catalog catalog(4);
  ASSERT_TRUE(catalog
                  .AddRelation("r", DeclusteredFile::Create(
                                        MakeGridFile(40, 3), "dm", 4)
                                        .value())
                  .ok());
  MemEnv env;
  obs::MetricsRegistry reg;
  ManifestSaveOptions options;
  options.metrics = &reg;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env, options).ok());

  EXPECT_EQ(Value(reg, "manifest.generations_committed"), 1u);
  EXPECT_GT(Value(reg, "manifest.files_written"), 0u);
  EXPECT_GT(Value(reg, "manifest.bytes_written"), 0u);
}

}  // namespace
}  // namespace griddecl
