#include "griddecl/obs/metrics.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace griddecl::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, HasValueOnlyAfterSet) {
  Gauge g;
  EXPECT_FALSE(g.has_value());
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  EXPECT_TRUE(g.has_value());
  EXPECT_EQ(g.value(), 3.5);
  g.Set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
}

TEST(HistogramTest, BucketAssignmentInclusiveUpperEdges) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  // Bound values land in the bucket they bound (inclusive upper edge).
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0 (== bound)
  h.Observe(1.5);   // bucket 1
  h.Observe(3.0);   // bucket 2
  h.Observe(3.0);   // bucket 2
  h.Observe(5.0);   // bucket 3
  h.Observe(7.0);   // bucket 3
  h.Observe(9.0);   // overflow
  h.Observe(20.0);  // overflow

  EXPECT_EQ(h.count(), 9u);
  EXPECT_DOUBLE_EQ(h.sum(), 50.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 20.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.bucket_count(4), 2u);  // overflow bucket
}

TEST(HistogramTest, NearestRankPercentiles) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 3.0, 5.0, 7.0, 9.0, 20.0}) {
    h.Observe(v);
  }
  // count = 9; rank = max(1, ceil(p/100 * 9)).
  // p0  -> rank 1 -> bucket 0 -> bound 1.0
  // p50 -> rank 5 -> bucket 2 (cumulative 2,3,5) -> bound 4.0
  // p95 -> rank 9 -> overflow bucket -> exact max
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.p50(), 4.0);
  EXPECT_DOUBLE_EQ(h.p95(), 20.0);
  EXPECT_DOUBLE_EQ(h.p99(), 20.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), h.max());
}

TEST(HistogramTest, PercentileClampsToObservedMax) {
  // The single observation sits in the (2, 4] bucket, but the answer must
  // be the exact max, not the bucket's upper bound.
  Histogram h({1.0, 2.0, 4.0, 8.0});
  h.Observe(3.0);
  EXPECT_DOUBLE_EQ(h.p50(), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 3.0);
}

TEST(HistogramTest, AllOverflowStillAnswersWithMax) {
  Histogram h({1.0});
  h.Observe(10.0);
  h.Observe(30.0);
  EXPECT_DOUBLE_EQ(h.p50(), 30.0);
  EXPECT_DOUBLE_EQ(h.p99(), 30.0);
}

TEST(HistogramTest, EmptyHistogramReturnsZeros) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.0);
}

TEST(HistogramTest, MergeAddsBucketsAndTracksExtremes) {
  Histogram a({1.0, 2.0, 4.0});
  Histogram b({1.0, 2.0, 4.0});
  a.Observe(0.5);
  a.Observe(3.0);
  b.Observe(1.5);
  b.Observe(10.0);

  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 15.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_EQ(a.bucket_count(0), 1u);  // 0.5
  EXPECT_EQ(a.bucket_count(1), 1u);  // 1.5
  EXPECT_EQ(a.bucket_count(2), 1u);  // 3.0
  EXPECT_EQ(a.bucket_count(3), 1u);  // 10.0 (overflow)
}

TEST(HistogramTest, MergeIntoEmptyAdoptsOtherExtremes) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  b.Observe(1.5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 1.5);
  EXPECT_DOUBLE_EQ(a.max(), 1.5);
  // Merging an empty histogram changes nothing.
  Histogram empty({1.0, 2.0});
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 1.5);
}

TEST(BoundsTest, ExponentialAndLinearEdges) {
  EXPECT_EQ(ExponentialBounds(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(LinearBounds(10.0, 5.0, 3),
            (std::vector<double>{10.0, 15.0, 20.0}));
  const std::vector<double> latency = DefaultLatencyBoundsMs();
  ASSERT_EQ(latency.size(), 24u);
  EXPECT_DOUBLE_EQ(latency.front(), 0.001);
  for (size_t i = 1; i < latency.size(); ++i) {
    EXPECT_DOUBLE_EQ(latency[i], latency[i - 1] * 2.0);
  }
}

TEST(RegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("a.count");
  EXPECT_EQ(reg.GetCounter("a.count"), c);
  Histogram* h = reg.GetHistogram("a.hist", {1.0, 2.0});
  EXPECT_EQ(reg.GetHistogram("a.hist", {99.0}), h);  // bounds kept
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0, 2.0}));
  Gauge* g = reg.GetGauge("a.gauge");
  EXPECT_EQ(reg.GetGauge("a.gauge"), g);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(RegistryTest, JsonIndependentOfCreationOrder) {
  auto fill = [](MetricsRegistry& reg, bool reversed) {
    const std::vector<std::string> counters = {"b.count", "a.count",
                                               "c.count"};
    for (size_t i = 0; i < counters.size(); ++i) {
      const std::string& name =
          reversed ? counters[counters.size() - 1 - i] : counters[i];
      reg.GetCounter(name)->Inc(7);
    }
    reg.GetGauge("z.gauge")->Set(2.25);
    reg.GetHistogram("m.hist", {1.0, 4.0})->Observe(3.0);
  };
  MetricsRegistry forward;
  MetricsRegistry backward;
  fill(forward, false);
  fill(backward, true);
  EXPECT_EQ(forward.ToJson(), backward.ToJson());
}

TEST(RegistryTest, JsonDropsTimingKeysOnRequest) {
  MetricsRegistry reg;
  reg.GetCounter("eval.queries")->Inc(5);
  reg.GetCounter("eval.elapsed_ms")->Inc(123);
  reg.GetGauge("build.wall_ms")->Set(9.5);
  reg.GetHistogram("eval.latency_ms", {1.0})->Observe(0.5);
  reg.GetHistogram("sim.latency", {1.0})->Observe(0.5);

  const std::string with = reg.ToJson();
  EXPECT_NE(with.find("eval.elapsed_ms"), std::string::npos);

  JsonOptions opts;
  opts.include_timings = false;
  const std::string without = reg.ToJson(opts);
  EXPECT_NE(without.find("eval.queries"), std::string::npos);
  EXPECT_NE(without.find("sim.latency"), std::string::npos);
  EXPECT_EQ(without.find("eval.elapsed_ms"), std::string::npos);
  EXPECT_EQ(without.find("build.wall_ms"), std::string::npos);
  EXPECT_EQ(without.find("eval.latency_ms"), std::string::npos);
}

TEST(RegistryTest, JsonIndentPrefixesEveryLine) {
  MetricsRegistry reg;
  reg.GetCounter("a")->Inc();
  JsonOptions opts;
  opts.indent = "    ";
  const std::string json = reg.ToJson(opts);
  EXPECT_EQ(json.rfind("    {", 0), 0u);
  EXPECT_EQ(json.find("\n{"), std::string::npos);
}

TEST(RegistryTest, UnsetGaugesAreOmittedFromJson) {
  MetricsRegistry reg;
  reg.GetGauge("never.set");
  EXPECT_EQ(reg.ToJson().find("never.set"), std::string::npos);
}

TEST(RegistryTest, MergeAddsCountersOverwritesGaugesMergesHistograms) {
  MetricsRegistry main;
  MetricsRegistry shard;
  main.GetCounter("shared")->Inc(2);
  shard.GetCounter("shared")->Inc(3);
  shard.GetCounter("only.shard")->Inc(4);
  main.GetGauge("g")->Set(1.0);
  shard.GetGauge("g")->Set(2.0);
  shard.GetGauge("unset");  // never Set -> must not clobber or appear
  main.GetHistogram("h", {1.0, 2.0})->Observe(0.5);
  shard.GetHistogram("h", {1.0, 2.0})->Observe(1.5);
  shard.GetHistogram("shard.h", {4.0})->Observe(3.0);

  main.Merge(shard);
  EXPECT_EQ(main.GetCounter("shared")->value(), 5u);
  EXPECT_EQ(main.GetCounter("only.shard")->value(), 4u);
  EXPECT_EQ(main.GetGauge("g")->value(), 2.0);
  EXPECT_FALSE(main.GetGauge("unset")->has_value());
  Histogram* h = main.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->max(), 1.5);
  // Histogram absent in main is created with the shard's bounds.
  Histogram* created = main.GetHistogram("shard.h", {});
  EXPECT_EQ(created->bounds(), (std::vector<double>{4.0}));
  EXPECT_EQ(created->count(), 1u);
}

TEST(RegistryTest, ShardMergeMatchesSingleRegistry) {
  // The sharded threading model: per-worker registries merged afterwards
  // must equal one registry that saw every update.
  MetricsRegistry single;
  MetricsRegistry merged;
  std::vector<std::unique_ptr<MetricsRegistry>> shards;
  for (int s = 0; s < 3; ++s) {
    shards.push_back(std::make_unique<MetricsRegistry>());
  }
  for (int i = 0; i < 30; ++i) {
    MetricsRegistry& shard = *shards[static_cast<size_t>(i % 3)];
    shard.GetCounter("work.items")->Inc();
    shard.GetHistogram("work.cost", {1.0, 10.0, 100.0})->Observe(i * 1.5);
    single.GetCounter("work.items")->Inc();
    single.GetHistogram("work.cost", {1.0, 10.0, 100.0})->Observe(i * 1.5);
  }
  for (const auto& shard : shards) merged.Merge(*shard);
  EXPECT_EQ(merged.ToJson(), single.ToJson());
}

TEST(NullSafeHelpersTest, NullRegistryYieldsNullMetrics) {
  MetricsRegistry* none = nullptr;
  Counter* c = GetCounter(none, "x");
  Gauge* g = GetGauge(none, "x");
  Histogram* h = GetHistogram(none, "x", {1.0});
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(g, nullptr);
  EXPECT_EQ(h, nullptr);
  // All helpers are no-ops on null — must not crash.
  Inc(c);
  Inc(c, 10);
  Set(g, 1.0);
  Observe(h, 1.0);
}

TEST(NullSafeHelpersTest, NonNullRegistryRoutesThrough) {
  MetricsRegistry reg;
  Inc(GetCounter(&reg, "c"), 3);
  Set(GetGauge(&reg, "g"), 4.0);
  Observe(GetHistogram(&reg, "h", {10.0}), 2.0);
  EXPECT_EQ(reg.GetCounter("c")->value(), 3u);
  EXPECT_EQ(reg.GetGauge("g")->value(), 4.0);
  EXPECT_EQ(reg.GetHistogram("h", {10.0})->count(), 1u);
}

TEST(ScopedTimerTest, RecordsElapsedIntoSink) {
  Histogram sink(DefaultLatencyBoundsMs());
  {
    ScopedTimer timer(&sink);
  }
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_GE(sink.max(), 0.0);
}

TEST(ScopedTimerTest, NullSinkIsNoOp) {
  ScopedTimer timer(nullptr);  // must not crash or read the clock
}

TEST(MetricsResetTest, ResetReturnsInstrumentsToTheirEmptyState) {
  // Reset is what lets a publisher re-export absolute totals into a
  // long-lived registry on every snapshot without double-counting.
  Counter c;
  c.Inc(5);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
  c.Inc(2);
  EXPECT_EQ(c.value(), 2u);

  Gauge g;
  g.Set(3.5);
  ASSERT_TRUE(g.has_value());
  g.Reset();
  EXPECT_FALSE(g.has_value());
  EXPECT_EQ(g.value(), 0.0);

  Histogram h(DefaultLatencyBoundsMs());
  h.Observe(1.0);
  h.Observe(2.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  // Bounds survive, so the histogram keeps observing (and merging).
  h.Observe(4.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 4.0);
  Histogram other(DefaultLatencyBoundsMs());
  other.Observe(8.0);
  h.Merge(other);
  EXPECT_EQ(h.count(), 2u);
}

}  // namespace
}  // namespace griddecl::obs
