#include "griddecl/gridfile/page_store.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/gridfile/faulty_env.h"
#include "griddecl/gridfile/storage_env.h"

namespace griddecl {
namespace {

GridFile MakeFile(int num_records, uint64_t seed) {
  Schema schema =
      Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {4, 4}).value();
  Rng rng(seed);
  for (int i = 0; i < num_records; ++i) {
    EXPECT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  return f;
}

/// Writes a v3 file of `num_records` into `env` as `name`; returns its
/// layout. 168-byte pages -> capacity 8.
FileLayout WriteRelation(StorageEnv* env, const std::string& name,
                         int num_records, uint64_t seed = 1) {
  SaveOptions save;
  save.page_size_bytes = 168;
  const std::string bytes =
      SerializeGridFile(MakeFile(num_records, seed), save).value();
  EXPECT_TRUE(env->WriteFile(name, bytes).ok());
  return ParseFileLayout(bytes).value();
}

TEST(PageStoreTest, GetPageDecodesAndCaches) {
  MemEnv env;
  PageStore store(&env, {});
  const FileLayout layout = WriteRelation(&env, "rel", 64);
  store.RegisterFile("rel", layout);

  PageReadStats stats;
  const PinnedPage first =
      store.GetPage("rel", 0, ReadPolicy{}, &stats).value();
  ASSERT_TRUE(first.valid());
  EXPECT_FALSE(first.damaged());
  EXPECT_FALSE(stats.cache_hit);
  EXPECT_EQ(stats.physical_reads, 1u);
  EXPECT_EQ(first.decoded().num_records, layout.PageRecords(0));
  EXPECT_EQ(first.decoded().num_attrs, 2u);
  EXPECT_EQ(first.raw().size(), layout.page_size_bytes);

  PageReadStats again;
  const PinnedPage second =
      store.GetPage("rel", 0, ReadPolicy{}, &again).value();
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.physical_reads, 0u);
  // Same shared frame: the decoded columns are reused, not re-decoded.
  EXPECT_EQ(&second.decoded(), &first.decoded());
  EXPECT_EQ(store.PoolStats().hits, 1u);
}

TEST(PageStoreTest, UnknownFileAndPageOutOfRange) {
  MemEnv env;
  PageStore store(&env, {});
  EXPECT_EQ(store.GetPage("nope", 0, ReadPolicy{}).status().code(),
            StatusCode::kNotFound);
  const FileLayout layout = WriteRelation(&env, "rel", 16);
  store.RegisterFile("rel", layout);
  EXPECT_FALSE(store.GetPage("rel", layout.num_pages, ReadPolicy{}).ok());
}

TEST(PageStoreTest, DamagedPageFailsOrReportsPerPolicy) {
  MemEnv env;
  PageStore store(&env, {});
  const FileLayout layout = WriteRelation(&env, "rel", 64);
  store.RegisterFile("rel", layout);
  ASSERT_TRUE(
      env.CorruptByte("rel", layout.PageOffset(2) + 50, 0xFF).ok());

  // kFail: kUnavailable so resilience (failover/rebuild) can engage.
  const Status failed =
      store.GetPage("rel", 2, ReadPolicy{}).status();
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);

  // kReport: damage comes back as data; the page is never pooled.
  ReadPolicy report = ScrubReadPolicy();
  const PinnedPage page = store.GetPage("rel", 2, report).value();
  EXPECT_TRUE(page.damaged());
  EXPECT_FALSE(page.damage_reason().empty());
  EXPECT_EQ(page.raw().size(), layout.page_size_bytes);
  PageReadStats stats;
  (void)store.GetPage("rel", 2, report, &stats).value();
  EXPECT_FALSE(stats.cache_hit);
}

TEST(PageStoreTest, VerificationHappensOnceAtAdmission) {
  // A page verified at admission is served from cache without
  // re-verification: damage written to the env afterwards is invisible
  // until the cached frame is invalidated.
  MemEnv env;
  PageStore store(&env, {});
  const FileLayout layout = WriteRelation(&env, "rel", 64);
  store.RegisterFile("rel", layout);
  ASSERT_TRUE(store.GetPage("rel", 1, ReadPolicy{}).ok());
  ASSERT_TRUE(
      env.CorruptByte("rel", layout.PageOffset(1) + 30, 0xAA).ok());
  EXPECT_TRUE(store.GetPage("rel", 1, ReadPolicy{}).ok());
  store.Invalidate("rel");
  EXPECT_EQ(store.GetPage("rel", 1, ReadPolicy{}).status().code(),
            StatusCode::kUnavailable);
}

TEST(PageStoreTest, BypassPolicyNeverPools) {
  MemEnv env;
  PageStore store(&env, {});
  const FileLayout layout = WriteRelation(&env, "rel", 64);
  store.RegisterFile("rel", layout);
  ReadPolicy bypass;
  bypass.pin = ReadPolicy::Pin::kBypass;
  ASSERT_TRUE(store.GetPage("rel", 0, bypass).ok());
  PageReadStats stats;
  ASSERT_TRUE(store.GetPage("rel", 0, bypass, &stats).ok());
  EXPECT_FALSE(stats.cache_hit);
  EXPECT_EQ(store.PoolStats().admissions, 0u);
}

TEST(PageStoreTest, ZeroPoolPagesDisablesCaching) {
  MemEnv env;
  PageStore::Options options;
  options.pool_pages = 0;
  PageStore store(&env, options);
  const FileLayout layout = WriteRelation(&env, "rel", 64);
  store.RegisterFile("rel", layout);
  for (int i = 0; i < 3; ++i) {
    PageReadStats stats;
    ASSERT_TRUE(store.GetPage("rel", 0, ReadPolicy{}, &stats).ok());
    EXPECT_FALSE(stats.cache_hit);
    EXPECT_EQ(stats.physical_reads, 1u);
  }
}

TEST(PageStoreTest, RetriesTransientFaultsDeterministically) {
  MemEnv env;
  const FileLayout layout = WriteRelation(&env, "rel", 64);
  FaultyEnvOptions fault;
  fault.transient_error_prob = 1.0;
  fault.max_transient_attempts = 2;
  auto faulty = FaultyEnv::Create(&env, fault).value();
  PageStore store(faulty.get(), {});
  store.RegisterFile("rel", layout);

  ReadPolicy policy = ServeReadPolicy();  // 4 attempts, short backoff.
  policy.retry.base_ms = 0.01;
  policy.retry.cap_ms = 0.05;
  PageReadStats stats;
  const PinnedPage page =
      store.GetPage("rel", 0, policy, &stats).value();
  EXPECT_TRUE(page.valid());
  EXPECT_EQ(stats.retries, 2u);  // Attempts 1 and 2 fail, 3 succeeds.
  EXPECT_EQ(stats.physical_reads, 1u);

  // Exhausting the budget surfaces the transient as kUnavailable.
  ReadPolicy one_shot = policy;
  one_shot.retry.max_attempts = 1;
  store.Invalidate("rel");
  EXPECT_EQ(store.GetPage("rel", 1, one_shot).status().code(),
            StatusCode::kUnavailable);
}

TEST(PageStoreTest, InterruptAbortsWithCallerStatus) {
  MemEnv env;
  PageStore store(&env, {});
  const FileLayout layout = WriteRelation(&env, "rel", 64);
  store.RegisterFile("rel", layout);
  const InterruptFn interrupt = [] {
    return Status::DeadlineExceeded("deadline expired before read");
  };
  const Status aborted =
      store.GetPage("rel", 0, ReadPolicy{}, nullptr, interrupt).status();
  EXPECT_EQ(aborted.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(aborted.message(), "deadline expired before read");
}

TEST(PageStoreTest, ReadRawMatchesEnvBytes) {
  MemEnv env;
  PageStore store(&env, {});
  const FileLayout layout = WriteRelation(&env, "rel", 64);
  const std::string direct =
      env.ReadAt("rel", layout.PageOffset(0), layout.page_size_bytes)
          .value();
  const std::string raw =
      store
          .ReadRaw("rel", layout.PageOffset(0), layout.page_size_bytes,
                   ReadPolicy{})
          .value();
  EXPECT_EQ(raw, direct);
}

TEST(PageStoreTest, AdmitReconstructedPoolsVerifiedBytes) {
  MemEnv env;
  PageStore store(&env, {});
  const FileLayout layout = WriteRelation(&env, "rel", 64);
  store.RegisterFile("rel", layout);
  const std::string page_bytes =
      env.ReadAt("rel", layout.PageOffset(3), layout.page_size_bytes)
          .value();

  const PinnedPage page =
      store.AdmitReconstructed("rel", 3, std::string(page_bytes)).value();
  EXPECT_TRUE(page.valid());
  // Later readers hit the pool instead of rebuilding.
  PageReadStats stats;
  ASSERT_TRUE(store.GetPage("rel", 3, ReadPolicy{}, &stats).ok());
  EXPECT_TRUE(stats.cache_hit);

  // Garbage is rejected, never pooled.
  std::string garbage(layout.page_size_bytes, '\x5a');
  EXPECT_FALSE(store.AdmitReconstructed("rel", 4, garbage).ok());
}

TEST(PageStoreTest, PublishMetricsEmitsAbsoluteTotals) {
  MemEnv env;
  PageStore store(&env, {});
  const FileLayout layout = WriteRelation(&env, "rel", 64);
  store.RegisterFile("rel", layout);
  ASSERT_TRUE(store.GetPage("rel", 0, ReadPolicy{}).ok());
  ASSERT_TRUE(store.GetPage("rel", 0, ReadPolicy{}).ok());

  obs::MetricsRegistry reg;
  store.PublishMetrics(&reg);
  store.PublishMetrics(&reg);  // Re-publishing must not double-count.
  EXPECT_EQ(reg.GetCounter("storage.pool.hits")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("storage.pool.misses")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("storage.pool.admissions")->value(), 1u);
}

}  // namespace
}  // namespace griddecl
