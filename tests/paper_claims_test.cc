#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "griddecl/griddecl.h"

namespace griddecl {
namespace {

/// These tests pin the paper's qualitative findings (Himatsingka &
/// Srivastava, ICDE'94, Section 5) as executable assertions. Default
/// configuration: a 64x64 two-attribute grid (database comfortably larger
/// than the largest query, as in the paper), M = 16 disks, averaging over
/// all (or up to 4096) placements of each query shape.
class PaperClaimsTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDisks = 16;

  static SweepResult SizeSweep(const std::vector<uint64_t>& areas) {
    const GridSpec grid = GridSpec::Create({64, 64}).value();
    SweepOptions opts;
    opts.max_placements = 4096;
    return QuerySizeSweep(grid, kDisks, areas, opts).value();
  }
};

/// Finding (i): "for large queries all methods perform almost the same and
/// are close to optimal".
TEST_F(PaperClaimsTest, LargeQueriesAllMethodsNearOptimal) {
  const SweepResult r = SizeSweep({256, 576, 1024});
  for (const SweepPoint& p : r.points) {
    for (size_t m = 0; m < r.method_names.size(); ++m) {
      EXPECT_LT(p.mean_ratio[m], 1.15)
          << r.method_names[m] << " at area " << p.x;
    }
    // "Almost the same": across-method spread below 15% of optimal.
    const double lo = *std::min_element(p.mean_response.begin(),
                                        p.mean_response.end());
    const double hi = *std::max_element(p.mean_response.begin(),
                                        p.mean_response.end());
    EXPECT_LT((hi - lo) / p.mean_optimal, 0.15) << "area " << p.x;
  }
}

/// Finding (ii): "there can be a substantial difference for small queries".
/// Consistent with [11]: ECC and HCAM best, DM/CMD worst on small squares.
TEST_F(PaperClaimsTest, SmallQueriesDifferSubstantially) {
  const SweepResult r = SizeSweep({4, 9, 16});
  const int dm = r.MethodIndex("DM/CMD");
  const int ecc = r.MethodIndex("ECC");
  const int hcam = r.MethodIndex("HCAM");
  ASSERT_GE(dm, 0);
  ASSERT_GE(ecc, 0);
  ASSERT_GE(hcam, 0);
  for (const SweepPoint& p : r.points) {
    // DM/CMD is the weakest on small near-square queries.
    EXPECT_GT(p.mean_response[dm], p.mean_response[ecc]) << "area " << p.x;
    EXPECT_GT(p.mean_response[dm], p.mean_response[hcam]) << "area " << p.x;
  }
  // "Substantial": at area 16 (= M) the DM-to-best gap exceeds 25% of the
  // optimal cost.
  const SweepPoint& p16 = r.points[2];
  const double best =
      std::min(p16.mean_response[ecc], p16.mean_response[hcam]);
  EXPECT_GT((p16.mean_response[dm] - best) / p16.mean_optimal, 0.25);
}

/// Finding (iii): "performance of the methods is quite sensitive to query
/// shape". DM is exactly optimal on 1 x 16 lines yet far from optimal on
/// 4x4 squares of the same area.
TEST_F(PaperClaimsTest, ShapeSensitivity) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  SweepOptions opts;
  opts.max_placements = 4096;
  const SweepResult r =
      QueryShapeSweep(grid, kDisks, /*area=*/16, {1.0, 4.0, 16.0}, opts)
          .value();
  const int dm = r.MethodIndex("DM/CMD");
  ASSERT_GE(dm, 0);
  // aspect 16 => 1x16 line along dimension 1: DM is strictly optimal there.
  EXPECT_NEAR(r.points[2].mean_ratio[dm], 1.0, 1e-9);
  // aspect 1 => 4x4 square: DM is far from optimal.
  EXPECT_GT(r.points[0].mean_ratio[dm], 1.25);
  // And the shape effect is not DM-specific: for every method the best and
  // worst aspect differ measurably at equal area.
  for (size_t m = 0; m < r.method_names.size(); ++m) {
    double lo = 1e9;
    double hi = 0;
    for (const SweepPoint& p : r.points) {
      lo = std::min(lo, p.mean_ratio[m]);
      hi = std::max(hi, p.mean_ratio[m]);
    }
    EXPECT_GT(hi - lo, 0.02) << r.method_names[m];
  }
}

/// Finding (iv): deviation from optimality decreases with the number of
/// attributes in a query. Same side length (8 buckets per dimension), 2-d
/// vs 3-d: the 3-d deviation ratio is smaller.
TEST_F(PaperClaimsTest, MoreAttributesShrinkDeviation) {
  SweepOptions opts;
  opts.max_placements = 2048;
  opts.seed = 5;
  const GridSpec g2 = GridSpec::Create({64, 64}).value();
  const GridSpec g3 = GridSpec::Create({16, 16, 16}).value();
  // Side 8: area 64 in 2-d, volume 512 in 3-d.
  const SweepResult r2 = QuerySizeSweep(g2, kDisks, {64}, opts).value();
  const SweepResult r3 = QuerySizeSweep(g3, kDisks, {512}, opts).value();
  auto mean_ratio = [](const SweepPoint& p) {
    double s = 0;
    for (double x : p.mean_ratio) s += x;
    return s / static_cast<double>(p.mean_ratio.size());
  };
  EXPECT_LT(mean_ratio(r3.points[0]), mean_ratio(r2.points[0]));
}

/// Figure 5(a): small queries across disk counts — DM/CMD uniformly worst,
/// HCAM the best performer almost everywhere.
TEST_F(PaperClaimsTest, DiskSweepSmallQueries) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  SweepOptions opts;
  opts.max_placements = 4096;
  const SweepResult r =
      DiskCountSweep(grid, {8, 16, 32}, /*area=*/9, opts).value();
  const int dm = r.MethodIndex("DM/CMD");
  const int hcam = r.MethodIndex("HCAM");
  ASSERT_GE(dm, 0);
  ASSERT_GE(hcam, 0);
  for (const SweepPoint& p : r.points) {
    for (size_t m = 0; m < r.method_names.size(); ++m) {
      if (static_cast<int>(m) == dm || std::isnan(p.mean_response[m])) {
        continue;
      }
      EXPECT_GE(p.mean_response[dm], p.mean_response[m])
          << r.method_names[m] << " at M=" << p.x;
    }
  }
}

/// Figure 5(b): large queries across disk counts — the picture flips:
/// DM/CMD and FX beat HCAM, and FX is the best performer.
TEST_F(PaperClaimsTest, DiskSweepLargeQueries) {
  const GridSpec grid = GridSpec::Create({64, 64}).value();
  SweepOptions opts;
  opts.max_placements = 4096;
  const SweepResult r =
      DiskCountSweep(grid, {16, 32}, /*area=*/1024, opts).value();
  const int dm = r.MethodIndex("DM/CMD");
  const int fx = r.MethodIndex("FX");
  const int hcam = r.MethodIndex("HCAM");
  ASSERT_GE(dm, 0);
  ASSERT_GE(fx, 0);
  ASSERT_GE(hcam, 0);
  for (const SweepPoint& p : r.points) {
    EXPECT_LE(p.mean_response[fx], p.mean_response[hcam]) << "M=" << p.x;
    EXPECT_LE(p.mean_response[dm], p.mean_response[hcam]) << "M=" << p.x;
    // FX consistently the best of all methods present.
    for (size_t m = 0; m < r.method_names.size(); ++m) {
      if (std::isnan(p.mean_response[m])) continue;
      EXPECT_LE(p.mean_response[fx], p.mean_response[m] + 1e-9)
          << r.method_names[m] << " at M=" << p.x;
    }
  }
}

}  // namespace
}  // namespace griddecl
