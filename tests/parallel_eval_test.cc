#include "griddecl/eval/parallel.h"

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/methods/registry.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

TEST(ParallelEvalTest, MatchesSerialExactlyOnCounters) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w = gen.SampledPlacements({4, 4}, 500, &rng, "w").value();
  const WorkloadEval serial = Evaluator(*hcam).EvaluateWorkload(w);
  for (uint32_t threads : {2u, 3u, 8u}) {
    const WorkloadEval par = ParallelEvaluateWorkload(*hcam, w, threads);
    EXPECT_EQ(par.num_queries, serial.num_queries) << threads;
    EXPECT_EQ(par.num_optimal, serial.num_optimal) << threads;
    EXPECT_EQ(par.response.max(), serial.response.max()) << threads;
    EXPECT_EQ(par.response.min(), serial.response.min()) << threads;
    EXPECT_NEAR(par.MeanResponse(), serial.MeanResponse(), 1e-9) << threads;
    EXPECT_NEAR(par.MeanRatio(), serial.MeanRatio(), 1e-9) << threads;
    EXPECT_NEAR(par.response.variance(), serial.response.variance(), 1e-6)
        << threads;
    EXPECT_EQ(par.method_name, serial.method_name);
    EXPECT_EQ(par.workload_name, serial.workload_name);
  }
}

TEST(ParallelEvalTest, SmallWorkloadFallsBackToSerial) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({15, 15}, "tiny").value();  // 4 queries.
  const WorkloadEval serial = Evaluator(*dm).EvaluateWorkload(w);
  const WorkloadEval par = ParallelEvaluateWorkload(*dm, w, 8);
  EXPECT_EQ(par.num_queries, serial.num_queries);
  EXPECT_DOUBLE_EQ(par.MeanResponse(), serial.MeanResponse());
}

TEST(ParallelEvalTest, DefaultThreadCountWorks) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto fx = CreateMethod("fx", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(2);
  const Workload w = gen.SampledPlacements({3, 3}, 300, &rng, "w").value();
  const WorkloadEval par = ParallelEvaluateWorkload(*fx, w);
  EXPECT_EQ(par.num_queries, 300u);
}

TEST(ParallelEvalTest, EmptyWorkload) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  Workload empty;
  const WorkloadEval par = ParallelEvaluateWorkload(*dm, empty, 4);
  EXPECT_EQ(par.num_queries, 0u);
  EXPECT_DOUBLE_EQ(par.FractionOptimal(), 1.0);
}

}  // namespace
}  // namespace griddecl
