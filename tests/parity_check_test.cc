#include "griddecl/coding/parity_check.h"

#include <set>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(ParityCheckTest, Validation) {
  EXPECT_FALSE(BuildHammingParityCheck(0, 4).ok());
  EXPECT_FALSE(BuildHammingParityCheck(33, 4).ok());
  EXPECT_FALSE(BuildHammingParityCheck(3, 0).ok());
  EXPECT_TRUE(BuildHammingParityCheck(3, 7).ok());
}

TEST(ParityCheckTest, ColumnsDistinctNonZeroWhileTheyLast) {
  const BitMatrix h = BuildHammingParityCheck(3, 7).value();
  std::set<uint64_t> cols;
  for (uint32_t j = 0; j < 7; ++j) {
    const uint64_t col = h.Column(j).ToUint64();
    EXPECT_NE(col, 0u);
    EXPECT_TRUE(cols.insert(col).second) << "duplicate column " << col;
  }
}

TEST(ParityCheckTest, HammingMinDistanceThree) {
  const BitMatrix h = BuildHammingParityCheck(3, 7).value();
  EXPECT_EQ(h.MinDistanceUpTo(3), 3u);
}

TEST(ParityCheckTest, ShortenedCodeStillDistanceThree) {
  // Fewer columns than 2^c - 1: a shortened Hamming code, distance >= 3.
  const BitMatrix h = BuildHammingParityCheck(4, 10).value();
  EXPECT_GE(h.MinDistanceUpTo(3), 3u);
}

TEST(ParityCheckTest, OverfullColumnsCycleAndDegrade) {
  // More columns than distinct non-zero values: duplicates appear, min
  // distance drops to 2 — the documented graceful degradation.
  const BitMatrix h = BuildHammingParityCheck(2, 5).value();
  EXPECT_EQ(h.MinDistanceUpTo(3), 2u);
}

TEST(ParityCheckTest, SyndromeCoversAllDisks) {
  // Syndromes of all 2^n vectors must hit all 2^c values equally often
  // (cosets have equal size).
  const uint32_t c = 3;
  const uint32_t n = 6;
  const BitMatrix h = BuildHammingParityCheck(c, n).value();
  std::vector<uint32_t> counts(1u << c, 0);
  for (uint64_t v = 0; v < (1u << n); ++v) {
    const uint64_t s = SyndromeOf(h, BitVector::FromUint64(v, n));
    ASSERT_LT(s, counts.size());
    ++counts[static_cast<size_t>(s)];
  }
  for (uint32_t count : counts) EXPECT_EQ(count, (1u << n) >> c);
}

TEST(DeclusteringParityCheckTest, Validation) {
  EXPECT_FALSE(BuildDeclusteringParityCheck(0, {3, 3}).ok());
  EXPECT_FALSE(BuildDeclusteringParityCheck(33, {3, 3}).ok());
  EXPECT_FALSE(BuildDeclusteringParityCheck(3, {0, 0}).ok());
  EXPECT_TRUE(BuildDeclusteringParityCheck(3, {3, 3}).ok());
  EXPECT_TRUE(BuildDeclusteringParityCheck(3, {0, 4}).ok());
}

TEST(DeclusteringParityCheckTest, LowOrderColumnsIndependent) {
  // c = 4 parity bits, two 5-bit dimensions: the first two bit levels of
  // both dimensions (columns for bits 0 and 1) must be linearly
  // independent — that is what makes small aligned boxes spread perfectly.
  const BitMatrix h = BuildDeclusteringParityCheck(4, {5, 5}).value();
  ASSERT_EQ(h.cols(), 10u);
  BitMatrix low(4, 4);
  // Dimension 0 occupies columns 0..4, dimension 1 columns 5..9.
  low.SetColumn(0, h.Column(0).ToUint64());
  low.SetColumn(1, h.Column(1).ToUint64());
  low.SetColumn(2, h.Column(5).ToUint64());
  low.SetColumn(3, h.Column(6).ToUint64());
  EXPECT_EQ(low.Rank(), 4u);
}

TEST(DeclusteringParityCheckTest, ColumnsDistinctWhileValuesLast) {
  // 6 columns, 3 parity bits -> 7 non-zero values available: all distinct.
  const BitMatrix h = BuildDeclusteringParityCheck(3, {3, 3}).value();
  std::set<uint64_t> cols;
  for (uint32_t j = 0; j < h.cols(); ++j) {
    const uint64_t v = h.Column(j).ToUint64();
    EXPECT_NE(v, 0u);
    EXPECT_TRUE(cols.insert(v).second);
  }
}

TEST(DeclusteringParityCheckTest, FullRank) {
  for (uint32_t c : {1u, 2u, 3u, 4u}) {
    const BitMatrix h = BuildDeclusteringParityCheck(c, {4, 4}).value();
    EXPECT_EQ(h.Rank(), c) << c;
  }
}

TEST(DeclusteringParityCheckTest, AlignedBoxesSpreadPerfectly) {
  // With c=4 and two dims, any aligned 4x4 box (low 2 bits of each coord
  // free) must map onto all 16 syndromes exactly once.
  const BitMatrix h = BuildDeclusteringParityCheck(4, {4, 4}).value();
  for (uint32_t x0 : {0u, 4u, 8u}) {
    for (uint32_t y0 : {0u, 4u, 12u}) {
      std::set<uint64_t> syndromes;
      for (uint32_t dx = 0; dx < 4; ++dx) {
        for (uint32_t dy = 0; dy < 4; ++dy) {
          BitVector v(8);
          const uint32_t x = x0 + dx;
          const uint32_t y = y0 + dy;
          for (uint32_t b = 0; b < 4; ++b) {
            if ((x >> b) & 1) v.Set(b, true);
            if ((y >> b) & 1) v.Set(4 + b, true);
          }
          syndromes.insert(SyndromeOf(h, v));
        }
      }
      EXPECT_EQ(syndromes.size(), 16u) << x0 << "," << y0;
    }
  }
}

TEST(ParityCheckTest, SyndromeLinear) {
  const BitMatrix h = BuildHammingParityCheck(3, 7).value();
  for (uint64_t a = 0; a < 16; ++a) {
    for (uint64_t b = 0; b < 16; ++b) {
      const uint64_t sa = SyndromeOf(h, BitVector::FromUint64(a, 7));
      const uint64_t sb = SyndromeOf(h, BitVector::FromUint64(b, 7));
      const uint64_t sab = SyndromeOf(h, BitVector::FromUint64(a ^ b, 7));
      EXPECT_EQ(sab, sa ^ sb);
    }
  }
}

}  // namespace
}  // namespace griddecl
