#include "griddecl/theory/partial_match_optimality.h"

#include <gtest/gtest.h>

#include "griddecl/methods/registry.h"

namespace griddecl {
namespace {

TEST(PmConditionTest, OneUnspecifiedAlwaysOptimal) {
  const GridSpec grid = GridSpec::Create({7, 9}).value();
  EXPECT_TRUE(DmPartialMatchCondition(grid, 4, {0}));
  EXPECT_TRUE(DmPartialMatchCondition(grid, 4, {1}));
}

TEST(PmConditionTest, DomainMultipleOfM) {
  const GridSpec grid = GridSpec::Create({8, 9}).value();
  // dim 0 has 8 partitions, M=4 divides it.
  EXPECT_TRUE(DmPartialMatchCondition(grid, 4, {0, 1}));
  // With M=5 neither 8 nor 9 is a multiple -> condition fails.
  EXPECT_FALSE(DmPartialMatchCondition(grid, 5, {0, 1}));
}

TEST(PmVerifyTest, DmOptimalWithOneUnspecifiedAttribute) {
  // The classical theorem, machine-checked: DM is optimal for every
  // partial-match query with exactly one unspecified attribute.
  for (uint32_t m : {2u, 3u, 4u, 5u, 7u}) {
    const GridSpec grid = GridSpec::Create({12, 10}).value();
    const auto dm = CreateMethod("dm", grid, m).value();
    // One unspecified = the other one specified.
    EXPECT_TRUE(VerifyOptimalForPartialMatchClass(*dm, {0}).value()) << m;
    EXPECT_TRUE(VerifyOptimalForPartialMatchClass(*dm, {1}).value()) << m;
  }
}

TEST(PmVerifyTest, DmOptimalWhenUnspecifiedDomainDivisible) {
  // 3-d grid, two unspecified attributes, one with d_i % M == 0.
  const GridSpec grid = GridSpec::Create({8, 6, 5}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  // Specify dim 2 only; unspecified {0, 1}; d_0 = 8 divisible by 4.
  EXPECT_TRUE(DmPartialMatchCondition(grid, 4, {0, 1}));
  EXPECT_TRUE(VerifyOptimalForPartialMatchClass(*dm, {2}).value());
}

TEST(PmVerifyTest, DmCanBeSuboptimalWhenConditionFails) {
  // No unspecified domain is a multiple of M: DM's guarantee lapses, and on
  // this configuration it is genuinely sub-optimal for the full-grid query
  // (6x6, M=4: residue 1 receives 10 buckets > ceil(36/4) = 9).
  const GridSpec grid = GridSpec::Create({6, 6}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  EXPECT_FALSE(DmPartialMatchCondition(grid, 4, {0, 1}));
  EXPECT_FALSE(VerifyOptimalForPartialMatchClass(*dm, {}).value());
}

TEST(PmVerifyTest, FxOptimalOneUnspecifiedPowerOfTwo) {
  // FX with power-of-two domains, exactly one unspecified attribute whose
  // aligned span covers all residues.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto fx = CreateMethod("fx", grid, 8).value();
  EXPECT_TRUE(VerifyOptimalForPartialMatchClass(*fx, {0}).value());
  EXPECT_TRUE(VerifyOptimalForPartialMatchClass(*fx, {1}).value());
}

TEST(AllDimSubsetsTest, EnumeratesPowerSet) {
  const auto subsets = AllDimSubsets(3);
  EXPECT_EQ(subsets.size(), 8u);
  EXPECT_TRUE(subsets.front().empty());
  EXPECT_EQ(subsets.back().size(), 3u);
  // Sorted by size.
  for (size_t i = 1; i < subsets.size(); ++i) {
    EXPECT_LE(subsets[i - 1].size(), subsets[i].size());
  }
}

TEST(RestrictionSummaryTest, KnownMethods) {
  EXPECT_NE(MethodRestrictionSummary("dm").find("none"), std::string::npos);
  EXPECT_NE(MethodRestrictionSummary("ecc").find("power of 2"),
            std::string::npos);
  EXPECT_NE(MethodRestrictionSummary("hcam").find("none"), std::string::npos);
  EXPECT_EQ(MethodRestrictionSummary("???"), "unknown method");
}

}  // namespace
}  // namespace griddecl
