#include "griddecl/grid/partitioner.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(DomainPartitionTest, UniformBasics) {
  Result<DomainPartition> p = DomainPartition::Uniform(0.0, 10.0, 5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().num_intervals(), 5u);
  EXPECT_EQ(p.value().lo(), 0.0);
  EXPECT_EQ(p.value().hi(), 10.0);
  EXPECT_EQ(p.value().IndexOf(0.0), 0u);
  EXPECT_EQ(p.value().IndexOf(1.99), 0u);
  EXPECT_EQ(p.value().IndexOf(2.0), 1u);
  EXPECT_EQ(p.value().IndexOf(9.99), 4u);
}

TEST(DomainPartitionTest, UniformRejectsBadInput) {
  EXPECT_FALSE(DomainPartition::Uniform(1.0, 1.0, 4).ok());
  EXPECT_FALSE(DomainPartition::Uniform(2.0, 1.0, 4).ok());
  EXPECT_FALSE(DomainPartition::Uniform(0.0, 1.0, 0).ok());
}

TEST(DomainPartitionTest, OutOfDomainClamps) {
  const DomainPartition p = DomainPartition::Uniform(0.0, 1.0, 4).value();
  EXPECT_EQ(p.IndexOf(-5.0), 0u);
  EXPECT_EQ(p.IndexOf(1.0), 3u);   // Top edge maps into last interval.
  EXPECT_EQ(p.IndexOf(99.0), 3u);
}

TEST(DomainPartitionTest, FromBoundaries) {
  Result<DomainPartition> p =
      DomainPartition::FromBoundaries({0.0, 1.0, 10.0, 100.0});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().num_intervals(), 3u);
  EXPECT_EQ(p.value().IndexOf(0.5), 0u);
  EXPECT_EQ(p.value().IndexOf(5.0), 1u);
  EXPECT_EQ(p.value().IndexOf(50.0), 2u);
}

TEST(DomainPartitionTest, FromBoundariesRejectsNonIncreasing) {
  EXPECT_FALSE(DomainPartition::FromBoundaries({0.0}).ok());
  EXPECT_FALSE(DomainPartition::FromBoundaries({0.0, 0.0, 1.0}).ok());
  EXPECT_FALSE(DomainPartition::FromBoundaries({0.0, 2.0, 1.0}).ok());
}

TEST(DomainPartitionTest, IndexRange) {
  const DomainPartition p = DomainPartition::Uniform(0.0, 8.0, 8).value();
  uint32_t first = 99;
  uint32_t last = 99;
  p.IndexRange(1.5, 5.5, &first, &last);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(last, 5u);
  p.IndexRange(-10.0, 100.0, &first, &last);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(last, 7u);
}

TEST(SpacePartitionerTest, UnitUniform) {
  Result<SpacePartitioner> sp = SpacePartitioner::UnitUniform({4, 8});
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp.value().num_dims(), 2u);
  EXPECT_EQ(sp.value().grid().ToString(), "4x8");
}

TEST(SpacePartitionerTest, BucketOf) {
  const SpacePartitioner sp =
      SpacePartitioner::UnitUniform({4, 4}).value();
  EXPECT_EQ(sp.BucketOf({0.0, 0.0}), BucketCoords({0, 0}));
  EXPECT_EQ(sp.BucketOf({0.3, 0.8}), BucketCoords({1, 3}));
  EXPECT_EQ(sp.BucketOf({0.99, 0.99}), BucketCoords({3, 3}));
}

TEST(SpacePartitionerTest, RectOfCoversPredicate) {
  const SpacePartitioner sp =
      SpacePartitioner::UnitUniform({10, 10}).value();
  const BucketRect rect = sp.RectOf({0.15, 0.0}, {0.35, 0.49});
  EXPECT_EQ(rect.lo(), BucketCoords({1, 0}));
  EXPECT_EQ(rect.hi(), BucketCoords({3, 4}));
}

TEST(SpacePartitionerTest, PointPredicateIsSingleBucket) {
  const SpacePartitioner sp = SpacePartitioner::UnitUniform({8, 8}).value();
  const BucketRect rect = sp.RectOf({0.5, 0.5}, {0.5, 0.5});
  EXPECT_EQ(rect.Volume(), 1u);
}

}  // namespace
}  // namespace griddecl
