#include "griddecl/cluster/placement.h"

#include <set>

#include <gtest/gtest.h>

namespace griddecl::cluster {
namespace {

/// The cluster's contiguous disk -> node deal (disk d on node d*N/M).
std::vector<uint32_t> Deal(uint32_t num_disks, uint32_t num_nodes) {
  std::vector<uint32_t> disk_node(num_disks);
  for (uint32_t d = 0; d < num_disks; ++d) {
    disk_node[d] = static_cast<uint32_t>(
        static_cast<uint64_t>(d) * num_nodes / num_disks);
  }
  return disk_node;
}

PlacementMap Build(PlacementPolicy policy, const Topology& topology,
                   uint32_t num_disks, uint32_t copies, uint64_t seed = 7) {
  PlacementSpec spec;
  spec.policy = policy;
  spec.topology = topology;
  spec.seed = seed;
  return PlacementMap::Build(spec, Deal(num_disks, topology.num_nodes()),
                             copies)
      .value();
}

TEST(TopologyTest, FlatAndGrid) {
  const Topology flat = Topology::Flat(4);
  EXPECT_TRUE(flat.Validate().ok());
  EXPECT_EQ(flat.num_nodes(), 4u);
  EXPECT_EQ(flat.num_racks(), 4u);
  EXPECT_EQ(flat.num_zones(), 4u);

  const Topology grid = Topology::Grid(8, 4, 2).value();
  EXPECT_TRUE(grid.Validate().ok());
  EXPECT_EQ(grid.num_nodes(), 8u);
  EXPECT_EQ(grid.num_racks(), 4u);
  EXPECT_EQ(grid.num_zones(), 2u);
  // Contiguous deal: nodes 0,1 -> rack 0; racks 0,1 -> zone 0.
  EXPECT_EQ(grid.rack_of(0), grid.rack_of(1));
  EXPECT_EQ(grid.zone_of(0), grid.zone_of(3));
  EXPECT_NE(grid.zone_of(0), grid.zone_of(4));

  EXPECT_FALSE(Topology::Grid(2, 4, 1).ok());  // racks > nodes
  EXPECT_FALSE(Topology::Grid(4, 2, 3).ok());  // zones > racks
  EXPECT_FALSE(Topology::Grid(0, 0, 0).ok());
}

TEST(TopologyTest, ValidateRejectsRaggedIds) {
  Topology t;
  t.node_rack = {0, 1};
  t.rack_zone = {0};  // node 1 references rack 1, which has no zone.
  EXPECT_FALSE(t.Validate().ok());

  t.node_rack = {0, 0};
  t.rack_zone = {5};  // zone id not dense.
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TopologyTest, ParseForms) {
  const Topology flat = ParseTopology("4").value();
  EXPECT_EQ(flat.num_nodes(), 4u);
  EXPECT_EQ(flat.num_zones(), 4u);

  const Topology nr = ParseTopology("8x4").value();
  EXPECT_EQ(nr.num_racks(), 4u);

  const Topology nrz = ParseTopology("4x2x2").value();
  EXPECT_EQ(nrz.num_nodes(), 4u);
  EXPECT_EQ(nrz.num_racks(), 2u);
  EXPECT_EQ(nrz.num_zones(), 2u);

  EXPECT_FALSE(ParseTopology("").ok());
  EXPECT_FALSE(ParseTopology("4x").ok());
  EXPECT_FALSE(ParseTopology("axb").ok());
  EXPECT_FALSE(ParseTopology("2x4").ok());
  EXPECT_FALSE(ParseTopology("1x1x1x1").ok());
}

TEST(PlacementPolicyTest, NamesRoundTrip) {
  for (PlacementPolicy p : {PlacementPolicy::kChained,
                            PlacementPolicy::kSpread,
                            PlacementPolicy::kZoneAware}) {
    EXPECT_EQ(ParsePlacementPolicy(PlacementPolicyName(p)).value(), p);
  }
  EXPECT_FALSE(ParsePlacementPolicy("bogus").ok());
}

TEST(PlacementMapTest, ChainedMatchesDiskArithmetic) {
  // chained: copy c of disk d lives on the node owning disk (d+c) mod M.
  const Topology topo = Topology::Grid(4, 2, 2).value();
  const std::vector<uint32_t> disk_node = Deal(8, 4);
  const PlacementMap map = Build(PlacementPolicy::kChained, topo, 8, 2);
  for (uint32_t d = 0; d < 8; ++d) {
    EXPECT_EQ(map.NodeOf(d, 0), disk_node[d]);
    EXPECT_EQ(map.NodeOf(d, 1), disk_node[(d + 1) % 8]);
  }
}

TEST(PlacementMapTest, ChainedSelfColocationTrapIsPinned) {
  // The regression the warning exists for: M=8 on N=4 puts two disks per
  // node, so chained copy 1 of every even disk lands on the owner's own
  // node. These are exactly disks 0, 2, 4, 6.
  const Topology topo = Topology::Grid(4, 2, 2).value();
  const PlacementMap map = Build(PlacementPolicy::kChained, topo, 8, 2);
  EXPECT_EQ(map.SelfColocatedDisks(2),
            (std::vector<uint32_t>{0, 2, 4, 6}));
  for (uint32_t d : {0u, 2u, 4u, 6u}) {
    EXPECT_EQ(map.DistinctNodes(d, 2), 1u);
  }
}

TEST(PlacementMapTest, SpreadAlwaysUsesDistinctNodes) {
  const Topology topo = Topology::Grid(4, 2, 2).value();
  const PlacementMap map = Build(PlacementPolicy::kSpread, topo, 8, 3);
  EXPECT_TRUE(map.SelfColocatedDisks(3).empty());
  for (uint32_t d = 0; d < 8; ++d) {
    EXPECT_EQ(map.DistinctNodes(d, 3), 3u);
  }
}

TEST(PlacementMapTest, ZoneAwareCoversDistinctZonesFirst) {
  // 8 nodes / 4 racks / 2 zones, copies=2: every disk's two replicas must
  // land in both zones; at copies=3 they must also span >= 2 racks.
  const Topology topo = Topology::Grid(8, 4, 2).value();
  const PlacementMap map = Build(PlacementPolicy::kZoneAware, topo, 16, 3);
  for (uint32_t d = 0; d < 16; ++d) {
    EXPECT_EQ(map.DistinctZones(d, 2), 2u) << "disk " << d;
    EXPECT_EQ(map.DistinctNodes(d, 3), 3u) << "disk " << d;
  }
  EXPECT_TRUE(map.SelfColocatedDisks(3).empty());
}

TEST(PlacementMapTest, ZoneAwareIsDeterministicUnderSeed) {
  const Topology topo = Topology::Grid(8, 4, 2).value();
  const PlacementMap a = Build(PlacementPolicy::kZoneAware, topo, 16, 2, 9);
  const PlacementMap b = Build(PlacementPolicy::kZoneAware, topo, 16, 2, 9);
  for (uint32_t d = 0; d < 16; ++d) {
    EXPECT_EQ(a.NodeOf(d, 1), b.NodeOf(d, 1));
  }
}

TEST(PlacementMapTest, BuildValidates) {
  PlacementSpec spec;
  spec.topology = Topology::Flat(4);
  // disk_node references node 7, outside the topology.
  EXPECT_FALSE(PlacementMap::Build(spec, {0, 1, 2, 7}, 2).ok());
  EXPECT_FALSE(PlacementMap::Build(spec, {}, 2).ok());
  EXPECT_FALSE(PlacementMap::Build(spec, {0, 1, 2, 3}, 0).ok());
}

TEST(PlacementSpecTest, ManifestRoundTrip) {
  PlacementSpec spec;
  spec.policy = PlacementPolicy::kZoneAware;
  spec.topology = Topology::Grid(4, 2, 2).value();
  spec.seed = 0xdeadbeefULL;

  const ManifestPlacement record = ToManifestPlacement(spec);
  const PlacementSpec back = FromManifestPlacement(record).value();
  EXPECT_EQ(back.policy, spec.policy);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.topology.node_rack, spec.topology.node_rack);
  EXPECT_EQ(back.topology.rack_zone, spec.topology.rack_zone);

  ManifestPlacement bad = record;
  bad.policy = 99;
  EXPECT_FALSE(FromManifestPlacement(bad).ok());
}

TEST(PlacementMapTest, ExplicitTableOverridesThePolicyFormula) {
  // A repair leaves an explicit table that deliberately disagrees with
  // what the policy would compute; Build must serve it verbatim.
  PlacementSpec spec;
  spec.policy = PlacementPolicy::kChained;
  spec.topology = Topology::Flat(4);
  const std::vector<uint32_t> disk_node = Deal(4, 4);
  spec.table = {disk_node, {2, 3, 0, 0}};  // Chained would give {1,2,3,0}.
  const PlacementMap map = PlacementMap::Build(spec, disk_node, 2).value();
  EXPECT_EQ(map.NodeOf(0, 1), 2u);
  EXPECT_EQ(map.NodeOf(3, 1), 0u);
  EXPECT_EQ(map.Table(), spec.table);

  // Row 0 must agree with the ownership deal, rows must be full width,
  // entries must be inside the topology, and there must be a row per copy.
  PlacementSpec bad = spec;
  bad.table[0][0] = 1;
  EXPECT_FALSE(PlacementMap::Build(bad, disk_node, 2).ok());
  bad = spec;
  bad.table[1].pop_back();
  EXPECT_FALSE(PlacementMap::Build(bad, disk_node, 2).ok());
  bad = spec;
  bad.table[1][0] = 9;
  EXPECT_FALSE(PlacementMap::Build(bad, disk_node, 2).ok());
  EXPECT_FALSE(PlacementMap::Build(spec, disk_node, 3).ok());
}

TEST(PlacementSpecTest, ManifestRoundTripCarriesTheTable) {
  PlacementSpec spec;
  spec.policy = PlacementPolicy::kZoneAware;
  spec.topology = Topology::Grid(4, 2, 2).value();
  spec.seed = 11;
  spec.table = {{0, 1, 2, 3}, {2, 3, 0, 1}};

  const ManifestPlacement record = ToManifestPlacement(spec);
  EXPECT_EQ(record.table_copies, 2u);
  EXPECT_EQ(record.table_disks, 4u);
  const PlacementSpec back = FromManifestPlacement(record).value();
  EXPECT_EQ(back.table, spec.table);

  // Table-less specs round-trip with an empty table, as before.
  spec.table.clear();
  const ManifestPlacement tableless = ToManifestPlacement(spec);
  EXPECT_TRUE(tableless.table.empty());
  EXPECT_TRUE(FromManifestPlacement(tableless).value().table.empty());

  ManifestPlacement bad = record;
  bad.table[5] = 42;  // No node 42 in a 4-node topology.
  EXPECT_FALSE(FromManifestPlacement(bad).ok());
  bad = record;
  bad.table_disks = 3;  // Dims no longer match the flat payload.
  EXPECT_FALSE(FromManifestPlacement(bad).ok());
}

}  // namespace
}  // namespace griddecl::cluster
