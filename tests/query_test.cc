#include "griddecl/query/query.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(RangeQueryTest, CreateWithinGrid) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const BucketRect rect = BucketRect::Create({1, 2}, {3, 4}).value();
  Result<RangeQuery> q = RangeQuery::Create(grid, rect);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().NumBuckets(), 9u);
  EXPECT_FALSE(q.value().IsPoint());
  EXPECT_EQ(q.value().num_dims(), 2u);
}

TEST(RangeQueryTest, RejectsOutOfGrid) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const BucketRect rect = BucketRect::Create({0, 0}, {4, 0}).value();
  EXPECT_FALSE(RangeQuery::Create(grid, rect).ok());
}

TEST(RangeQueryTest, PointQuery) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Point({2, 2})).value();
  EXPECT_TRUE(q.IsPoint());
  EXPECT_EQ(q.NumBuckets(), 1u);
}

TEST(PartialMatchQueryTest, CreateAndConvert) {
  const GridSpec grid = GridSpec::Create({4, 6, 8}).value();
  Result<PartialMatchQuery> pm =
      PartialMatchQuery::Create(grid, {std::nullopt, 3u, std::nullopt});
  ASSERT_TRUE(pm.ok());
  EXPECT_EQ(pm.value().NumSpecified(), 1u);
  EXPECT_EQ(pm.value().ToString(), "(*, 3, *)");

  const RangeQuery q = pm.value().ToRangeQuery(grid);
  EXPECT_EQ(q.NumBuckets(), 4u * 8u);
  EXPECT_EQ(q.rect().lo(), BucketCoords({0, 3, 0}));
  EXPECT_EQ(q.rect().hi(), BucketCoords({3, 3, 7}));
}

TEST(PartialMatchQueryTest, FullySpecifiedIsPoint) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const PartialMatchQuery pm =
      PartialMatchQuery::Create(grid, {1u, 2u}).value();
  EXPECT_EQ(pm.NumSpecified(), 2u);
  EXPECT_TRUE(pm.ToRangeQuery(grid).IsPoint());
}

TEST(PartialMatchQueryTest, FullyUnspecifiedSpansGrid) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const PartialMatchQuery pm =
      PartialMatchQuery::Create(grid, {std::nullopt, std::nullopt}).value();
  EXPECT_EQ(pm.ToRangeQuery(grid).NumBuckets(), grid.num_buckets());
}

TEST(PartialMatchQueryTest, Validation) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  EXPECT_FALSE(PartialMatchQuery::Create(grid, {std::nullopt}).ok());
  EXPECT_FALSE(PartialMatchQuery::Create(grid, {4u, std::nullopt}).ok());
}

}  // namespace
}  // namespace griddecl
