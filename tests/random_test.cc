#include "griddecl/common/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(19);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NextBoolEdgeProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(31);
  for (uint32_t n : {0u, 1u, 2u, 10u, 100u}) {
    std::vector<uint32_t> p = rng.Permutation(n);
    ASSERT_EQ(p.size(), n);
    std::sort(p.begin(), p.end());
    for (uint32_t i = 0; i < n; ++i) EXPECT_EQ(p[i], i);
  }
}

TEST(RngTest, PermutationShuffles) {
  Rng rng(37);
  // Probability that two independent 20-element permutations are identical
  // is astronomically small.
  const std::vector<uint32_t> a = rng.Permutation(20);
  const std::vector<uint32_t> b = rng.Permutation(20);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace griddecl
