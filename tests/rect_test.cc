#include "griddecl/grid/rect.h"

#include <vector>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(BucketRectTest, CreateAndAccessors) {
  Result<BucketRect> r = BucketRect::Create({1, 2}, {3, 5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Extent(0), 3u);
  EXPECT_EQ(r.value().Extent(1), 4u);
  EXPECT_EQ(r.value().Volume(), 12u);
  EXPECT_EQ(r.value().ToString(), "[1..3]x[2..5]");
}

TEST(BucketRectTest, CreateRejectsInvalid) {
  EXPECT_FALSE(BucketRect::Create({3}, {1}).ok());
  EXPECT_FALSE(BucketRect::Create({0, 0}, {0}).ok());
}

TEST(BucketRectTest, PointAndFull) {
  const GridSpec g = GridSpec::Create({4, 6}).value();
  const BucketRect full = BucketRect::Full(g);
  EXPECT_EQ(full.Volume(), 24u);
  EXPECT_TRUE(full.WithinGrid(g));

  const BucketRect pt = BucketRect::Point({2, 3});
  EXPECT_EQ(pt.Volume(), 1u);
  EXPECT_TRUE(pt.Contains({2, 3}));
  EXPECT_FALSE(pt.Contains({2, 4}));
}

TEST(BucketRectTest, Contains) {
  const BucketRect r = BucketRect::Create({1, 1}, {2, 3}).value();
  EXPECT_TRUE(r.Contains({1, 1}));
  EXPECT_TRUE(r.Contains({2, 3}));
  EXPECT_FALSE(r.Contains({0, 1}));
  EXPECT_FALSE(r.Contains({1, 4}));
}

TEST(BucketRectTest, WithinGrid) {
  const GridSpec g = GridSpec::Create({3, 3}).value();
  EXPECT_TRUE(BucketRect::Create({0, 0}, {2, 2}).value().WithinGrid(g));
  EXPECT_FALSE(BucketRect::Create({0, 0}, {3, 2}).value().WithinGrid(g));
  const GridSpec g3 = GridSpec::Create({3, 3, 3}).value();
  EXPECT_FALSE(BucketRect::Create({0, 0}, {1, 1}).value().WithinGrid(g3));
}

TEST(BucketRectTest, IntersectOverlapping) {
  const BucketRect a = BucketRect::Create({0, 0}, {4, 4}).value();
  const BucketRect b = BucketRect::Create({2, 3}, {6, 8}).value();
  const auto i = a.Intersect(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->lo(), BucketCoords({2, 3}));
  EXPECT_EQ(i->hi(), BucketCoords({4, 4}));
}

TEST(BucketRectTest, IntersectDisjoint) {
  const BucketRect a = BucketRect::Create({0, 0}, {1, 1}).value();
  const BucketRect b = BucketRect::Create({3, 3}, {4, 4}).value();
  EXPECT_FALSE(a.Intersect(b).has_value());
}

TEST(BucketRectTest, IntersectTouchingEdge) {
  const BucketRect a = BucketRect::Create({0, 0}, {2, 2}).value();
  const BucketRect b = BucketRect::Create({2, 2}, {4, 4}).value();
  const auto i = a.Intersect(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->Volume(), 1u);
}

TEST(BucketRectTest, ForEachBucketCoversExactlyVolume) {
  const BucketRect r = BucketRect::Create({1, 0, 2}, {2, 1, 4}).value();
  std::vector<BucketCoords> cells;
  r.ForEachBucket([&](const BucketCoords& c) { cells.push_back(c); });
  EXPECT_EQ(cells.size(), r.Volume());
  for (const auto& c : cells) EXPECT_TRUE(r.Contains(c));
  // All distinct.
  for (size_t i = 0; i < cells.size(); ++i) {
    for (size_t j = i + 1; j < cells.size(); ++j) {
      EXPECT_NE(cells[i], cells[j]);
    }
  }
}

TEST(BucketRectTest, EqualityOperator) {
  EXPECT_TRUE(BucketRect::Create({0, 0}, {1, 1}).value() ==
              BucketRect::Create({0, 0}, {1, 1}).value());
}

}  // namespace
}  // namespace griddecl
