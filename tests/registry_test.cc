#include "griddecl/methods/registry.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(RegistryTest, AllNamesConstructibleOnFriendlyGrid) {
  // Power-of-two grid and disks: every method applies.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  for (const std::string& name : AllMethodNames()) {
    Result<std::unique_ptr<DeclusteringMethod>> m =
        CreateMethod(name, grid, 8);
    EXPECT_TRUE(m.ok()) << name << ": " << m.status().ToString();
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto r = CreateMethod("nope", grid, 4);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, DmAndCmdAreAliases) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 5).value();
  const auto cmd = CreateMethod("cmd", grid, 5).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(dm->DiskOf(c), cmd->DiskOf(c));
  });
}

TEST(RegistryTest, GdmUsesOptions) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  MethodOptions opts;
  opts.gdm_coefficients = {1, 3};
  const auto gdm = CreateMethod("gdm", grid, 5, opts).value();
  EXPECT_EQ(gdm->DiskOf({1, 2}), (1 + 3 * 2) % 5u);
}

TEST(RegistryTest, RandomUsesSeedOption) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  MethodOptions a;
  a.seed = 1;
  MethodOptions b;
  b.seed = 2;
  const auto ra = CreateMethod("random", grid, 4, a).value();
  const auto rb = CreateMethod("random", grid, 4, b).value();
  bool differ = false;
  grid.ForEachBucket([&](const BucketCoords& c) {
    differ = differ || (ra->DiskOf(c) != rb->DiskOf(c));
  });
  EXPECT_TRUE(differ);
}

TEST(RegistryTest, PaperMethodsFullSetOnPowerOfTwo) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto methods = CreatePaperMethods(grid, 16);
  ASSERT_EQ(methods.size(), 4u);
  EXPECT_EQ(methods[0]->name(), "DM/CMD");
  EXPECT_EQ(methods[1]->name(), "FX");
  EXPECT_EQ(methods[2]->name(), "ECC");
  EXPECT_EQ(methods[3]->name(), "HCAM");
}

TEST(RegistryTest, PaperMethodsDropEccWhenInapplicable) {
  const GridSpec grid = GridSpec::Create({30, 30}).value();
  const auto methods = CreatePaperMethods(grid, 7);
  ASSERT_EQ(methods.size(), 3u);
  EXPECT_EQ(methods[0]->name(), "DM/CMD");
  EXPECT_EQ(methods[2]->name(), "HCAM");
}

TEST(RegistryTest, PaperMethodsPickExFxForSmallDomains) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const auto methods = CreatePaperMethods(grid, 8);
  bool found_exfx = false;
  for (const auto& m : methods) found_exfx |= (m->name() == "ExFX");
  EXPECT_TRUE(found_exfx);
}

}  // namespace
}  // namespace griddecl
