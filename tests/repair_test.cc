#include "griddecl/cluster/repair.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/cluster/heartbeat.h"
#include "griddecl/cluster/script.h"
#include "griddecl/common/random.h"
#include "griddecl/gridfile/catalog.h"
#include "griddecl/gridfile/declustered_file.h"
#include "griddecl/gridfile/manifest.h"

/// \file
/// Self-healing coverage: the heartbeat failure detector, the pure repair
/// planner, the staged repair executor (including the acceptance demo —
/// heal a node loss, then survive a full-zone kill), topology changes
/// (add-node / remove-node evacuation), the revive catch-up fence, the
/// retry/hedge budgets, and repair torture (node loss at every phase).

namespace griddecl {
namespace cluster {
namespace {

RelationRedundancy Mirror2() {
  RelationRedundancy r;
  r.policy = RelationRedundancy::Policy::kMirror;
  r.copies = 2;
  return r;
}

/// 8x8 grid on 8 virtual disks over 4 nodes (two disks per node), nodes
/// {0,1} = zone 0 and {2,3} = zone 1 under Grid(4, 2, 2) — the same
/// topology the cluster placement tests use.
Catalog CommitWideCatalog(MemEnv* env, uint64_t seed = 1) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {8, 8}).value();
  const GridSpec grid = f.grid();
  Rng rng(seed);
  for (uint64_t b = 0; b < grid.num_buckets(); ++b) {
    const BucketCoords c = grid.Delinearize(b);
    for (uint32_t k = 0; k < 8; ++k) {
      const std::vector<double> point = {
          (c[0] + rng.NextDouble()) / 8.0, (c[1] + rng.NextDouble()) / 8.0};
      EXPECT_TRUE(f.Insert(point).ok());
    }
  }
  Catalog catalog(8);
  Result<DeclusteredFile> rel = DeclusteredFile::Create(std::move(f), "dm", 8);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(catalog.AddRelation("dm", std::move(rel).value()).ok());
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy = Mirror2();
  EXPECT_TRUE(SaveCatalogManifest(catalog, env, options).ok());
  return catalog;
}

serve::QueryRequest Range(std::vector<double> lo, std::vector<double> hi) {
  serve::QueryRequest req;
  req.relation = "dm";
  req.lo = std::move(lo);
  req.hi = std::move(hi);
  return req;
}

std::vector<RecordId> Direct(const Catalog& catalog,
                             const serve::QueryRequest& req) {
  std::vector<RecordId> ids =
      catalog.Find("dm")->ExecuteRange(req.lo, req.hi).value().matches;
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Deterministic zone-aware cluster over the wide catalog with a quorum
/// low enough that a single surviving node still serves — the acceptance
/// demo needs exactly one zone-0 node to carry everything after the
/// zone-1 kill.
ClusterOptions HealingOptions(uint32_t num_threads = 4) {
  ClusterOptions o;
  o.num_nodes = 4;
  o.hedging = false;
  o.node_breaker.min_events = 1000000;
  o.node_breaker.window = 1000000;
  o.node.breaker.min_events = 1000000;
  o.node.breaker.window = 1000000;
  o.node.num_threads = num_threads;
  o.quorum_fraction = 0.2;
  PlacementSpec spec;
  spec.policy = PlacementPolicy::kZoneAware;
  spec.topology = Topology::Grid(4, 2, 2).value();
  spec.seed = 7;
  o.placement = spec;
  return o;
}

std::vector<std::string> NodeFiles(Cluster* cluster, uint32_t node) {
  return cluster->node_env_for_test(node)->ListFiles().value();
}

// ---------------------------------------------------------------------------
// Heartbeat detector
// ---------------------------------------------------------------------------

TEST(HeartbeatTest, ValidatesOptions) {
  HeartbeatOptions ok;
  EXPECT_TRUE(ValidateHeartbeatOptions(ok).ok());
  HeartbeatOptions bad = ok;
  bad.interval_ms = 0.0;
  EXPECT_FALSE(ValidateHeartbeatOptions(bad).ok());
  bad = ok;
  bad.suspect_after = 0;
  EXPECT_FALSE(ValidateHeartbeatOptions(bad).ok());
  bad = ok;
  bad.dead_after = bad.suspect_after - 1;
  EXPECT_FALSE(ValidateHeartbeatOptions(bad).ok());
}

TEST(HeartbeatTest, WalksAliveSuspectDeadAndRecovers) {
  HeartbeatOptions o;  // 10 ms interval, suspect after 2, dead after 4.
  HeartbeatDetector hb(o, 3);
  hb.Track(0);
  hb.Track(1);
  // Node 2 exists as a slot but is never tracked: never probed.
  bool node1_up = false;
  const auto probe = [&](uint32_t n, double) { return n == 0 || node1_up; };

  hb.AdvanceTo(10.0, probe);
  EXPECT_EQ(hb.HealthOf(1), NodeHealth::kAlive);  // 1 miss: still alive.
  hb.AdvanceTo(20.0, probe);
  EXPECT_EQ(hb.HealthOf(1), NodeHealth::kSuspect);
  EXPECT_EQ(hb.HealthOf(0), NodeHealth::kAlive);
  hb.AdvanceTo(39.9, probe);  // Tick 40 has not happened yet.
  EXPECT_EQ(hb.HealthOf(1), NodeHealth::kSuspect);
  hb.AdvanceTo(40.0, probe);
  EXPECT_EQ(hb.HealthOf(1), NodeHealth::kDead);
  EXPECT_EQ(hb.DeadSinceMs(1), 40.0);
  EXPECT_EQ(hb.DeadNodes(), std::vector<uint32_t>{1});

  // One answered beat resurrects.
  node1_up = true;
  hb.AdvanceTo(50.0, probe);
  EXPECT_EQ(hb.HealthOf(1), NodeHealth::kAlive);
  EXPECT_TRUE(hb.DeadNodes().empty());

  const HeartbeatDetector::Counters c = hb.counters();
  EXPECT_EQ(c.suspected, 1u);
  EXPECT_EQ(c.died, 1u);
  EXPECT_EQ(c.recovered, 1u);
  EXPECT_EQ(c.missed, 4u);
  EXPECT_GT(c.beats, 0u);

  hb.MarkRemoved(1);
  EXPECT_EQ(hb.HealthOf(1), NodeHealth::kRemoved);
  EXPECT_EQ(hb.HealthOf(99), NodeHealth::kRemoved);  // Out of range.
  hb.AdvanceTo(100.0, [](uint32_t, double) { return false; });
  EXPECT_EQ(hb.HealthOf(1), NodeHealth::kRemoved);  // No longer probed.
}

TEST(HeartbeatTest, ClusterDetectorFollowsTheVirtualClock) {
  MemEnv env;
  CommitWideCatalog(&env);
  auto cluster = Cluster::Create(env, HealingOptions()).value();
  ASSERT_TRUE(cluster->KillNode(2).ok());

  // The imperative kill affects routing instantly but the detector only
  // moves with the virtual clock.
  EXPECT_EQ(cluster->NodeHealthOf(2), NodeHealth::kAlive);
  cluster->AdvanceTimeMs(20.0);
  EXPECT_EQ(cluster->NodeHealthOf(2), NodeHealth::kSuspect);
  cluster->AdvanceTimeMs(40.0);
  EXPECT_EQ(cluster->NodeHealthOf(2), NodeHealth::kDead);
  EXPECT_EQ(cluster->NodeHealthOf(0), NodeHealth::kAlive);

  // Revival resets the detector along with the route.
  ASSERT_TRUE(cluster->ReviveNode(2).ok());
  EXPECT_EQ(cluster->NodeHealthOf(2), NodeHealth::kAlive);
  const HeartbeatDetector::Counters c = cluster->HeartbeatCounters();
  EXPECT_EQ(c.died, 1u);
  EXPECT_EQ(c.suspected, 1u);
}

// ---------------------------------------------------------------------------
// Repair planner
// ---------------------------------------------------------------------------

RepairPlanInput ZoneAwareInput(uint64_t seed = 7) {
  PlacementSpec spec;
  spec.policy = PlacementPolicy::kZoneAware;
  spec.topology = Topology::Grid(4, 2, 2).value();
  spec.seed = seed;
  std::vector<uint32_t> disk_node(8);
  for (uint32_t d = 0; d < 8; ++d) disk_node[d] = d / 2;
  RepairPlanInput in;
  in.table = PlacementMap::Build(spec, disk_node, 2).value().Table();
  in.topology = spec.topology;
  in.seed = seed;
  return in;
}

TEST(PlanRepairTest, IsDeterministicAndKeepsZonesDisjoint) {
  RepairPlanInput in = ZoneAwareInput();
  in.dead_nodes = {0};
  const RepairPlan a = PlanRepair(in).value();
  const RepairPlan b = PlanRepair(in).value();
  EXPECT_EQ(a.new_table, b.new_table);
  EXPECT_EQ(a.actions.size(), b.actions.size());
  EXPECT_FALSE(a.healthy());
  EXPECT_TRUE(a.unrecoverable_disks.empty());
  EXPECT_GT(a.actions.size(), 0u);

  for (const RepairAction& act : a.actions) {
    EXPECT_EQ(act.from_node, 0u);
    // Node 1 is the only live zone-0 node: zone-aware re-targeting must
    // pick it so every disk keeps one copy per zone.
    EXPECT_EQ(act.to_node, 1u) << "disk " << act.disk;
  }
  for (uint32_t d = 0; d < 8; ++d) {
    const uint32_t z0 = in.topology.zone_of(a.new_table[0][d]);
    const uint32_t z1 = in.topology.zone_of(a.new_table[1][d]);
    EXPECT_NE(z0, z1) << "disk " << d << " lost zone disjointness";
    EXPECT_NE(a.new_table[0][d], 0u);
    EXPECT_NE(a.new_table[1][d], 0u);
  }
}

TEST(PlanRepairTest, HealthyInputPlansNothing) {
  RepairPlanInput in = ZoneAwareInput();
  const RepairPlan plan = PlanRepair(in).value();
  EXPECT_TRUE(plan.healthy());
  EXPECT_EQ(plan.new_table, in.table);
}

TEST(PlanRepairTest, ReportsUnrecoverableDisksAndRejectsBadInput) {
  // Both copies of every disk inside zone 0: killing the zone loses data.
  RepairPlanInput in = ZoneAwareInput();
  for (uint32_t d = 0; d < 8; ++d) {
    in.table[0][d] = 0;
    in.table[1][d] = 1;
  }
  in.dead_nodes = {0, 1};
  const RepairPlan plan = PlanRepair(in).value();
  EXPECT_EQ(plan.unrecoverable_disks.size(), 8u);
  EXPECT_TRUE(plan.actions.empty());

  in.dead_nodes = {0, 1, 2, 3};
  EXPECT_EQ(PlanRepair(in).status().code(), StatusCode::kInvalidArgument);
  in.dead_nodes = {9};
  EXPECT_EQ(PlanRepair(in).status().code(), StatusCode::kInvalidArgument);
  RepairPlanInput ragged = ZoneAwareInput();
  ragged.table[1].pop_back();
  EXPECT_EQ(PlanRepair(ragged).status().code(),
            StatusCode::kInvalidArgument);
  RepairPlanInput empty = ZoneAwareInput();
  empty.table.clear();
  EXPECT_EQ(PlanRepair(empty).status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanRepairTest, RespreadsAcrossZonesAfterAViolation) {
  // Pass-2 coverage: both copies of disk 0 in zone 1 with every node
  // live — the plan must move one copy to zone 0.
  RepairPlanInput in = ZoneAwareInput();
  in.table[0][0] = 2;
  in.table[1][0] = 3;
  const RepairPlan plan = PlanRepair(in).value();
  ASSERT_EQ(plan.actions.size(), 1u);
  EXPECT_EQ(plan.actions[0].disk, 0u);
  EXPECT_EQ(in.topology.zone_of(plan.actions[0].to_node), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end repair
// ---------------------------------------------------------------------------

TEST(RepairTest, RepairWithoutDetectorDeathIsANoOp) {
  MemEnv env;
  CommitWideCatalog(&env);
  auto cluster = Cluster::Create(env, HealingOptions()).value();
  // Imperative kill, no clock advance: the detector never declared the
  // node dead, so repair must not re-replicate around a blip.
  ASSERT_TRUE(cluster->KillNode(0).ok());
  const RepairReport report = cluster->Repair({}).value();
  EXPECT_TRUE(report.already_healthy);
  EXPECT_FALSE(report.committed);
  EXPECT_TRUE(report.abort_reason.empty());
  EXPECT_EQ(cluster->generation(), 1u);
}

TEST(RepairTest, HealsANodeLossThenSurvivesAFullZoneKill) {
  // The acceptance demo. Zone-aware copies=2 put one copy of every disk
  // in each zone. Kill node 0 and a different whole zone afterwards:
  // without repair the disks whose zone-0 copy lived on node 0 lose both
  // replicas; with a repair in between, availability stays 1.0.
  MemEnv env;
  const Catalog catalog = CommitWideCatalog(&env);
  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const std::vector<RecordId> want = Direct(catalog, full);

  // Control: no repair between the failures.
  auto control = Cluster::Create(env, HealingOptions()).value();
  ASSERT_TRUE(control->KillNode(0).ok());
  ASSERT_TRUE(control->KillZone(1).ok());
  const ClusterQueryResult lossy = control->Execute(full);
  ASSERT_TRUE(lossy.status.ok()) << lossy.status.ToString();
  EXPECT_FALSE(lossy.complete);
  EXPECT_LT(lossy.availability, 1.0);

  // Healed: kill, let the heartbeat declare the death, repair, then kill
  // the other zone.
  auto cluster = Cluster::Create(env, HealingOptions()).value();
  ASSERT_TRUE(cluster->KillNode(0).ok());
  cluster->AdvanceTimeMs(60.0);
  ASSERT_EQ(cluster->NodeHealthOf(0), NodeHealth::kDead);

  std::vector<std::string> phases;
  RepairOptions ro;
  ro.on_phase = [&phases](const std::string& p) { phases.push_back(p); };
  const RepairReport report = cluster->Repair(ro).value();
  ASSERT_TRUE(report.committed) << report.abort_reason;
  EXPECT_EQ(report.old_generation, 1u);
  EXPECT_EQ(report.new_generation, 2u);
  EXPECT_EQ(report.dead_nodes, std::vector<uint32_t>{0});
  EXPECT_GT(report.replicas_retargeted, 0u);
  EXPECT_GT(report.files_copied, 0u);
  EXPECT_GT(report.verify_queries, 0u);
  EXPECT_EQ(report.verify_mismatches, 0u);
  // Death declared at virtual t=40, repair committed at t=60.
  EXPECT_DOUBLE_EQ(report.mttr_virtual_ms, 20.0);
  EXPECT_GE(report.mttr_wall_ms, 0.0);
  EXPECT_EQ(phases,
            (std::vector<std::string>{"plan", "copy", "staged", "verify",
                                      "commit", "committed"}));
  EXPECT_EQ(cluster->generation(), 2u);

  // The repaired table is the cluster's spec now, with no dead entries.
  const PlacementSpec spec = cluster->placement_spec();
  ASSERT_FALSE(spec.table.empty());
  for (const std::vector<uint32_t>& row : spec.table) {
    for (uint32_t n : row) EXPECT_NE(n, 0u);
  }

  ASSERT_TRUE(cluster->KillZone(1).ok());
  const ClusterQueryResult healed = cluster->Execute(full);
  ASSERT_TRUE(healed.status.ok()) << healed.status.ToString();
  EXPECT_TRUE(healed.complete);
  EXPECT_EQ(healed.availability, 1.0);
  EXPECT_EQ(healed.unavailable_buckets, 0u);
  EXPECT_EQ(healed.matches, want);

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.repairs_committed")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("cluster.repairs_aborted")->value(), 0u);
  EXPECT_EQ(reg.GetCounter("cluster.repair_replicas_rebuilt")->value(),
            report.replicas_retargeted);
  EXPECT_GE(reg.GetCounter("cluster.heartbeat.died")->value(), 1u);
}

TEST(RepairTest, PacedRepairWaitsOnTheTokenBucketAndStillCommits) {
  MemEnv env;
  CommitWideCatalog(&env);
  auto cluster = Cluster::Create(env, HealingOptions()).value();
  ASSERT_TRUE(cluster->KillNode(0).ok());
  cluster->AdvanceTimeMs(60.0);

  RepairOptions ro;
  ro.copy_bytes_per_sec = 50000.0;
  const RepairReport report = cluster->Repair(ro).value();
  ASSERT_TRUE(report.committed) << report.abort_reason;
  EXPECT_GT(report.pacing_wait_ms, 0.0);
  EXPECT_GT(report.bytes_copied, 0u);

  RepairOptions bad;
  bad.copy_bytes_per_sec = -1.0;
  EXPECT_EQ(cluster->Repair(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RepairTest, RepairedTableIsDeterministicAndThreadCountInvariant) {
  std::vector<std::vector<std::vector<uint32_t>>> tables;
  std::vector<uint64_t> retargeted;
  for (const uint32_t threads : {1u, 4u, 4u}) {
    MemEnv env;
    CommitWideCatalog(&env);
    auto cluster = Cluster::Create(env, HealingOptions(threads)).value();
    ASSERT_TRUE(cluster->KillNode(0).ok());
    cluster->AdvanceTimeMs(60.0);
    const RepairReport report = cluster->Repair({}).value();
    ASSERT_TRUE(report.committed) << report.abort_reason;
    tables.push_back(cluster->placement_spec().table);
    retargeted.push_back(report.replicas_retargeted);
  }
  EXPECT_EQ(tables[0], tables[1]);  // 1 thread vs 4 threads.
  EXPECT_EQ(tables[1], tables[2]);  // Re-run at the same thread count.
  EXPECT_EQ(retargeted[0], retargeted[1]);
  EXPECT_EQ(retargeted[1], retargeted[2]);
}

TEST(RepairTest, ReviveAfterRepairCatchesUpThroughTheFence) {
  MemEnv env;
  const Catalog catalog = CommitWideCatalog(&env);
  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  auto cluster = Cluster::Create(env, HealingOptions()).value();
  ASSERT_TRUE(cluster->KillNode(0).ok());
  cluster->AdvanceTimeMs(60.0);
  ASSERT_TRUE(cluster->Repair({}).value().committed);

  // The repair staged generation 2 to live nodes only: node 0 is stale at
  // generation 1 and must be caught up from a peer before readmission.
  EXPECT_EQ(ReadCurrentManifest(*cluster->node_env_for_test(0))
                .value()
                .generation,
            1u);
  ASSERT_TRUE(cluster->ReviveNode(0).ok());
  EXPECT_TRUE(cluster->NodeAlive(0));
  EXPECT_EQ(ReadCurrentManifest(*cluster->node_env_for_test(0))
                .value()
                .generation,
            2u);
  EXPECT_EQ(cluster->NodeHealthOf(0), NodeHealth::kAlive);

  const ClusterQueryResult r = cluster->Execute(full);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.matches, Direct(catalog, full));
  EXPECT_EQ(r.generation, 2u);

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.revive_catchups")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("cluster.revive_fenced")->value(), 0u);
}

TEST(RepairTest, ReviveWithoutALivePeerIsRefused) {
  MemEnv env;
  CommitWideCatalog(&env);
  auto cluster = Cluster::Create(env, HealingOptions()).value();
  ASSERT_TRUE(cluster->KillNode(0).ok());
  cluster->AdvanceTimeMs(60.0);
  ASSERT_TRUE(cluster->Repair({}).value().committed);

  // Every node that holds generation 2 goes dark: node 0 cannot catch up,
  // so readmitting it would serve a stale generation — refuse.
  for (uint32_t n = 1; n < 4; ++n) ASSERT_TRUE(cluster->KillNode(n).ok());
  EXPECT_EQ(cluster->ReviveNode(0).code(), StatusCode::kUnavailable);
  EXPECT_FALSE(cluster->NodeAlive(0));

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.revive_fenced")->value(), 1u);
}

// ---------------------------------------------------------------------------
// Topology changes
// ---------------------------------------------------------------------------

TEST(RepairTest, AddNodeGrowsTheClusterAndRemoveNodeEvacuates) {
  MemEnv env;
  const Catalog catalog = CommitWideCatalog(&env);
  const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const std::vector<RecordId> want = Direct(catalog, full);
  ClusterOptions options = HealingOptions();
  options.max_nodes = 6;
  auto cluster = Cluster::Create(env, options).value();

  // Growth validates against the topology: a rack must stay in its zone,
  // == appends a new rack / opens a new zone.
  EXPECT_EQ(cluster->AddNode(0, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster->AddNode(5, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster->AddNode(2, 5).status().code(),
            StatusCode::kInvalidArgument);
  const uint32_t added = cluster->AddNode(2, 2).value();  // New rack + zone.
  EXPECT_EQ(added, 4u);
  EXPECT_EQ(cluster->num_nodes(), 5u);
  EXPECT_TRUE(cluster->NodeAlive(4));
  EXPECT_EQ(cluster->placement_spec().topology.num_zones(), 3u);

  // Existing placement is untouched until a repair re-places; traffic
  // still serves exactly.
  const ClusterQueryResult before = cluster->Execute(full);
  ASSERT_TRUE(before.status.ok());
  EXPECT_TRUE(before.complete);
  EXPECT_EQ(before.matches, want);

  // Decommission node 1: routed around immediately, evacuated by repair.
  ASSERT_TRUE(cluster->RemoveNode(1).ok());
  EXPECT_EQ(cluster->NodeHealthOf(1), NodeHealth::kRemoved);
  EXPECT_EQ(cluster->RemoveNode(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster->ReviveNode(1).code(), StatusCode::kFailedPrecondition);

  const RepairReport report = cluster->Repair({}).value();
  ASSERT_TRUE(report.committed) << report.abort_reason;
  EXPECT_EQ(report.dead_nodes, std::vector<uint32_t>{1});
  EXPECT_GT(report.replicas_retargeted, 0u);

  // No replica assignment references the removed node, and the new node
  // picked up part of the evacuated load.
  const PlacementSpec spec = cluster->placement_spec();
  ASSERT_FALSE(spec.table.empty());
  uint64_t on_new_node = 0;
  for (const std::vector<uint32_t>& row : spec.table) {
    for (uint32_t n : row) {
      EXPECT_NE(n, 1u);
      if (n == 4u) ++on_new_node;
    }
  }
  EXPECT_GT(on_new_node, 0u);

  const ClusterQueryResult after = cluster->Execute(full);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_TRUE(after.complete);
  EXPECT_EQ(after.matches, want);

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("cluster.nodes_added")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("cluster.nodes_removed")->value(), 1u);
}

TEST(RepairTest, AddNodeNeedsAFreeSlot) {
  MemEnv env;
  CommitWideCatalog(&env);
  auto cluster = Cluster::Create(env, HealingOptions()).value();
  // Default max_nodes == num_nodes: no headroom.
  EXPECT_EQ(cluster->AddNode(2, 2).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------------

TEST(RepairTest, RetryBudgetCapsPerQueryFailovers) {
  // The budget caps failover *resubmits* — sub-queries that looked alive
  // at planning but failed at execution. Seeded permanent per-page faults
  // give exactly that: a route's primary dies mid-read and the mirror
  // serves the retry. Scan fault seeds for a query needing at least two
  // failovers; there the unlimited run completes while a budget of one
  // denies the second failover and flags the result partial.
  struct Run {
    bool created = false;
    bool complete = false;
    uint64_t denied = 0;
  };
  const auto run = [](uint32_t budget, uint64_t fault_seed) {
    Run out;
    MemEnv env;
    CommitWideCatalog(&env);
    ClusterOptions o = HealingOptions();
    o.retry_budget_per_query = budget;
    o.fault_seed = fault_seed;
    // A sub-query fails only when every local mirror copy of some page is
    // faulted (the service does inline copy-failover at read time), so the
    // per-page kill probability is prob^2 — hence the high prob.
    o.node_transient_prob = 0.2;
    o.node_max_transient_attempts = 1000000;  // Per-page faults stick.
    o.node.read.retry.max_attempts = 1;       // Services do not retry.
    auto cluster = Cluster::Create(env, o);
    if (!cluster.ok()) return out;  // Faults hit the catalog load itself.
    out.created = true;
    const ClusterQueryResult r =
        cluster.value()->Execute(Range({0.0, 0.0}, {1.0, 1.0}));
    if (!r.status.ok()) return out;
    out.complete = r.complete;
    obs::MetricsRegistry reg;
    cluster.value()->SnapshotMetrics(&reg);
    out.denied = reg.GetCounter("cluster.retry_budget_denied")->value();
    return out;
  };

  bool found = false;
  for (uint64_t seed = 1; seed <= 300 && !found; ++seed) {
    const Run unlimited = run(0, seed);
    if (!unlimited.created || !unlimited.complete) continue;
    EXPECT_EQ(unlimited.denied, 0u) << "seed " << seed;
    const Run capped = run(1, seed);
    ASSERT_TRUE(capped.created) << "seed " << seed;
    if (capped.denied == 0) continue;  // Fewer than two failovers needed.
    EXPECT_FALSE(capped.complete) << "seed " << seed;
    found = true;
  }
  EXPECT_TRUE(found)
      << "no fault seed in 1..300 produced a two-failover query";
}

TEST(RepairTest, HedgeBudgetDeniesExtrasWhenExhausted) {
  MemEnv env;
  CommitWideCatalog(&env);
  ClusterOptions options = HealingOptions();
  options.hedging = true;
  options.hedge_policy = HedgePolicy::kFirstSuccess;
  options.hedge_delay_ms = 0.1;
  options.hedge_budget_fraction = 1e-9;  // Effectively zero headroom.
  options.node_latency_ms = {0.0, 0.0, 0.0, 30.0};
  auto cluster = Cluster::Create(env, options).value();

  const ClusterQueryResult r =
      cluster->Execute(Range({0.0, 0.0}, {1.0, 1.0}));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.hedges_fired, 0u);  // Every hedge admit was denied.

  obs::MetricsRegistry reg;
  cluster->SnapshotMetrics(&reg);
  EXPECT_GE(reg.GetCounter("cluster.hedge_budget_denied")->value(), 1u);

  ClusterOptions bad = HealingOptions();
  bad.hedge_budget_fraction = -0.5;
  EXPECT_EQ(Cluster::Create(env, bad).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Repair torture: node loss at every phase
// ---------------------------------------------------------------------------

TEST(RepairTortureTest, SourceLossAtEveryPhaseAbortsAndRestoresPlacement) {
  // Kill a plan-time-live node at each phase boundary, across seeds. A
  // clean abort must restore the pre-stage state exactly: generation,
  // placement table, and every node's file set.
  for (const uint64_t seed : {1u, 2u}) {
    for (const std::string kill_at : {"copy", "staged", "verify", "commit"}) {
      MemEnv env;
      const Catalog catalog = CommitWideCatalog(&env, seed);
      auto cluster = Cluster::Create(env, HealingOptions()).value();
      ASSERT_TRUE(cluster->KillNode(0).ok());
      cluster->AdvanceTimeMs(60.0);

      std::vector<std::vector<std::string>> files_before;
      for (uint32_t n = 0; n < 4; ++n) {
        files_before.push_back(NodeFiles(cluster.get(), n));
      }
      const std::vector<std::vector<uint32_t>> table_before =
          cluster->placement_spec().table;

      RepairOptions ro;
      ro.on_phase = [&](const std::string& p) {
        if (p == kill_at) {
          ASSERT_TRUE(cluster->KillNode(1).ok());
        }
      };
      const RepairReport report = cluster->Repair(ro).value();
      EXPECT_FALSE(report.committed) << "seed " << seed << " at " << kill_at;
      EXPECT_EQ(report.abort_reason, "repair-source node lost")
          << "seed " << seed << " at " << kill_at;
      EXPECT_EQ(cluster->generation(), 1u);
      EXPECT_FALSE(cluster->migrating());
      EXPECT_EQ(cluster->placement_spec().table, table_before);
      for (uint32_t n = 0; n < 4; ++n) {
        EXPECT_EQ(NodeFiles(cluster.get(), n), files_before[n])
            << "seed " << seed << " at " << kill_at << ", node " << n;
      }

      // Zone 1 is intact, so the degraded old layout still serves the
      // truth — no silent wrong data after the abort.
      const serve::QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
      const ClusterQueryResult r = cluster->Execute(full);
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_TRUE(r.complete);
      EXPECT_EQ(r.matches, Direct(catalog, full));

      // Recovery: revive the lost source and the retry commits.
      ASSERT_TRUE(cluster->ReviveNode(1).ok());
      const RepairReport retry = cluster->Repair({}).value();
      EXPECT_TRUE(retry.committed) << retry.abort_reason;
      EXPECT_EQ(cluster->generation(), retry.new_generation);

      obs::MetricsRegistry reg;
      cluster->SnapshotMetrics(&reg);
      EXPECT_EQ(reg.GetCounter("cluster.repairs_aborted")->value(), 1u);
      EXPECT_EQ(reg.GetCounter("cluster.repairs_committed")->value(), 1u);
    }
  }
}

TEST(RepairTortureTest, ExternalAbortAndSecondRepairRefusal) {
  MemEnv env;
  CommitWideCatalog(&env);
  auto cluster = Cluster::Create(env, HealingOptions()).value();
  ASSERT_TRUE(cluster->KillNode(0).ok());
  cluster->AdvanceTimeMs(60.0);

  Status nested = Status::Ok();
  RepairOptions ro;
  ro.on_phase = [&](const std::string& p) {
    if (p == "staged") {
      nested = cluster->Repair({}).status();  // Single-flight with itself.
      cluster->AbortMigration();
    }
  };
  const RepairReport report = cluster->Repair(ro).value();
  EXPECT_FALSE(report.committed);
  EXPECT_EQ(report.abort_reason, "externally aborted");
  EXPECT_EQ(nested.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster->generation(), 1u);

  // The abort flag is consumed: a fresh repair commits.
  const RepairReport retry = cluster->Repair({}).value();
  EXPECT_TRUE(retry.committed) << retry.abort_reason;
}

TEST(RepairTortureTest, UnrecoverableLossRefusesToCommit) {
  // Chained placement on two-disk nodes self-colocates both copies of the
  // even disks; losing a whole zone with both zone-0 nodes loses disks
  // outright — repair must refuse, not fake a heal.
  MemEnv env;
  CommitWideCatalog(&env);
  ClusterOptions options = HealingOptions();
  PlacementSpec spec;
  spec.policy = PlacementPolicy::kChained;
  spec.topology = Topology::Grid(4, 2, 2).value();
  spec.seed = 7;
  options.placement = spec;
  auto cluster = Cluster::Create(env, options).value();
  ASSERT_TRUE(cluster->KillZone(0).ok());
  cluster->AdvanceTimeMs(60.0);
  const RepairReport report = cluster->Repair({}).value();
  EXPECT_FALSE(report.committed);
  EXPECT_NE(report.abort_reason.find("unrecoverable"), std::string::npos)
      << report.abort_reason;
  EXPECT_EQ(cluster->generation(), 1u);
}

// ---------------------------------------------------------------------------
// Script directives
// ---------------------------------------------------------------------------

TEST(RepairScriptTest, ParsesRepairAddNodeAndRemoveNode) {
  const auto commands = ParseClusterScript(
                            "repair\n"
                            "repair 50000\n"
                            "add-node 2 1\n"
                            "remove-node 3\n")
                            .value();
  ASSERT_EQ(commands.size(), 4u);
  EXPECT_EQ(commands[0].kind, ClusterCommand::Kind::kRepair);
  EXPECT_EQ(commands[0].repair_bytes_per_sec, 0.0);
  EXPECT_EQ(commands[1].kind, ClusterCommand::Kind::kRepair);
  EXPECT_EQ(commands[1].repair_bytes_per_sec, 50000.0);
  EXPECT_EQ(commands[2].kind, ClusterCommand::Kind::kAddNode);
  EXPECT_EQ(commands[2].add_rack, 2u);
  EXPECT_EQ(commands[2].add_zone, 1u);
  EXPECT_EQ(commands[3].kind, ClusterCommand::Kind::kRemoveNode);
  EXPECT_EQ(commands[3].node, 3u);

  EXPECT_FALSE(ParseClusterScript("repair -5\n").ok());
  EXPECT_FALSE(ParseClusterScript("repair 1 2\n").ok());
  EXPECT_FALSE(ParseClusterScript("add-node 1\n").ok());
  EXPECT_FALSE(ParseClusterScript("remove-node\n").ok());
}

}  // namespace
}  // namespace cluster
}  // namespace griddecl
