/// Randomized properties of `RouteQuery` under failure masks: for any
/// placement, query, and set of dead disks, the router must (a) succeed
/// exactly when every bucket keeps a live replica, (b) never assign a dead
/// disk or a non-replica disk, (c) realize a makespan that equals the max
/// per-disk load and respects the ceil(n / alive) lower bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "griddecl/common/math_util.h"
#include "griddecl/common/random.h"
#include "griddecl/eval/replica_router.h"
#include "griddecl/methods/registry.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

struct Trial {
  const char* method;
  uint32_t grid_side;
  uint32_t num_disks;
  uint32_t replicas;
};

TEST(ReplicaRouterPropertyTest, RandomFailureMasks) {
  const Trial trials[] = {
      {"dm", 8, 4, 1},   {"dm", 8, 4, 2},    {"dm", 16, 8, 3},
      {"fx", 16, 8, 2},  {"hcam", 16, 8, 2}, {"hcam", 8, 5, 3},
      {"linear", 8, 6, 2},
  };
  Rng rng(20260806);
  for (const Trial& trial : trials) {
    const GridSpec grid =
        GridSpec::Create({trial.grid_side, trial.grid_side}).value();
    auto base =
        CreateMethod(trial.method, grid, trial.num_disks).value();
    const ReplicatedPlacement placement =
        ReplicatedPlacement::Create(std::move(base), trial.replicas, 1)
            .value();
    QueryGenerator gen(grid);

    for (int round = 0; round < 20; ++round) {
      // Random failure mask, re-drawn until at least one disk survives.
      std::vector<bool> failed(trial.num_disks, false);
      uint32_t alive = 0;
      do {
        alive = 0;
        for (uint32_t d = 0; d < trial.num_disks; ++d) {
          failed[d] = rng.NextBool(0.35);
          alive += failed[d] ? 0 : 1;
        }
      } while (alive == 0);

      // Random query shape and position.
      const uint32_t w =
          static_cast<uint32_t>(rng.NextInRange(1, trial.grid_side));
      const uint32_t h =
          static_cast<uint32_t>(rng.NextInRange(1, trial.grid_side));
      Rng pos(rng.Next());
      const Workload one =
          gen.SampledPlacements({w, h}, 1, &pos, "prop").value();
      const RangeQuery& q = one.queries[0];

      // Ground truth: a query is routable iff every bucket keeps at least
      // one live replica.
      bool expect_routable = true;
      q.rect().ForEachBucket([&](const BucketCoords& c) {
        bool live = false;
        for (uint32_t d : placement.DisksOf(c)) live = live || !failed[d];
        expect_routable = expect_routable && live;
      });

      const Result<RoutedQuery> routed = RouteQuery(placement, q, &failed);
      ASSERT_EQ(routed.ok(), expect_routable)
          << trial.method << " round " << round;
      if (!routed.ok()) {
        EXPECT_EQ(routed.status().code(), StatusCode::kUnsupported);
        continue;
      }

      const RoutedQuery& r = routed.value();
      const uint64_t n = q.NumBuckets();
      EXPECT_EQ(r.lower_bound, CeilDiv(n, alive));
      EXPECT_GE(r.response, r.lower_bound);
      ASSERT_EQ(r.assignment.size(), n);

      std::map<uint32_t, uint64_t> load;
      uint64_t i = 0;
      q.rect().ForEachBucket([&](const BucketCoords& c) {
        const uint32_t d = r.assignment[static_cast<size_t>(i++)];
        EXPECT_FALSE(failed[d]);  // Never a dead disk.
        const std::vector<uint32_t> replicas = placement.DisksOf(c);
        EXPECT_NE(std::find(replicas.begin(), replicas.end(), d),
                  replicas.end());  // Always one of the bucket's replicas.
        ++load[d];
      });
      uint64_t max_load = 0;
      for (const auto& [disk, count] : load) {
        max_load = std::max(max_load, count);
      }
      // The reported response is realized exactly (it is the optimum, so
      // no assignment can beat it, and the extracted one achieves it).
      EXPECT_EQ(max_load, r.response);
    }
  }
}

}  // namespace
}  // namespace griddecl
