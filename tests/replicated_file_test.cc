#include "griddecl/gridfile/replicated_file.h"

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/gridfile/declustered_file.h"

namespace griddecl {
namespace {

GridFile MakeLoadedFile(int num_records, uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {16, 16}).value();
  Rng rng(seed);
  for (int i = 0; i < num_records; ++i) {
    EXPECT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  return f;
}

TEST(ReplicatedFileTest, CreateValidation) {
  EXPECT_FALSE(ReplicatedFile::Create(MakeLoadedFile(1, 1), "bogus", 8, 2)
                   .ok());
  EXPECT_FALSE(
      ReplicatedFile::Create(MakeLoadedFile(1, 1), "hcam", 8, 9).ok());
  const auto ok = ReplicatedFile::Create(MakeLoadedFile(1, 1), "hcam", 8, 2);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().num_disks(), 8u);
  EXPECT_EQ(ok.value().num_replicas(), 2u);
}

TEST(ReplicatedFileTest, MatchesAreExactAndCostsRouted) {
  ReplicatedFile rf =
      ReplicatedFile::Create(MakeLoadedFile(400, 2), "hcam", 8, 2).value();
  const auto exec = rf.ExecuteRange({0.2, 0.1}, {0.7, 0.6}).value();
  // Exact record semantics.
  uint64_t expected = 0;
  for (RecordId id = 0; id < rf.file().num_records(); ++id) {
    const Record& r = rf.file().record(id);
    if (r[0] >= 0.2 && r[0] <= 0.7 && r[1] >= 0.1 && r[1] <= 0.6) {
      ++expected;
    }
  }
  EXPECT_EQ(exec.matches.size(), expected);
  // Routed cost relationships.
  EXPECT_GE(exec.response_units, exec.lower_bound_units);
  EXPECT_LE(exec.response_units, exec.buckets_touched);
  EXPECT_EQ(exec.io.TotalRequests(), exec.buckets_touched);
}

TEST(ReplicatedFileTest, RoutingBeatsOrMatchesUnreplicatedCost) {
  // Same data, same base method: the replicated file's routed response is
  // never worse than the unreplicated DeclusteredFile's.
  GridFile data1 = MakeLoadedFile(300, 3);
  GridFile data2 = MakeLoadedFile(300, 3);  // Same seed -> same records.
  ReplicatedFile rf =
      ReplicatedFile::Create(std::move(data1), "dm", 8, 2).value();
  DeclusteredFile df =
      DeclusteredFile::Create(std::move(data2), "dm", 8).value();
  for (double lo = 0.0; lo < 0.6; lo += 0.17) {
    const auto routed =
        rf.ExecuteRange({lo, lo}, {lo + 0.3, lo + 0.3}).value();
    const auto flat =
        df.ExecuteRange({lo, lo}, {lo + 0.3, lo + 0.3}).value();
    EXPECT_LE(routed.response_units, flat.response_units) << lo;
    EXPECT_EQ(routed.matches.size(), flat.matches.size()) << lo;
  }
}

TEST(ReplicatedFileTest, DegradedModeStillAnswersExactly) {
  ReplicatedFile rf =
      ReplicatedFile::Create(MakeLoadedFile(250, 4), "hcam", 8, 2).value();
  std::vector<bool> failed(8, false);
  failed[2] = true;
  const auto healthy = rf.ExecuteRange({0.1, 0.1}, {0.9, 0.9}).value();
  const auto degraded =
      rf.ExecuteRange({0.1, 0.1}, {0.9, 0.9}, &failed).value();
  EXPECT_EQ(degraded.matches.size(), healthy.matches.size());
  EXPECT_GE(degraded.response_units, healthy.response_units);
  // The dead disk serves nothing in the timed schedule either.
  EXPECT_EQ(degraded.io.per_disk[2].requests, 0u);
}

TEST(ReplicatedFileTest, StorageBillCountsReplicas) {
  ReplicatedFile rf =
      ReplicatedFile::Create(MakeLoadedFile(100, 5), "fx", 8, 3).value();
  uint64_t total = 0;
  for (uint64_t c : rf.RecordsPerDisk()) total += c;
  EXPECT_EQ(total, 300u);  // 3 replicas x 100 records.
}

}  // namespace
}  // namespace griddecl
