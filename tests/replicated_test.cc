#include "griddecl/eval/replica_router.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "griddecl/common/math_util.h"
#include "griddecl/common/random.h"
#include "griddecl/eval/metrics.h"
#include "griddecl/methods/registry.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

ReplicatedPlacement MakeChained(const char* base_name, const GridSpec& grid,
                                uint32_t m, uint32_t replicas) {
  auto base = CreateMethod(base_name, grid, m).value();
  return ReplicatedPlacement::Create(std::move(base), replicas, 1).value();
}

TEST(ReplicatedPlacementTest, Validation) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  EXPECT_FALSE(
      ReplicatedPlacement::Create(nullptr, 2).ok());
  auto base1 = CreateMethod("dm", grid, 4).value();
  EXPECT_FALSE(ReplicatedPlacement::Create(std::move(base1), 5).ok());
  auto base2 = CreateMethod("dm", grid, 4).value();
  EXPECT_FALSE(ReplicatedPlacement::Create(std::move(base2), 0).ok());
  auto base3 = CreateMethod("dm", grid, 4).value();
  // offset 2 with r=3 on M=4: disks {d, d+2, d+4=d} collide.
  EXPECT_FALSE(ReplicatedPlacement::Create(std::move(base3), 3, 2).ok());
  auto base4 = CreateMethod("dm", grid, 4).value();
  EXPECT_TRUE(ReplicatedPlacement::Create(std::move(base4), 2, 2).ok());
}

TEST(ReplicatedPlacementTest, DisksDistinctAndPrimaryFirst) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const ReplicatedPlacement p = MakeChained("hcam", grid, 8, 3);
  const auto base = CreateMethod("hcam", grid, 8).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    const std::vector<uint32_t> disks = p.DisksOf(c);
    ASSERT_EQ(disks.size(), 3u);
    EXPECT_EQ(disks[0], base->DiskOf(c));
    std::set<uint32_t> unique(disks.begin(), disks.end());
    EXPECT_EQ(unique.size(), 3u);
    for (uint32_t d : disks) EXPECT_LT(d, 8u);
  });
}

TEST(ReplicatedPlacementTest, StorageBlowupIsExactlyR) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const ReplicatedPlacement p = MakeChained("fx", grid, 8, 2);
  uint64_t total = 0;
  for (uint64_t l : p.DiskLoadHistogram()) total += l;
  EXPECT_EQ(total, 2 * grid.num_buckets());
}

TEST(ReplicaRouterTest, SingleReplicaEqualsBaseMetric) {
  // r = 1 leaves no routing freedom: response == the paper's metric.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const ReplicatedPlacement p = MakeChained("dm", grid, 8, 1);
  const auto base = CreateMethod("dm", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w = gen.SampledPlacements({3, 5}, 40, &rng, "w").value();
  for (const RangeQuery& q : w.queries) {
    const RoutedQuery routed = RouteQuery(p, q).value();
    EXPECT_EQ(routed.response, ResponseTime(*base, q));
  }
}

TEST(ReplicaRouterTest, TwoReplicasNeverWorseOftenBetter) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const ReplicatedPlacement p2 = MakeChained("dm", grid, 8, 2);
  const auto base = CreateMethod("dm", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(2);
  const Workload w = gen.SampledPlacements({4, 4}, 60, &rng, "w").value();
  uint64_t strictly_better = 0;
  for (const RangeQuery& q : w.queries) {
    const RoutedQuery routed = RouteQuery(p2, q).value();
    const uint64_t base_rt = ResponseTime(*base, q);
    EXPECT_LE(routed.response, base_rt);
    EXPECT_GE(routed.response, routed.lower_bound);
    strictly_better += routed.response < base_rt ? 1 : 0;
  }
  // DM is far from optimal on 4x4 squares; routing freedom must help on
  // most placements.
  EXPECT_GT(strictly_better, 30u);
}

TEST(ReplicaRouterTest, AssignmentIsConsistent) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const ReplicatedPlacement p = MakeChained("hcam", grid, 4, 2);
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Create({1, 1}, {4, 5}).value())
          .value();
  const RoutedQuery routed = RouteQuery(p, q).value();
  ASSERT_EQ(routed.assignment.size(), q.NumBuckets());
  // Every assigned disk is one of the bucket's replicas; per-disk loads
  // realize the claimed response.
  std::vector<uint64_t> loads(4, 0);
  size_t i = 0;
  q.rect().ForEachBucket([&](const BucketCoords& c) {
    const uint32_t disk = routed.assignment[i++];
    const auto disks = p.DisksOf(c);
    EXPECT_NE(std::find(disks.begin(), disks.end(), disk), disks.end());
    ++loads[disk];
  });
  EXPECT_EQ(*std::max_element(loads.begin(), loads.end()), routed.response);
}

TEST(ReplicaRouterTest, MatchesBruteForceOnTinyQueries) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const ReplicatedPlacement p = MakeChained("random", grid, 3, 2);
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 3}, "w").value();
  for (const RangeQuery& q : w.queries) {
    const RoutedQuery routed = RouteQuery(p, q).value();
    // Brute force over all 2^6 replica choices.
    std::vector<std::vector<uint32_t>> choices;
    q.rect().ForEachBucket(
        [&](const BucketCoords& c) { choices.push_back(p.DisksOf(c)); });
    uint64_t best = q.NumBuckets();
    const size_t n = choices.size();
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      std::vector<uint64_t> loads(3, 0);
      for (size_t b = 0; b < n; ++b) {
        ++loads[choices[b][(mask >> b) & 1]];
      }
      best = std::min(best,
                      *std::max_element(loads.begin(), loads.end()));
    }
    EXPECT_EQ(routed.response, best) << q.ToString();
  }
}

TEST(ReplicaRouterTest, DegradedModeRoutesAroundFailure) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const ReplicatedPlacement p = MakeChained("hcam", grid, 8, 2);
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Create({0, 0}, {7, 7}).value())
          .value();
  std::vector<bool> failed(8, false);
  failed[3] = true;
  const RoutedQuery routed = RouteQuery(p, q, &failed).value();
  // Nothing lands on the failed disk.
  for (uint32_t d : routed.assignment) EXPECT_NE(d, 3u);
  // Cost respects the reduced-parallelism lower bound.
  EXPECT_GE(routed.response, CeilDiv(q.NumBuckets(), 7));
}

TEST(ReplicaRouterTest, UnroutableWhenAllReplicasDead) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const ReplicatedPlacement p = MakeChained("dm", grid, 4, 2);
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Full(grid)).value();
  // Chained r=2 stores bucket on d and d+1: killing disks 0 and 1 makes
  // buckets with primary 0 unroutable.
  std::vector<bool> failed(4, false);
  failed[0] = true;
  failed[1] = true;
  const auto result = RouteQuery(p, q, &failed);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);

  // A single failure is always survivable with r = 2.
  std::vector<bool> one(4, false);
  one[0] = true;
  EXPECT_TRUE(RouteQuery(p, q, &one).ok());
}

TEST(ReplicaRouterTest, ValidationErrors) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  const ReplicatedPlacement p = MakeChained("dm", grid, 4, 2);
  const RangeQuery q =
      RangeQuery::Create(grid, BucketRect::Point({0, 0})).value();
  std::vector<bool> wrong_size(3, false);
  EXPECT_FALSE(RouteQuery(p, q, &wrong_size).ok());
  std::vector<bool> all_dead(4, true);
  EXPECT_FALSE(RouteQuery(p, q, &all_dead).ok());
  EXPECT_FALSE(MeanRoutedResponse(p, {}).ok());
}

TEST(ReplicaRouterTest, MeanRoutedResponseAggregates) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const ReplicatedPlacement p = MakeChained("dm", grid, 4, 2);
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 2}, "w").value();
  const RoutedWorkloadSummary s = MeanRoutedResponse(p, w.queries).value();
  EXPECT_GE(s.mean_response, 1.0);
  EXPECT_LE(s.mean_response, 4.0);
  EXPECT_EQ(s.routable, w.size());
  EXPECT_EQ(s.unroutable, 0u);
  EXPECT_DOUBLE_EQ(s.Availability(), 1.0);
}

TEST(ReplicaRouterTest, MeanRoutedResponseDegradesGracefully) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const ReplicatedPlacement p = MakeChained("dm", grid, 4, 2);
  // One full-grid query (loses buckets when disks 0 and 1 die) plus one
  // point query on a surviving pair.
  const RangeQuery whole =
      RangeQuery::Create(grid, BucketRect::Full(grid)).value();
  const RangeQuery point =
      RangeQuery::Create(grid, BucketRect::Point({2, 0})).value();
  std::vector<bool> failed(4, false);
  failed[0] = true;
  failed[1] = true;
  const RoutedWorkloadSummary s =
      MeanRoutedResponse(p, {whole, point}, &failed).value();
  EXPECT_EQ(s.unroutable, 1u);
  EXPECT_EQ(s.routable, 1u);
  EXPECT_DOUBLE_EQ(s.Availability(), 0.5);
  EXPECT_GE(s.mean_response, 1.0);
  // A genuine error (mis-sized mask) still fails the call.
  std::vector<bool> wrong(3, false);
  EXPECT_FALSE(MeanRoutedResponse(p, {whole}, &wrong).ok());
}

TEST(ReplicatedPlacementTest, TableDrivenPlacementOverridesArithmetic) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  // An arbitrary (non-arithmetic) table: primary first, mate from the
  // "other half" of the disks.
  std::vector<std::vector<uint32_t>> table;
  for (uint32_t d = 0; d < 4; ++d) {
    table.push_back({d, 3 - d});  // mirror-image mate, never the primary
  }
  auto base = CreateMethod("dm", grid, 4).value();
  const ReplicatedPlacement p =
      ReplicatedPlacement::CreateWithTable(std::move(base), table).value();
  EXPECT_EQ(p.num_replicas(), 2u);
  const auto check = CreateMethod("dm", grid, 4).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(p.DisksOf(c), table[check->DiskOf(c)]);
  });
  // DiskLoadHistogram walks the table rows, not the offset arithmetic.
  uint64_t total = 0;
  for (uint64_t l : p.DiskLoadHistogram()) total += l;
  EXPECT_EQ(total, 2 * grid.num_buckets());
}

TEST(ReplicatedPlacementTest, TableValidation) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  auto make = [&] { return CreateMethod("dm", grid, 4).value(); };
  EXPECT_FALSE(
      ReplicatedPlacement::CreateWithTable(nullptr, {{0}, {1}, {2}, {3}})
          .ok());
  // Wrong row count for M=4.
  EXPECT_FALSE(
      ReplicatedPlacement::CreateWithTable(make(), {{0}, {1}}).ok());
  // Row 1 does not start with its primary.
  EXPECT_FALSE(ReplicatedPlacement::CreateWithTable(
                   make(), {{0, 1}, {2, 1}, {2, 3}, {3, 0}})
                   .ok());
  // Duplicate disk within a row.
  EXPECT_FALSE(ReplicatedPlacement::CreateWithTable(
                   make(), {{0, 0}, {1, 2}, {2, 3}, {3, 0}})
                   .ok());
  // Out-of-range disk.
  EXPECT_FALSE(ReplicatedPlacement::CreateWithTable(
                   make(), {{0, 9}, {1, 2}, {2, 3}, {3, 0}})
                   .ok());
  // Ragged rows.
  EXPECT_FALSE(ReplicatedPlacement::CreateWithTable(
                   make(), {{0, 1}, {1}, {2, 3}, {3, 0}})
                   .ok());
  EXPECT_TRUE(ReplicatedPlacement::CreateWithTable(
                  make(), {{0, 2}, {1, 3}, {2, 0}, {3, 1}})
                  .ok());
}

}  // namespace
}  // namespace griddecl
