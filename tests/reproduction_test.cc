#include "griddecl/eval/reproduction.h"

#include <sstream>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(ReproductionTest, RunsAndEmitsEverySection) {
  std::ostringstream os;
  ReproductionOptions opts;
  opts.max_placements = 128;  // Keep the smoke test fast.
  opts.theory_max_nodes = 1'000'000;
  ASSERT_TRUE(RunPaperReproduction(os, opts).ok());
  const std::string out = os.str();
  for (const char* marker :
       {"E1: query size", "E2: query shape", "E3: 3 attributes",
        "E4 / Fig 5(a)", "E5 / Fig 5(b)", "E6: database size",
        "E7 / Table 1", "E8: impossibility"}) {
    EXPECT_NE(out.find(marker), std::string::npos) << marker;
  }
  // The theorem section must contain definitive answers.
  EXPECT_NE(out.find("exhaustive proof"), std::string::npos);
  EXPECT_NE(out.find("YES"), std::string::npos);
  EXPECT_NE(out.find("NO"), std::string::npos);
}

TEST(ReproductionTest, TheorySectionOptional) {
  std::ostringstream os;
  ReproductionOptions opts;
  opts.max_placements = 64;
  opts.include_theory = false;
  ASSERT_TRUE(RunPaperReproduction(os, opts).ok());
  EXPECT_EQ(os.str().find("E8:"), std::string::npos);
  EXPECT_NE(os.str().find("E7"), std::string::npos);
}

TEST(ReproductionTest, DeterministicForSeed) {
  ReproductionOptions opts;
  opts.max_placements = 64;
  opts.include_theory = false;
  std::ostringstream a;
  std::ostringstream b;
  ASSERT_TRUE(RunPaperReproduction(a, opts).ok());
  ASSERT_TRUE(RunPaperReproduction(b, opts).ok());
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace griddecl
