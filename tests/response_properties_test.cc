#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/eval/metrics.h"
#include "griddecl/methods/registry.h"

namespace griddecl {
namespace {

/// Cross-method invariants of the response-time metric itself, checked on
/// randomized queries for every registry method.
class ResponsePropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr uint32_t kDisks = 8;

  std::unique_ptr<DeclusteringMethod> MakeMethod(const GridSpec& grid) {
    auto m = CreateMethod(GetParam(), grid, kDisks);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return std::move(m).value();
  }

  static RangeQuery MakeQuery(const GridSpec& grid, BucketCoords lo,
                              BucketCoords hi) {
    return RangeQuery::Create(grid, BucketRect::Create(lo, hi).value())
        .value();
  }
};

TEST_P(ResponsePropertyTest, PointQueriesAlwaysCostOne) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto m = MakeMethod(grid);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    BucketCoords c(2);
    c[0] = static_cast<uint32_t>(rng.NextBelow(16));
    c[1] = static_cast<uint32_t>(rng.NextBelow(16));
    EXPECT_EQ(ResponseTime(*m, MakeQuery(grid, c, c)), 1u);
  }
}

TEST_P(ResponsePropertyTest, MonotoneUnderContainment) {
  // Growing a query can never shrink its response time: per-disk counts
  // are monotone under superset.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto m = MakeMethod(grid);
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const uint32_t lo0 = static_cast<uint32_t>(rng.NextBelow(8));
    const uint32_t lo1 = static_cast<uint32_t>(rng.NextBelow(8));
    const uint32_t inner0 = lo0 + 1 + static_cast<uint32_t>(rng.NextBelow(4));
    const uint32_t inner1 = lo1 + 1 + static_cast<uint32_t>(rng.NextBelow(4));
    const uint32_t outer0 = inner0 + static_cast<uint32_t>(rng.NextBelow(4));
    const uint32_t outer1 = inner1 + static_cast<uint32_t>(rng.NextBelow(4));
    const RangeQuery inner = MakeQuery(grid, {lo0, lo1}, {inner0, inner1});
    const RangeQuery outer =
        MakeQuery(grid, {lo0, lo1},
                  {std::min(outer0, 15u), std::min(outer1, 15u)});
    EXPECT_LE(ResponseTime(*m, inner), ResponseTime(*m, outer));
  }
}

TEST_P(ResponsePropertyTest, BoundedByVolumeAndOptimal) {
  // Power-of-two sides so every method (incl. ECC) is constructible.
  const GridSpec grid = GridSpec::Create({16, 32}).value();
  const auto m = MakeMethod(grid);
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const uint32_t a0 = static_cast<uint32_t>(rng.NextBelow(16));
    const uint32_t a1 = static_cast<uint32_t>(rng.NextBelow(32));
    const uint32_t b0 =
        a0 + static_cast<uint32_t>(rng.NextBelow(16 - a0));
    const uint32_t b1 =
        a1 + static_cast<uint32_t>(rng.NextBelow(32 - a1));
    const RangeQuery q = MakeQuery(grid, {a0, a1}, {b0, b1});
    const uint64_t rt = ResponseTime(*m, q);
    EXPECT_GE(rt, OptimalResponseTime(q.NumBuckets(), kDisks));
    EXPECT_LE(rt, q.NumBuckets());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ResponsePropertyTest,
    ::testing::Values("dm", "gdm", "fx", "exfx", "ecc", "hcam", "zcam",
                      "linear", "random"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(TranslationInvarianceTest, DmInvariantUnderShiftByM) {
  // (x + M + y) mod M == (x + y) mod M: translating a query by M along any
  // axis reproduces the exact per-disk counts.
  const GridSpec grid = GridSpec::Create({24, 24}).value();
  const auto dm = CreateMethod("dm", grid, 8).value();
  for (uint32_t x0 : {0u, 3u, 7u}) {
    for (uint32_t y0 : {0u, 5u}) {
      const RangeQuery base = RangeQuery::Create(
          grid, BucketRect::Create({x0, y0}, {x0 + 4, y0 + 6}).value())
          .value();
      const RangeQuery shifted = RangeQuery::Create(
          grid, BucketRect::Create({x0 + 8, y0}, {x0 + 12, y0 + 6}).value())
          .value();
      EXPECT_EQ(PerDiskCounts(*dm, base), PerDiskCounts(*dm, shifted));
    }
  }
}

TEST(TranslationInvarianceTest, FxInvariantUnderShiftByM) {
  // For M = 2^m, adding M to a coordinate leaves its low m bits unchanged,
  // so FX's per-disk counts are invariant under shifts by M.
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto fx = CreateMethod("fx", grid, 8).value();
  for (uint32_t x0 : {1u, 4u, 9u}) {
    const RangeQuery base = RangeQuery::Create(
        grid, BucketRect::Create({x0, 2}, {x0 + 5, 9}).value())
        .value();
    const RangeQuery shifted = RangeQuery::Create(
        grid, BucketRect::Create({x0 + 8, 2}, {x0 + 13, 9}).value())
        .value();
    EXPECT_EQ(PerDiskCounts(*fx, base), PerDiskCounts(*fx, shifted));
  }
}

TEST(TranslationInvarianceTest, EccPermutesDisksUnderAlignedShift) {
  // Translating an aligned query by a power of two XORs a constant into
  // every bucket's coordinate bits, which offsets every syndrome by the
  // same constant: the multiset of per-disk counts is preserved even
  // though disk identities permute.
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto ecc = CreateMethod("ecc", grid, 8).value();
  // Aligned 8x8 blocks: translation by 8 or 16 flips exactly one bit of
  // the high coordinate part for every covered bucket.
  const RangeQuery base = RangeQuery::Create(
      grid, BucketRect::Create({0, 8}, {7, 15}).value())
      .value();
  const RangeQuery shifted = RangeQuery::Create(
      grid, BucketRect::Create({16, 8}, {23, 15}).value())
      .value();
  std::vector<uint64_t> a = PerDiskCounts(*ecc, base);
  std::vector<uint64_t> b = PerDiskCounts(*ecc, shifted);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace griddecl
