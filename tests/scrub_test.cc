#include "griddecl/gridfile/scrub.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/common/crc32c.h"
#include "griddecl/common/random.h"

namespace griddecl {
namespace {

GridFile MakeFile(int num_records, uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {8, 8}).value();
  Rng rng(seed);
  for (int i = 0; i < num_records; ++i) {
    EXPECT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  return f;
}

/// One-relation catalog saved with the given redundancy; small pages so a
/// relation spans many pages.
MemEnv MakeEnv(RelationRedundancy redundancy, uint64_t seed = 50) {
  Catalog catalog(4);
  EXPECT_TRUE(catalog
                  .AddRelation("r", DeclusteredFile::Create(
                                        MakeFile(120, seed), "dm", 4)
                                        .value())
                  .ok());
  MemEnv env;
  ManifestSaveOptions options;
  options.page_size_bytes = 168;  // 8 records per page -> 15 pages.
  options.default_redundancy = redundancy;
  EXPECT_TRUE(SaveCatalogManifest(catalog, &env, options).ok());
  return env;
}

RelationRedundancy Mirror(uint32_t copies = 2) {
  RelationRedundancy r;
  r.policy = RelationRedundancy::Policy::kMirror;
  r.copies = copies;
  return r;
}

RelationRedundancy Parity(uint32_t group_pages = 4) {
  RelationRedundancy r;
  r.policy = RelationRedundancy::Policy::kParity;
  r.group_pages = group_pages;
  return r;
}

TEST(ScrubTest, CleanCatalogScansClean) {
  MemEnv env = MakeEnv(Mirror());
  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(report.relations_scanned, 1u);
  EXPECT_EQ(report.relations_clean, 1u);
  EXPECT_EQ(report.pages_scanned, 15u);
  EXPECT_EQ(report.pages_repaired, 0u);
  EXPECT_EQ(report.sidecars_healed, 0u);
}

TEST(ScrubTest, MirrorRepairsDamagedPageBitIdentically) {
  MemEnv env = MakeEnv(Mirror());
  const CatalogManifest m = ReadCurrentManifest(env).value();
  const std::string pristine = env.ReadFile(m.DataFileName(0)).value();
  const FileLayout layout = ParseFileLayout(pristine).value();

  // Smash bytes in two separate pages of the primary.
  ASSERT_TRUE(env.CorruptByte(m.DataFileName(0),
                              layout.PageOffset(2) + 17, 0xFF).ok());
  ASSERT_TRUE(env.CorruptByte(m.DataFileName(0),
                              layout.PageOffset(9) + 60, 0x01).ok());
  EXPECT_FALSE(LoadCatalogManifest(env).ok());

  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(report.relations_repaired, 1u);
  EXPECT_EQ(report.pages_repaired, 2u);
  EXPECT_EQ(report.pages_unrepairable, 0u);
  // Bit-identical restoration.
  EXPECT_EQ(env.ReadFile(m.DataFileName(0)).value(), pristine);
  EXPECT_TRUE(LoadCatalogManifest(env).ok());
}

TEST(ScrubTest, ParityRepairsOnePagePerStripe) {
  MemEnv env = MakeEnv(Parity(4));
  const CatalogManifest m = ReadCurrentManifest(env).value();
  const std::string pristine = env.ReadFile(m.DataFileName(0)).value();
  const FileLayout layout = ParseFileLayout(pristine).value();

  // One damaged page in each of three different stripes.
  for (uint64_t page : {1u, 6u, 14u}) {
    ASSERT_TRUE(env.CorruptByte(m.DataFileName(0),
                                layout.PageOffset(page) + 33, 0x80).ok());
  }
  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(report.pages_repaired, 3u);
  EXPECT_EQ(env.ReadFile(m.DataFileName(0)).value(), pristine);
}

TEST(ScrubTest, ParityCannotRepairTwoPagesInOneStripe) {
  MemEnv env = MakeEnv(Parity(4));
  const CatalogManifest m = ReadCurrentManifest(env).value();
  const std::string pristine = env.ReadFile(m.DataFileName(0)).value();
  const FileLayout layout = ParseFileLayout(pristine).value();

  // Pages 0 and 1 share stripe 0: past parity's single-failure budget.
  ASSERT_TRUE(env.CorruptByte(m.DataFileName(0),
                              layout.PageOffset(0) + 9, 0x40).ok());
  ASSERT_TRUE(env.CorruptByte(m.DataFileName(0),
                              layout.PageOffset(1) + 9, 0x40).ok());
  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_FALSE(report.Clean());
  EXPECT_EQ(report.relations_unrepairable, 1u);
  EXPECT_EQ(report.pages_unrepairable, 2u);
  // The damaged primary was NOT overwritten with non-matching bytes, and
  // the strict loader still refuses it: never silently wrong data.
  EXPECT_FALSE(LoadCatalogManifest(env).ok());
}

TEST(ScrubTest, UnprotectedCorruptionIsReportedNotRepaired) {
  MemEnv env = MakeEnv(RelationRedundancy{});  // Policy kNone.
  const CatalogManifest m = ReadCurrentManifest(env).value();
  const FileLayout layout =
      ParseFileLayout(env.ReadFile(m.DataFileName(0)).value()).value();
  ASSERT_TRUE(env.CorruptByte(m.DataFileName(0),
                              layout.PageOffset(5) + 12, 0x02).ok());
  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_FALSE(report.Clean());
  EXPECT_EQ(report.relations_unrepairable, 1u);
  EXPECT_EQ(report.pages_repaired, 0u);
  EXPECT_FALSE(LoadCatalogManifest(env).ok());
}

TEST(ScrubTest, FooterDamageRepairsEvenWithoutRedundancy) {
  // The v2 footer is a pure function of the body, so scrub recomputes it
  // even for an unprotected relation.
  MemEnv env = MakeEnv(RelationRedundancy{});
  const CatalogManifest m = ReadCurrentManifest(env).value();
  const std::string pristine = env.ReadFile(m.DataFileName(0)).value();
  const FileLayout layout = ParseFileLayout(pristine).value();
  ASSERT_TRUE(
      env.CorruptByte(m.DataFileName(0), layout.footer_offset + 7, 0xFF)
          .ok());
  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_TRUE(report.Clean());
  ASSERT_EQ(report.relations.size(), 1u);
  EXPECT_TRUE(report.relations[0].footer_rebuilt);
  EXPECT_EQ(env.ReadFile(m.DataFileName(0)).value(), pristine);
}

TEST(ScrubTest, HeaderDamageRepairsFromMirror) {
  MemEnv env = MakeEnv(Mirror());
  const CatalogManifest m = ReadCurrentManifest(env).value();
  const std::string pristine = env.ReadFile(m.DataFileName(0)).value();
  // Smash the magic itself.
  ASSERT_TRUE(env.CorruptByte(m.DataFileName(0), 0, 0xFF).ok());
  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_TRUE(report.Clean());
  ASSERT_EQ(report.relations.size(), 1u);
  EXPECT_TRUE(report.relations[0].header_repaired);
  EXPECT_EQ(env.ReadFile(m.DataFileName(0)).value(), pristine);
}

TEST(ScrubTest, HeaderDamageWithoutMirrorIsUnrepairable) {
  MemEnv env = MakeEnv(Parity(4));  // Parity covers pages, not the header.
  const CatalogManifest m = ReadCurrentManifest(env).value();
  ASSERT_TRUE(env.CorruptByte(m.DataFileName(0), 0, 0xFF).ok());
  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_FALSE(report.Clean());
  ASSERT_EQ(report.relations.size(), 1u);
  EXPECT_TRUE(report.relations[0].unrepairable);
}

TEST(ScrubTest, DamagedMirrorIsHealedFromPrimary) {
  MemEnv env = MakeEnv(Mirror());
  const CatalogManifest m = ReadCurrentManifest(env).value();
  const std::string mirror_name = m.MirrorFileName(0, 1);
  const std::string pristine = env.ReadFile(mirror_name).value();
  ASSERT_TRUE(env.CorruptByte(mirror_name, 777, 0x11).ok());
  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(report.relations_clean, 1u);  // Primary was never damaged.
  EXPECT_EQ(report.sidecars_healed, 1u);
  EXPECT_EQ(env.ReadFile(mirror_name).value(), pristine);
}

TEST(ScrubTest, DamagedParitySidecarIsRebuilt) {
  MemEnv env = MakeEnv(Parity(4));
  const CatalogManifest m = ReadCurrentManifest(env).value();
  const std::string parity_name = m.ParityFileName(0);
  const std::string pristine = env.ReadFile(parity_name).value();
  ASSERT_TRUE(env.CorruptByte(parity_name, 10, 0x08).ok());
  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(report.sidecars_healed, 1u);
  EXPECT_EQ(env.ReadFile(parity_name).value(), pristine);
}

TEST(ScrubTest, MissingPrimaryRestoresFromMirror) {
  MemEnv env = MakeEnv(Mirror());
  const CatalogManifest m = ReadCurrentManifest(env).value();
  const std::string pristine = env.ReadFile(m.DataFileName(0)).value();
  ASSERT_TRUE(env.Remove(m.DataFileName(0)).ok());
  const ScrubReport report = ScrubCatalog(&env).value();
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(env.ReadFile(m.DataFileName(0)).value(), pristine);
}

TEST(ScrubTest, DryRunDetectsButDoesNotWrite) {
  MemEnv env = MakeEnv(Mirror());
  const CatalogManifest m = ReadCurrentManifest(env).value();
  const FileLayout layout =
      ParseFileLayout(env.ReadFile(m.DataFileName(0)).value()).value();
  ASSERT_TRUE(env.CorruptByte(m.DataFileName(0),
                              layout.PageOffset(3) + 25, 0x04).ok());
  const std::string damaged = env.ReadFile(m.DataFileName(0)).value();
  ScrubOptions options;
  options.repair = false;
  const ScrubReport report = ScrubCatalog(&env, options).value();
  EXPECT_EQ(report.pages_repaired, 1u);  // Would repair...
  EXPECT_EQ(env.ReadFile(m.DataFileName(0)).value(), damaged);  // ...didn't.
}

TEST(ScrubTest, ReportFormatting) {
  MemEnv env = MakeEnv(Mirror());
  const std::string text = FormatScrubReport(ScrubCatalog(&env).value());
  EXPECT_NE(text.find("1 relation(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("catalog verified intact"), std::string::npos) << text;
}

}  // namespace
}  // namespace griddecl
