#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/gridfile/catalog.h"
#include "griddecl/gridfile/declustered_file.h"
#include "griddecl/serve/service.h"

/// Deterministic multi-threaded chaos soak for the query service.
///
/// The determinism contract under test (serve/service.h): with a seeded
/// FaultyEnv, a fixed fault schedule, no deadlines, a queue deep enough
/// not to shed, retries that outlast transients, and breakers pinned open
/// once tripped, per-query *outcomes* (status + matches) are a pure
/// function of the fault schedule — independent of worker count and thread
/// interleaving. Retry/failover counts may vary with interleaving and are
/// deliberately not asserted.

namespace griddecl {
namespace serve {
namespace {

GridFile MakeClusteredFile(uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {4, 4}).value();
  const GridSpec grid = f.grid();
  Rng rng(seed);
  for (uint64_t b = 0; b < grid.num_buckets(); ++b) {
    const BucketCoords c = grid.Delinearize(b);
    for (uint32_t k = 0; k < 8; ++k) {
      const std::vector<double> point = {
          (c[0] + rng.NextDouble()) / 4.0, (c[1] + rng.NextDouble()) / 4.0};
      EXPECT_TRUE(f.Insert(point).ok());
    }
  }
  return f;
}

void CommitMirrorCatalog(MemEnv* env) {
  Catalog catalog(4);
  ASSERT_TRUE(
      catalog
          .AddRelation("dm", DeclusteredFile::Create(MakeClusteredFile(1),
                                                     "dm", 4)
                                 .value())
          .ok());
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy.policy = RelationRedundancy::Policy::kMirror;
  options.default_redundancy.copies = 2;
  ASSERT_TRUE(SaveCatalogManifest(catalog, env, options).ok());
}

std::vector<QueryRequest> MakeWorkload(uint64_t seed, int count) {
  std::vector<QueryRequest> queries;
  Rng rng(seed);
  for (int q = 0; q < count; ++q) {
    QueryRequest req;
    req.relation = "dm";
    req.lo.resize(2);
    req.hi.resize(2);
    for (int d = 0; d < 2; ++d) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      req.lo[d] = std::min(a, b);
      req.hi[d] = std::max(a, b);
    }
    queries.push_back(std::move(req));
  }
  return queries;
}

/// Status code + sorted matches: the schedule-determined part of a result.
struct Outcome {
  StatusCode code;
  std::vector<RecordId> matches;
  bool operator==(const Outcome& o) const {
    return code == o.code && matches == o.matches;
  }
};

/// One full soak run: fresh FaultyEnv (fresh attempt counters), fresh
/// service, all queries submitted up front, outcomes in submit order.
std::vector<Outcome> RunSoak(MemEnv* env, const FaultyEnvOptions& fault,
                             const std::vector<QueryRequest>& queries,
                             uint32_t num_threads,
                             BreakerCounters* breakers = nullptr) {
  auto faulty = FaultyEnv::Create(env, fault).value();
  ServeOptions options;
  options.num_threads = num_threads;
  options.max_queue = static_cast<uint32_t>(queries.size());
  // Retries outlast injected transients: transient reads always succeed
  // within the budget, so only permanent faults surface to outcomes.
  options.read.retry.max_attempts = fault.max_transient_attempts + 2;
  options.read.retry.base_ms = 0.01;
  options.read.retry.cap_ms = 0.1;
  // Breakers trip fast and stay open: one deterministic transition per
  // genuinely dead disk, none from interleaving noise.
  options.breaker.min_events = 4;
  options.breaker.window = 8;
  options.breaker.failure_ratio = 0.5;
  options.breaker.open_ms = 1e18;
  options.seed = 42;
  auto service = QueryService::Create(faulty.get(), options).value();

  std::vector<std::future<QueryResult>> futures;
  for (const QueryRequest& q : queries) {
    futures.push_back(service->Submit(q).value());
  }
  std::vector<Outcome> outcomes;
  for (auto& f : futures) {
    QueryResult r = f.get();
    outcomes.push_back({r.status.code(), std::move(r.matches)});
  }
  EXPECT_TRUE(service->Shutdown().ok());
  if (breakers != nullptr) *breakers = service->BreakerTotals();
  return outcomes;
}

TEST(ServeChaosTest, TransientSoakOutcomesAreThreadCountInvariant) {
  MemEnv env;
  CommitMirrorCatalog(&env);
  const std::vector<QueryRequest> queries = MakeWorkload(11, 40);

  for (uint64_t fault_seed : {1u, 2u, 3u}) {
    FaultyEnvOptions fault;
    fault.seed = fault_seed;
    fault.transient_error_prob = 0.4;
    fault.max_transient_attempts = 3;

    const std::vector<Outcome> reference = RunSoak(&env, fault, queries, 1);
    // Transients always resolve within the retry budget: every query
    // succeeds, and matches equal the healthy direct answers.
    const std::vector<Outcome> healthy =
        RunSoak(&env, FaultyEnvOptions{}, queries, 1);
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(reference[q].code, StatusCode::kOk) << "query " << q;
      EXPECT_EQ(reference[q].matches, healthy[q].matches) << "query " << q;
    }
    for (uint32_t threads : {2u, 4u}) {
      for (int run = 0; run < 2; ++run) {
        EXPECT_EQ(RunSoak(&env, fault, queries, threads), reference)
            << "seed " << fault_seed << " threads " << threads << " run "
            << run;
      }
    }
  }
}

TEST(ServeChaosTest, DeadDiskSoakRecoversEverythingAndTripsOneBreaker) {
  MemEnv env;
  CommitMirrorCatalog(&env);
  const std::vector<QueryRequest> queries = MakeWorkload(23, 40);

  // One permanently failed disk layered under the same transient noise.
  FaultyEnvOptions fault;
  fault.seed = 5;
  fault.transient_error_prob = 0.3;
  fault.max_transient_attempts = 3;
  fault.permanent = DiskFaultSchedule(env, "dm", 2).value();

  const std::vector<Outcome> healthy =
      RunSoak(&env, FaultyEnvOptions{}, queries, 1);
  std::vector<Outcome> reference;
  for (uint32_t threads : {1u, 4u}) {
    BreakerCounters breakers;
    const std::vector<Outcome> outcomes =
        RunSoak(&env, fault, queries, threads, &breakers);
    // Every query completes with the correct answer: the dead disk is
    // served by inline mirror failover before the breaker trips and by
    // plan-time reroute after.
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(outcomes[q].code, StatusCode::kOk)
          << "threads " << threads << " query " << q;
      EXPECT_EQ(outcomes[q].matches, healthy[q].matches)
          << "threads " << threads << " query " << q;
    }
    // Breaker transitions match the injected schedule: exactly one trip
    // (the dead disk), pinned open — no probes, closes, or reopens.
    EXPECT_EQ(breakers.opened, 1u) << "threads " << threads;
    EXPECT_EQ(breakers.half_opened, 0u);
    EXPECT_EQ(breakers.closed, 0u);
    EXPECT_EQ(breakers.reopened, 0u);
    if (threads == 1u) {
      reference = outcomes;
    } else {
      EXPECT_EQ(outcomes, reference) << "outcomes depend on thread count";
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace griddecl
