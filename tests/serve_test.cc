#include "griddecl/serve/service.h"

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/gridfile/catalog.h"
#include "griddecl/gridfile/declustered_file.h"
#include "griddecl/serve/script.h"

namespace griddecl {
namespace serve {
namespace {

/// 4x4 grid, 8 records per bucket inserted bucket by bucket: with
/// 168-byte v3 pages (capacity (168 - 8 - 2*16) / 16 = 8) every storage page holds
/// exactly one bucket — the bucket-clustered layout DiskFaultSchedule
/// requires.
GridFile MakeClusteredFile(uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {4, 4}).value();
  const GridSpec grid = f.grid();
  Rng rng(seed);
  for (uint64_t b = 0; b < grid.num_buckets(); ++b) {
    const BucketCoords c = grid.Delinearize(b);
    for (uint32_t k = 0; k < 8; ++k) {
      const std::vector<double> point = {
          (c[0] + rng.NextDouble()) / 4.0, (c[1] + rng.NextDouble()) / 4.0};
      EXPECT_TRUE(f.Insert(point).ok());
    }
  }
  return f;
}

/// One-relation catalog ("dm" over 4 disks), committed to `env` with the
/// given redundancy. Returns the in-memory catalog for reference answers.
Catalog CommitCatalog(MemEnv* env, RelationRedundancy redundancy,
                      uint64_t seed = 1) {
  Catalog catalog(4);
  Result<DeclusteredFile> rel =
      DeclusteredFile::Create(MakeClusteredFile(seed), "dm", 4);
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(catalog.AddRelation("dm", std::move(rel).value()).ok());
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  options.default_redundancy = redundancy;
  EXPECT_TRUE(SaveCatalogManifest(catalog, env, options).ok());
  return catalog;
}

RelationRedundancy Mirror2() {
  RelationRedundancy r;
  r.policy = RelationRedundancy::Policy::kMirror;
  r.copies = 2;
  return r;
}

RelationRedundancy Parity4() {
  RelationRedundancy r;
  r.policy = RelationRedundancy::Policy::kParity;
  r.group_pages = 4;
  return r;
}

QueryRequest Range(std::vector<double> lo, std::vector<double> hi,
                   double deadline_ms = 0.0) {
  QueryRequest req;
  req.relation = "dm";
  req.lo = std::move(lo);
  req.hi = std::move(hi);
  req.deadline_ms = deadline_ms;
  return req;
}

std::vector<RecordId> Sorted(std::vector<RecordId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(QueryServiceTest, CreateValidatesOptionsAndEnv) {
  MemEnv env;
  EXPECT_FALSE(QueryService::Create(nullptr, {}).ok());
  // No committed catalog in the env.
  EXPECT_FALSE(QueryService::Create(&env, {}).ok());

  CommitCatalog(&env, {});
  ServeOptions bad;
  bad.num_threads = 0;
  EXPECT_FALSE(QueryService::Create(&env, bad).ok());
  bad = {};
  bad.max_queue = 0;
  EXPECT_FALSE(QueryService::Create(&env, bad).ok());
  bad = {};
  bad.read.retry.max_attempts = 0;
  EXPECT_FALSE(QueryService::Create(&env, bad).ok());
  bad = {};
  bad.breaker.failure_ratio = 2.0;
  EXPECT_FALSE(QueryService::Create(&env, bad).ok());
  bad = {};
  bad.drain_deadline_ms = -1.0;
  EXPECT_FALSE(QueryService::Create(&env, bad).ok());

  auto service = QueryService::Create(&env, {}).value();
  EXPECT_EQ(service->num_disks(), 4u);
  EXPECT_EQ(service->RelationNames(), std::vector<std::string>{"dm"});
}

TEST(QueryServiceTest, MatchesDirectStorageReadsExactly) {
  // The regression anchor: null fault model, no deadlines — the service's
  // matches must be identical to the catalog's direct synchronous
  // execution for every query.
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, {});
  auto service = QueryService::Create(&env, {}).value();

  Rng rng(7);
  for (int q = 0; q < 25; ++q) {
    std::vector<double> lo(2), hi(2);
    for (int d = 0; d < 2; ++d) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const QueryResult got = service->Execute(Range(lo, hi));
    ASSERT_TRUE(got.status.ok()) << got.status.ToString();
    const QueryExecution want =
        catalog.Find("dm")->ExecuteRange(lo, hi).value();
    EXPECT_EQ(got.matches, Sorted(want.matches)) << "query " << q;
    EXPECT_EQ(got.buckets_touched, want.buckets_touched);
    EXPECT_EQ(got.retries, 0u);
    EXPECT_EQ(got.rerouted_buckets, 0u);
    EXPECT_EQ(got.failover_reads, 0u);
    EXPECT_EQ(got.reconstructed_pages, 0u);
  }
  EXPECT_EQ(service->BreakerTotals().opened, 0u);
}

TEST(QueryServiceTest, UnknownRelationAndBadQueryFailCleanly) {
  MemEnv env;
  CommitCatalog(&env, {});
  auto service = QueryService::Create(&env, {}).value();
  QueryRequest req = Range({0.0, 0.0}, {1.0, 1.0});
  req.relation = "nope";
  EXPECT_EQ(service->Execute(req).status.code(), StatusCode::kNotFound);
  // Dimension mismatch is surfaced by ResolveRange.
  EXPECT_FALSE(service->Execute(Range({0.0}, {1.0})).status.ok());
}

TEST(QueryServiceTest, ExpiredDeadlineFailsWithDeadlineExceeded) {
  MemEnv env;
  CommitCatalog(&env, {});
  auto service = QueryService::Create(&env, {}).value();
  // 100 ns: expired by the time a worker dequeues it.
  const QueryResult r =
      service->Execute(Range({0.0, 0.0}, {1.0, 1.0}, 0.0001));
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.matches.empty());

  // The service default applies when the request carries none.
  ServeOptions options;
  options.default_deadline_ms = 0.0001;
  auto strict = QueryService::Create(&env, options).value();
  EXPECT_EQ(strict->Execute(Range({0.0, 0.0}, {1.0, 1.0})).status.code(),
            StatusCode::kDeadlineExceeded);
  // An explicit generous per-query deadline overrides the default.
  EXPECT_TRUE(
      strict->Execute(Range({0.0, 0.0}, {1.0, 1.0}, 60000.0)).status.ok());
}

TEST(QueryServiceTest, FullQueueShedsWithResourceExhausted) {
  MemEnv env;
  CommitCatalog(&env, {});
  // One slow worker (every read sleeps), a one-slot queue.
  FaultyEnvOptions fault;
  fault.latency_ms = 5.0;
  auto faulty = FaultyEnv::Create(&env, fault).value();
  ServeOptions options;
  options.num_threads = 1;
  options.max_queue = 1;
  auto service = QueryService::Create(faulty.get(), options).value();

  std::vector<std::future<QueryResult>> admitted;
  uint64_t shed = 0;
  for (int i = 0; i < 10; ++i) {
    Result<std::future<QueryResult>> f =
        service->Submit(Range({0.0, 0.0}, {1.0, 1.0}));
    if (f.ok()) {
      admitted.push_back(std::move(f).value());
    } else {
      EXPECT_EQ(f.status().code(), StatusCode::kResourceExhausted);
      shed++;
    }
  }
  // 10 instant submits against a 1-deep queue: most must shed, and
  // everything admitted completes correctly.
  EXPECT_GE(shed, 7u);
  EXPECT_LE(admitted.size(), 3u);
  for (auto& f : admitted) {
    EXPECT_TRUE(f.get().status.ok());
  }
  obs::MetricsRegistry reg;
  service->SnapshotMetrics(&reg);
  EXPECT_EQ(reg.GetCounter("serve.shed")->value(), shed);
  EXPECT_EQ(reg.GetCounter("serve.admitted")->value(), admitted.size());
}

TEST(QueryServiceTest, ShutdownDrainsAndRefusesNewWork) {
  MemEnv env;
  CommitCatalog(&env, {});
  auto service = QueryService::Create(&env, {}).value();
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        service->Submit(Range({0.0, 0.0}, {1.0, 1.0})).value());
  }
  EXPECT_TRUE(service->Shutdown().ok());
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  // Post-shutdown admission is refused, and Shutdown is idempotent.
  EXPECT_EQ(service->Submit(Range({0.0, 0.0}, {1.0, 1.0})).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(service->Shutdown().ok());
}

TEST(QueryServiceTest, DrainDeadlineHardFailsRemainingWork) {
  MemEnv env;
  CommitCatalog(&env, {});
  FaultyEnvOptions fault;
  fault.latency_ms = 20.0;  // Each query reads many pages: way past 1 ms.
  auto faulty = FaultyEnv::Create(&env, fault).value();
  ServeOptions options;
  options.num_threads = 1;
  options.max_queue = 16;
  options.drain_deadline_ms = 1.0;
  auto service = QueryService::Create(faulty.get(), options).value();

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        service->Submit(Range({0.0, 0.0}, {1.0, 1.0})).value());
  }
  EXPECT_EQ(service->Shutdown().code(), StatusCode::kDeadlineExceeded);
  // Every future is still fulfilled with a well-formed result: either a
  // completed query or a clean unavailable.
  int failed = 0;
  for (auto& f : futures) {
    const QueryResult r = f.get();
    if (!r.status.ok()) {
      EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
      failed++;
    }
  }
  EXPECT_GE(failed, 1);
}

TEST(QueryServiceTest, MirrorFailoverServesEveryQueryOffADeadDisk) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, Mirror2());
  FaultyEnvOptions fault;
  fault.permanent = DiskFaultSchedule(env, "dm", 2).value();
  ASSERT_FALSE(fault.permanent.empty());
  auto faulty = FaultyEnv::Create(&env, fault).value();
  ServeOptions options;
  options.breaker.min_events = 1000000;  // Pin breakers closed.
  options.breaker.window = 1000000;
  auto service = QueryService::Create(faulty.get(), options).value();

  const std::vector<double> lo = {0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0};
  const QueryResult r = service->Execute(Range(lo, hi));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.matches,
            Sorted(catalog.Find("dm")->ExecuteRange(lo, hi).value().matches));
  EXPECT_GT(r.failover_reads, 0u);
  EXPECT_EQ(r.rerouted_buckets, 0u);  // No breaker: inline failover only.
}

TEST(QueryServiceTest, BreakerTripsThenReroutesAroundTheDeadDisk) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, Mirror2());
  FaultyEnvOptions fault;
  fault.permanent = DiskFaultSchedule(env, "dm", 1).value();
  auto faulty = FaultyEnv::Create(&env, fault).value();
  ServeOptions options;
  options.breaker.min_events = 2;
  options.breaker.window = 4;
  options.breaker.failure_ratio = 0.5;
  options.breaker.open_ms = 1e18;  // Once open, stays open.
  auto service = QueryService::Create(faulty.get(), options).value();

  const std::vector<double> lo = {0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0};
  const std::vector<RecordId> want =
      Sorted(catalog.Find("dm")->ExecuteRange(lo, hi).value().matches);

  // Two queries feed the dead disk's breaker two batch failures (served
  // correctly via inline failover meanwhile).
  for (int i = 0; i < 2; ++i) {
    const QueryResult r = service->Execute(Range(lo, hi));
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.matches, want);
    EXPECT_GT(r.failover_reads, 0u);
  }
  EXPECT_EQ(service->BreakerStateOf(1), BreakerState::kOpen);
  const BreakerCounters totals = service->BreakerTotals();
  EXPECT_EQ(totals.opened, 1u);
  EXPECT_EQ(totals.half_opened, 0u);

  // From now on the planner routes around the disk: replica reads, no
  // failed direct reads, no retries.
  const QueryResult r = service->Execute(Range(lo, hi));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.matches, want);
  EXPECT_GT(r.rerouted_buckets, 0u);
  EXPECT_EQ(r.failover_reads, 0u);
  EXPECT_EQ(r.retries, 0u);
}

TEST(QueryServiceTest, HalfOpenProbeRecoversARepairedDisk) {
  MemEnv env;
  CommitCatalog(&env, Mirror2());
  // Transient-only faults that exhaust the retry budget: the first
  // max_transient_attempts reads of every site fail, so with a 1-attempt
  // retry policy the first batch fails; later attempts succeed.
  FaultyEnvOptions fault;
  fault.transient_error_prob = 1.0;
  fault.max_transient_attempts = 1;
  auto faulty = FaultyEnv::Create(&env, fault).value();
  ServeOptions options;
  options.read.retry.max_attempts = 1;
  options.breaker.min_events = 1;
  options.breaker.window = 1;
  options.breaker.failure_ratio = 0.5;
  options.breaker.open_ms = 1.0;
  auto service = QueryService::Create(faulty.get(), options).value();

  const std::vector<double> lo = {0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0};
  // Early queries fail (both copies' first reads of a site fail and the
  // policy never retries), tripping breakers one batch at a time. Every
  // failed attempt advances its site's counter, so queries eventually
  // succeed, and once sites are past max_transient_attempts the half-open
  // probes find healthy disks and close the breakers.
  bool succeeded = false;
  for (int i = 0; i < 100 && !succeeded; ++i) {
    succeeded = service->Execute(Range(lo, hi)).status.ok();
    if (!succeeded) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(succeeded);
  EXPECT_GT(service->BreakerTotals().opened, 0u);

  // Let any still-open breakers run their probe cycle to recovery.
  for (int i = 0; i < 30; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(service->Execute(Range(lo, hi)).status.ok());
  }
  const BreakerCounters totals = service->BreakerTotals();
  EXPECT_GT(totals.half_opened, 0u);
  EXPECT_GT(totals.closed, 0u);
  for (uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(service->BreakerStateOf(d), BreakerState::kClosed) << d;
  }
}

TEST(QueryServiceTest, ParityReconstructionRebuildsDeadDiskPages) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, Parity4());
  // Group of 4 pages = one grid row = one page per disk under dm, so a
  // single dead disk is always reconstructible from its stripe.
  FaultyEnvOptions fault;
  fault.permanent = DiskFaultSchedule(env, "dm", 3).value();
  auto faulty = FaultyEnv::Create(&env, fault).value();
  ServeOptions options;
  options.breaker.min_events = 1000000;
  options.breaker.window = 1000000;
  auto service = QueryService::Create(faulty.get(), options).value();

  const std::vector<double> lo = {0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0};
  const QueryResult r = service->Execute(Range(lo, hi));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.matches,
            Sorted(catalog.Find("dm")->ExecuteRange(lo, hi).value().matches));
  EXPECT_GT(r.reconstructed_pages, 0u);
}

TEST(QueryServiceTest, NoRedundancyMeansDeadDiskQueriesFailCleanly) {
  MemEnv env;
  CommitCatalog(&env, {});
  FaultyEnvOptions fault;
  fault.permanent = DiskFaultSchedule(env, "dm", 0).value();
  auto faulty = FaultyEnv::Create(&env, fault).value();
  auto service = QueryService::Create(faulty.get(), {}).value();
  const QueryResult r = service->Execute(Range({0.0, 0.0}, {1.0, 1.0}));
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(r.matches.empty());
  // A query that misses the dead disk still succeeds. Under dm the
  // bucket (cx, cy) lives on disk (cx + cy) mod 4, so single-cell probes
  // split cleanly: cells summing to 0 mod 4 fail, all others succeed.
  for (int cx = 0; cx < 4; ++cx) {
    for (int cy = 0; cy < 4; ++cy) {
      const QueryResult cell = service->Execute(Range(
          {(cx + 0.25) / 4.0, (cy + 0.25) / 4.0},
          {(cx + 0.75) / 4.0, (cy + 0.75) / 4.0}));
      if ((cx + cy) % 4 == 0) {
        EXPECT_EQ(cell.status.code(), StatusCode::kUnavailable)
            << "cell " << cx << "," << cy;
      } else {
        EXPECT_TRUE(cell.status.ok()) << "cell " << cx << "," << cy << ": "
                                      << cell.status.ToString();
      }
    }
  }
}

TEST(QueryServiceTest, SnapshotMetricsPublishesAbsoluteTotals) {
  MemEnv env;
  CommitCatalog(&env, {});
  auto service = QueryService::Create(&env, {}).value();
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(service->Execute(Range({0.0, 0.0}, {1.0, 1.0})).status.ok());
  }
  obs::MetricsRegistry reg;
  service->SnapshotMetrics(&reg);
  service->SnapshotMetrics(&reg);  // Re-snapshot must not double-count.
  EXPECT_EQ(reg.GetCounter("serve.admitted")->value(), 3u);
  EXPECT_EQ(reg.GetCounter("serve.completed")->value(), 3u);
  EXPECT_EQ(reg.GetCounter("serve.failed")->value(), 0u);
  EXPECT_EQ(
      reg.GetHistogram("serve.latency_ms", obs::DefaultLatencyBoundsMs())
          ->count(),
      3u);
  EXPECT_GE(reg.GetGauge("serve.queue.max_depth")->value(), 0.0);
}

TEST(DiskFaultScheduleTest, CoversDataAndMirrorRanges) {
  MemEnv env;
  CommitCatalog(&env, Mirror2());
  const CatalogManifest manifest = ReadCurrentManifest(env).value();
  for (uint32_t disk = 0; disk < 4; ++disk) {
    const std::vector<FaultRange> ranges =
        DiskFaultSchedule(env, "dm", disk).value();
    // 16 pages over 4 disks under dm: 4 data pages + 4 mirror pages.
    EXPECT_EQ(ranges.size(), 8u) << "disk " << disk;
    bool has_data = false;
    bool has_mirror = false;
    for (const FaultRange& r : ranges) {
      EXPECT_EQ(r.length, 168u);
      if (r.file == manifest.DataFileName(0)) has_data = true;
      if (r.file == manifest.MirrorFileName(0, 1)) has_mirror = true;
    }
    EXPECT_TRUE(has_data);
    EXPECT_TRUE(has_mirror);
  }
  EXPECT_EQ(DiskFaultSchedule(env, "nope", 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(DiskFaultSchedule(env, "dm", 99).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiskFaultScheduleTest, RejectsNonClusteredLayouts) {
  // Records inserted round-robin across buckets: pages mix buckets on
  // different disks, so no byte range is attributable to one disk.
  MemEnv env;
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {4, 4}).value();
  Rng rng(3);
  for (int i = 0; i < 128; ++i) {
    EXPECT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  Catalog catalog(4);
  EXPECT_TRUE(
      catalog
          .AddRelation("dm",
                       DeclusteredFile::Create(std::move(f), "dm", 4).value())
          .ok());
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &env, options).ok());
  EXPECT_EQ(DiskFaultSchedule(env, "dm", 0).status().code(),
            StatusCode::kUnsupported);
}

TEST(QueryServiceTest, DiskFilterPartitionsTheFullAnswer) {
  // The coordinator extension clusters are built on: sub-queries
  // restricted to disjoint primary-disk sets must union to exactly the
  // unrestricted answer, with no overlap.
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, {});
  auto service = QueryService::Create(&env, {}).value();
  const std::vector<double> lo = {0.1, 0.1};
  const std::vector<double> hi = {0.9, 0.9};
  const std::vector<RecordId> want =
      Sorted(catalog.Find("dm")->ExecuteRange(lo, hi).value().matches);

  std::vector<RecordId> merged;
  for (uint32_t d = 0; d < 4; ++d) {
    QueryRequest sub = Range(lo, hi);
    sub.disks = {d};
    const QueryResult r = service->Execute(sub);
    ASSERT_TRUE(r.status.ok()) << "disk " << d << ": " << r.status.ToString();
    merged.insert(merged.end(), r.matches.begin(), r.matches.end());
  }
  EXPECT_EQ(Sorted(merged), want);

  // Out-of-range disks are request errors, and an empty intersection is a
  // clean empty result, not a failure.
  QueryRequest bad = Range(lo, hi);
  bad.disks = {9};
  EXPECT_EQ(service->Execute(bad).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, ServeCopyPinsEveryReadToOneMirror) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, Mirror2());
  auto service = QueryService::Create(&env, {}).value();
  const std::vector<double> lo = {0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0};
  const std::vector<RecordId> want =
      Sorted(catalog.Find("dm")->ExecuteRange(lo, hi).value().matches);

  QueryRequest pinned = Range(lo, hi);
  pinned.serve_copy = 1;
  const QueryResult r = service->Execute(pinned);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.matches, want);  // Mirror copies are byte-identical.

  // Pinning past the relation's copies, or on a non-mirrored relation,
  // is a request error.
  pinned.serve_copy = 2;
  EXPECT_EQ(service->Execute(pinned).status.code(),
            StatusCode::kInvalidArgument);
  MemEnv plain_env;
  CommitCatalog(&plain_env, {});
  auto plain = QueryService::Create(&plain_env, {}).value();
  QueryRequest on_plain = Range(lo, hi);
  on_plain.serve_copy = 1;
  EXPECT_EQ(plain->Execute(on_plain).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, GenerationFenceFailsFastOnMismatch) {
  MemEnv env;
  CommitCatalog(&env, {});
  auto service = QueryService::Create(&env, {}).value();
  EXPECT_EQ(service->generation(), 1u);

  QueryRequest fenced = Range({0.0, 0.0}, {1.0, 1.0});
  fenced.expected_generation = 1;  // Matching fence passes.
  EXPECT_TRUE(service->Execute(fenced).status.ok());
  fenced.expected_generation = 2;  // A coordinator one cutover ahead.
  const QueryResult r = service->Execute(fenced);
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(r.matches.empty());
  fenced.expected_generation = 0;  // Unfenced requests never check.
  EXPECT_TRUE(service->Execute(fenced).status.ok());
}

TEST(QueryServiceTest, ServeOptionsGenerationLoadsStagedCatalogs) {
  MemEnv env;
  const Catalog catalog = CommitCatalog(&env, {});
  // Stage generation 2 without committing: CURRENT still names 1.
  ManifestSaveOptions save;
  save.page_size_bytes = 168;
  EXPECT_EQ(StageCatalogManifest(catalog, &env, save).value(), 2u);
  EXPECT_EQ(ReadCurrentManifest(env).value().generation, 1u);

  auto current = QueryService::Create(&env, {}).value();
  EXPECT_EQ(current->generation(), 1u);
  ServeOptions at2;
  at2.generation = 2;
  auto staged = QueryService::Create(&env, at2).value();
  EXPECT_EQ(staged->generation(), 2u);

  const QueryRequest full = Range({0.0, 0.0}, {1.0, 1.0});
  const QueryResult a = current->Execute(full);
  const QueryResult b = staged->Execute(full);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.matches, b.matches);

  ServeOptions at9;
  at9.generation = 9;
  EXPECT_FALSE(QueryService::Create(&env, at9).ok());
}

TEST(ServeScriptTest, ParsesQueriesCommentsAndDeadlines) {
  const auto requests = ParseServeScript(
      "# comment\n"
      "\n"
      "query dm 0.1,0.2 0.6,0.9\n"
      "query other 0,0 1,1 250\r\n").value();
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].relation, "dm");
  EXPECT_EQ(requests[0].lo, (std::vector<double>{0.1, 0.2}));
  EXPECT_EQ(requests[0].hi, (std::vector<double>{0.6, 0.9}));
  EXPECT_EQ(requests[0].deadline_ms, 0.0);
  EXPECT_EQ(requests[1].relation, "other");
  EXPECT_EQ(requests[1].deadline_ms, 250.0);
}

TEST(ServeScriptTest, RejectsMalformedLinesByNumber) {
  EXPECT_FALSE(ParseServeScript("frobnicate dm 0 1\n").ok());
  EXPECT_FALSE(ParseServeScript("query dm 0,0\n").ok());          // Missing hi.
  EXPECT_FALSE(ParseServeScript("query dm 0,x 1,1\n").ok());      // Bad number.
  EXPECT_FALSE(ParseServeScript("query dm 0,0 1,1,1\n").ok());    // Arity.
  EXPECT_FALSE(ParseServeScript("query dm 0,0 1,1 -5\n").ok());   // Deadline.
  const Status st = ParseServeScript("query dm 0,0 1,1\nbad\n").status();
  EXPECT_NE(st.message().find("line 2"), std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace serve
}  // namespace griddecl
