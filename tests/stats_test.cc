#include "griddecl/common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // Classic population-variance example.
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStat target;
  target.Merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(HistogramTest, BasicCounting) {
  Histogram h(5);
  h.Add(0);
  h.Add(1);
  h.Add(1);
  h.Add(4);
  h.Add(7);  // Overflow.
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.overflow_count(), 1u);
}

TEST(HistogramTest, FractionBelow) {
  Histogram h(10);
  for (uint64_t v = 0; v < 10; ++v) h.Add(v);
  EXPECT_DOUBLE_EQ(h.FractionBelow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(5), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionBelow(10), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(100), 1.0);
}

TEST(HistogramTest, FractionBelowEmpty) {
  Histogram h(3);
  EXPECT_EQ(h.FractionBelow(2), 0.0);
}

}  // namespace
}  // namespace griddecl
