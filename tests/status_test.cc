#include "griddecl/common/status.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad grid");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad grid");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad grid");
}

TEST(StatusTest, FactoriesProduceExpectedCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "unsupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MutableAndMoveAccess) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  r.value() += " world";
  EXPECT_EQ(r.value(), "hello world");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello world");
}

TEST(StatusTest, ServingCodesRoundTrip) {
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "resource_exhausted");
  EXPECT_EQ(Status::Unavailable("disk 2 down").ToString(),
            "unavailable: disk 2 down");
}

TEST(ResultTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    GRIDDECL_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);

  auto succeeds = []() -> Status { return Status::Ok(); };
  auto wrapper2 = [&]() -> Status {
    GRIDDECL_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(wrapper2().message(), "reached end");
}

}  // namespace
}  // namespace griddecl
