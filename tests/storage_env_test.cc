#include "griddecl/gridfile/storage_env.h"

#include <unistd.h>

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(StorageEnvTest, FileNameValidation) {
  EXPECT_TRUE(IsValidEnvFileName("MANIFEST-000001"));
  EXPECT_TRUE(IsValidEnvFileName("rel-000001-0.gd"));
  EXPECT_TRUE(IsValidEnvFileName("CURRENT.tmp"));
  EXPECT_FALSE(IsValidEnvFileName(""));
  EXPECT_FALSE(IsValidEnvFileName("."));
  EXPECT_FALSE(IsValidEnvFileName(".."));
  EXPECT_FALSE(IsValidEnvFileName("a/b"));
  EXPECT_FALSE(IsValidEnvFileName("../escape"));
  EXPECT_FALSE(IsValidEnvFileName("with space"));
  EXPECT_FALSE(IsValidEnvFileName(std::string(256, 'a')));
}

TEST(StorageEnvTest, MemEnvBasics) {
  MemEnv env;
  EXPECT_FALSE(env.Exists("a"));
  EXPECT_EQ(env.ReadFile("a").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(env.WriteFile("a", "hello").ok());
  EXPECT_TRUE(env.Exists("a"));
  EXPECT_EQ(env.ReadFile("a").value(), "hello");
  ASSERT_TRUE(env.WriteFile("a", "rewritten").ok());
  EXPECT_EQ(env.ReadFile("a").value(), "rewritten");
  ASSERT_TRUE(env.Rename("a", "b").ok());
  EXPECT_FALSE(env.Exists("a"));
  EXPECT_EQ(env.ReadFile("b").value(), "rewritten");
  EXPECT_FALSE(env.Rename("a", "c").ok());
  ASSERT_TRUE(env.WriteFile("a", "x").ok());
  const auto names = env.ListFiles().value();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // Sorted.
  EXPECT_EQ(names[1], "b");
  ASSERT_TRUE(env.Remove("a").ok());
  EXPECT_FALSE(env.Remove("a").ok());
  EXPECT_FALSE(env.WriteFile("bad/name", "x").ok());
}

TEST(StorageEnvTest, MemEnvCorruptionHooks) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("f", "abcdef").ok());
  ASSERT_TRUE(env.CorruptByte("f", 2, 0x01).ok());
  EXPECT_EQ(env.ReadFile("f").value(), "abbdef");  // 'c' ^ 0x01 == 'b'.
  EXPECT_FALSE(env.CorruptByte("f", 100, 0x01).ok());
  ASSERT_TRUE(env.TruncateFile("f", 3).ok());
  EXPECT_EQ(env.ReadFile("f").value(), "abb");
  EXPECT_FALSE(env.TruncateFile("f", 10).ok());
}

TEST(StorageEnvTest, MemEnvIsCopyable) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("f", "original").ok());
  MemEnv snapshot = env;
  ASSERT_TRUE(env.WriteFile("f", "changed").ok());
  EXPECT_EQ(snapshot.ReadFile("f").value(), "original");
}

TEST(StorageEnvTest, DiskEnvRoundTrip) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("griddecl_env_test_" + std::to_string(::getpid())))
          .string();
  DiskEnv env = DiskEnv::Create(root).value();
  ASSERT_TRUE(env.WriteFile("a.bin", std::string("x\0y", 3)).ok());
  EXPECT_EQ(env.ReadFile("a.bin").value(), std::string("x\0y", 3));
  ASSERT_TRUE(env.Rename("a.bin", "b.bin").ok());
  EXPECT_FALSE(env.Exists("a.bin"));
  EXPECT_TRUE(env.Exists("b.bin"));
  EXPECT_EQ(env.ListFiles().value(), std::vector<std::string>{"b.bin"});
  EXPECT_FALSE(env.WriteFile("../escape", "x").ok());
  EXPECT_FALSE(env.ReadFile("missing").ok());
  ASSERT_TRUE(env.Remove("b.bin").ok());
  std::filesystem::remove_all(root);
}

TEST(StorageEnvTest, MemEnvReadAtSlicesAndBoundsChecks) {
  MemEnv env;
  ASSERT_TRUE(env.WriteFile("f", "0123456789").ok());
  EXPECT_EQ(env.ReadAt("f", 0, 10).value(), "0123456789");
  EXPECT_EQ(env.ReadAt("f", 3, 4).value(), "3456");
  EXPECT_EQ(env.ReadAt("f", 10, 0).value(), "");
  const Result<std::string> past = env.ReadAt("f", 8, 4);
  ASSERT_FALSE(past.ok());
  EXPECT_EQ(past.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(past.status().message(),
            "read of [8, 12) past end of 'f' (10 bytes)");
  EXPECT_EQ(env.ReadAt("missing", 0, 1).status().code(),
            StatusCode::kNotFound);
}

TEST(StorageEnvTest, DiskEnvReadAtMatchesMemEnvSemantics) {
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("griddecl_readat_test_" + std::to_string(::getpid())))
          .string();
  DiskEnv env = DiskEnv::Create(root).value();
  ASSERT_TRUE(env.WriteFile("f", "0123456789").ok());
  EXPECT_EQ(env.ReadAt("f", 3, 4).value(), "3456");
  EXPECT_EQ(env.ReadAt("f", 0, 10).value(), "0123456789");
  const Result<std::string> past = env.ReadAt("f", 9, 2);
  ASSERT_FALSE(past.ok());
  EXPECT_EQ(past.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(past.status().message(),
            "read of [9, 11) past end of 'f' (10 bytes)");
  EXPECT_EQ(env.ReadAt("missing", 0, 1).status().code(),
            StatusCode::kNotFound);
  std::filesystem::remove_all(root);
}

TEST(StorageEnvTest, CrashEnvPassesThroughBeforeCrashPoint) {
  MemEnv base;
  CrashEnv env(&base, /*crash_at_op=*/2, /*seed=*/1);
  EXPECT_TRUE(env.WriteFile("a", "1").ok());  // op 0
  EXPECT_TRUE(env.Rename("a", "b").ok());     // op 1
  EXPECT_FALSE(env.crashed());
  EXPECT_FALSE(env.WriteFile("c", "2").ok());  // op 2: crash.
  EXPECT_TRUE(env.crashed());
  EXPECT_FALSE(env.WriteFile("d", "3").ok());  // Dead.
  EXPECT_FALSE(env.Remove("b").ok());
  EXPECT_EQ(env.ops_issued(), 5u);
  // Reads still see the wreckage.
  EXPECT_EQ(env.ReadFile("b").value(), "1");
  EXPECT_FALSE(base.Exists("d"));
}

TEST(StorageEnvTest, CrashingWriteLeavesTornPrefix) {
  const std::string payload(100, 'z');
  for (uint64_t seed = 0; seed < 20; ++seed) {
    MemEnv base;
    CrashEnv env(&base, /*crash_at_op=*/0, seed);
    EXPECT_FALSE(env.WriteFile("f", payload).ok());
    const std::string torn = base.ReadFile("f").value();
    EXPECT_LE(torn.size(), payload.size());
    // At most one byte may differ from the corresponding prefix (the
    // injected bit flip).
    int diffs = 0;
    for (size_t i = 0; i < torn.size(); ++i) {
      if (torn[i] != payload[i]) ++diffs;
    }
    EXPECT_LE(diffs, 1) << "seed " << seed;
  }
}

TEST(StorageEnvTest, CrashEnvIsDeterministic) {
  auto run = [](uint64_t seed) {
    MemEnv base;
    CrashEnv env(&base, 1, seed);
    (void)env.WriteFile("a", "first-write-payload");
    (void)env.WriteFile("b", "second-write-payload-that-crashes");
    std::string state;
    const std::vector<std::string> names = base.ListFiles().value();
    for (const std::string& name : names) {
      state += name + "=" + base.ReadFile(name).value() + ";";
    }
    return state;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_EQ(run(7), run(7));
}

TEST(StorageEnvTest, CrashEnvNeverCrashesRename) {
  // Rename is atomic: after a crash at the rename op, the target holds
  // exactly its old content and the source still exists.
  MemEnv base;
  ASSERT_TRUE(base.WriteFile("tmp", "new").ok());
  ASSERT_TRUE(base.WriteFile("dst", "old").ok());
  CrashEnv env(&base, /*crash_at_op=*/0, /*seed=*/3);
  EXPECT_FALSE(env.Rename("tmp", "dst").ok());
  EXPECT_EQ(base.ReadFile("dst").value(), "old");
  EXPECT_EQ(base.ReadFile("tmp").value(), "new");
}

}  // namespace
}  // namespace griddecl
