#include "griddecl/gridfile/storage.h"

#include <sstream>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/gridfile/adaptive_grid_file.h"

namespace griddecl {
namespace {

GridFile MakeFile(int num_records, uint64_t seed) {
  Schema schema =
      Schema::Create({{"x", 0.0, 1.0}, {"y", -5.0, 5.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {8, 8}).value();
  Rng rng(seed);
  for (int i = 0; i < num_records; ++i) {
    EXPECT_TRUE(
        f.Insert({rng.NextDouble(), rng.NextDouble() * 10 - 5}).ok());
  }
  return f;
}

TEST(StorageTest, RoundTripPreservesEverything) {
  const GridFile original = MakeFile(500, 1);
  std::stringstream buffer;
  ASSERT_TRUE(SaveGridFile(original, buffer).ok());
  const GridFile loaded = LoadGridFile(buffer).value();

  EXPECT_EQ(loaded.num_records(), original.num_records());
  EXPECT_EQ(loaded.grid(), original.grid());
  EXPECT_EQ(loaded.schema().attribute(0).name, "x");
  EXPECT_EQ(loaded.schema().attribute(1).name, "y");
  for (RecordId id = 0; id < original.num_records(); ++id) {
    EXPECT_EQ(loaded.record(id), original.record(id));
    EXPECT_EQ(loaded.BucketOfRecord(id), original.BucketOfRecord(id));
  }
}

TEST(StorageTest, RoundTripEmptyFile) {
  const GridFile original = MakeFile(0, 2);
  std::stringstream buffer;
  ASSERT_TRUE(SaveGridFile(original, buffer).ok());
  const GridFile loaded = LoadGridFile(buffer).value();
  EXPECT_EQ(loaded.num_records(), 0u);
  EXPECT_EQ(loaded.grid(), original.grid());
}

TEST(StorageTest, RoundTripAdaptiveBoundaries) {
  // Non-uniform boundaries learned by an adaptive file survive the trip.
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  AdaptiveGridFile adaptive =
      AdaptiveGridFile::Create(std::move(schema), {.bucket_capacity = 5})
          .value();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double s = rng.NextBool(0.8) ? 0.1 : 1.0;
    ASSERT_TRUE(
        adaptive.Insert({rng.NextDouble() * s, rng.NextDouble() * s}).ok());
  }
  const GridFile snapshot = adaptive.Snapshot().value();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGridFile(snapshot, buffer).ok());
  const GridFile loaded = LoadGridFile(buffer).value();
  EXPECT_EQ(loaded.grid(), snapshot.grid());
  for (uint32_t dim = 0; dim < 2; ++dim) {
    EXPECT_EQ(loaded.partitioner().dim(dim).raw_boundaries(),
              snapshot.partitioner().dim(dim).raw_boundaries());
  }
  for (RecordId id = 0; id < snapshot.num_records(); ++id) {
    EXPECT_EQ(loaded.BucketOfRecord(id), snapshot.BucketOfRecord(id));
  }
}

TEST(StorageTest, SmallPagesStillWork) {
  const GridFile original = MakeFile(100, 4);
  std::stringstream buffer;
  // Page fits exactly one 2-attribute record: 4 + 16 padding -> 20+.
  ASSERT_TRUE(SaveGridFile(original, buffer, 20).ok());
  const GridFile loaded = LoadGridFile(buffer).value();
  EXPECT_EQ(loaded.num_records(), 100u);
  EXPECT_EQ(loaded.record(99), original.record(99));
}

TEST(StorageTest, PageSizeTooSmallRejected) {
  const GridFile original = MakeFile(10, 5);
  std::stringstream buffer;
  EXPECT_FALSE(SaveGridFile(original, buffer, 16).ok());
  EXPECT_FALSE(SaveGridFile(original, buffer, 0).ok());
}

TEST(StorageTest, RejectsCorruptInputsWithoutCrashing) {
  const GridFile original = MakeFile(50, 6);
  std::stringstream buffer;
  ASSERT_TRUE(SaveGridFile(original, buffer).ok());
  const std::string bytes = buffer.str();

  // Bad magic.
  {
    std::string copy = bytes;
    copy[0] = 'X';
    std::stringstream in(copy);
    EXPECT_FALSE(LoadGridFile(in).ok());
  }
  // Truncations at many prefixes: must error, never crash.
  for (size_t len : {0ul, 3ul, 8ul, 17ul, 40ul, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::stringstream in(bytes.substr(0, len));
    EXPECT_FALSE(LoadGridFile(in).ok()) << "len=" << len;
  }
  // Corrupt version.
  {
    std::string copy = bytes;
    copy[4] = static_cast<char>(0x7F);
    std::stringstream in(copy);
    EXPECT_FALSE(LoadGridFile(in).ok());
  }
}

TEST(StorageTest, PagesPerBucketMath) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {2}).value();
  // 25 records into bucket 0, 1 record into bucket 1.
  for (int i = 0; i < 25; ++i) ASSERT_TRUE(f.Insert({0.1}).ok());
  ASSERT_TRUE(f.Insert({0.9}).ok());
  // Page = 4 header + 8/record; page size 84 -> capacity 10.
  const auto pages = PagesPerBucket(f, 84).value();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0], 3u);  // ceil(25 / 10).
  EXPECT_EQ(pages[1], 1u);
  EXPECT_FALSE(PagesPerBucket(f, 4).ok());
}

TEST(StorageTest, RoundTripLargePageSizes) {
  const GridFile original = MakeFile(300, 7);
  for (uint32_t page : {64u, 1024u, 1u << 20}) {
    std::stringstream buffer;
    ASSERT_TRUE(SaveGridFile(original, buffer, page).ok()) << page;
    const GridFile loaded = LoadGridFile(buffer).value();
    EXPECT_EQ(loaded.num_records(), 300u) << page;
  }
}

}  // namespace
}  // namespace griddecl
