#include "griddecl/gridfile/storage.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string_view>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/gridfile/adaptive_grid_file.h"

namespace griddecl {
namespace {

GridFile MakeFile(int num_records, uint64_t seed) {
  Schema schema =
      Schema::Create({{"x", 0.0, 1.0}, {"y", -5.0, 5.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {8, 8}).value();
  Rng rng(seed);
  for (int i = 0; i < num_records; ++i) {
    EXPECT_TRUE(
        f.Insert({rng.NextDouble(), rng.NextDouble() * 10 - 5}).ok());
  }
  return f;
}

TEST(StorageTest, RoundTripPreservesEverything) {
  const GridFile original = MakeFile(500, 1);
  std::stringstream buffer;
  ASSERT_TRUE(SaveGridFile(original, buffer).ok());
  const GridFile loaded = LoadGridFile(buffer).value();

  EXPECT_EQ(loaded.num_records(), original.num_records());
  EXPECT_EQ(loaded.grid(), original.grid());
  EXPECT_EQ(loaded.schema().attribute(0).name, "x");
  EXPECT_EQ(loaded.schema().attribute(1).name, "y");
  for (RecordId id = 0; id < original.num_records(); ++id) {
    EXPECT_EQ(loaded.record(id), original.record(id));
    EXPECT_EQ(loaded.BucketOfRecord(id), original.BucketOfRecord(id));
  }
}

TEST(StorageTest, RoundTripEmptyFile) {
  const GridFile original = MakeFile(0, 2);
  std::stringstream buffer;
  ASSERT_TRUE(SaveGridFile(original, buffer).ok());
  const GridFile loaded = LoadGridFile(buffer).value();
  EXPECT_EQ(loaded.num_records(), 0u);
  EXPECT_EQ(loaded.grid(), original.grid());
}

TEST(StorageTest, RoundTripAdaptiveBoundaries) {
  // Non-uniform boundaries learned by an adaptive file survive the trip.
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  AdaptiveGridFile adaptive =
      AdaptiveGridFile::Create(std::move(schema), {.bucket_capacity = 5})
          .value();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double s = rng.NextBool(0.8) ? 0.1 : 1.0;
    ASSERT_TRUE(
        adaptive.Insert({rng.NextDouble() * s, rng.NextDouble() * s}).ok());
  }
  const GridFile snapshot = adaptive.Snapshot().value();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGridFile(snapshot, buffer).ok());
  const GridFile loaded = LoadGridFile(buffer).value();
  EXPECT_EQ(loaded.grid(), snapshot.grid());
  for (uint32_t dim = 0; dim < 2; ++dim) {
    EXPECT_EQ(loaded.partitioner().dim(dim).raw_boundaries(),
              snapshot.partitioner().dim(dim).raw_boundaries());
  }
  for (RecordId id = 0; id < snapshot.num_records(); ++id) {
    EXPECT_EQ(loaded.BucketOfRecord(id), snapshot.BucketOfRecord(id));
  }
}

TEST(StorageTest, SmallPagesStillWork) {
  const GridFile original = MakeFile(100, 4);
  std::stringstream buffer;
  // Page fits exactly one 2-attribute record under the default (v3)
  // format: 8 (header) + 2*16 (zone maps) + 16 (record) -> 56.
  ASSERT_TRUE(SaveGridFile(original, buffer, 56).ok());
  const GridFile loaded = LoadGridFile(buffer).value();
  EXPECT_EQ(loaded.num_records(), 100u);
  EXPECT_EQ(loaded.record(99), original.record(99));
}

TEST(StorageTest, PageCapacityForMath) {
  // v2: (page - 8) / 8k; v3 additionally reserves 16 bytes of zone map
  // per attribute. Too-small pages report capacity 0.
  EXPECT_EQ(PageCapacityFor(kFormatV2, 136, 2), 8u);
  EXPECT_EQ(PageCapacityFor(kFormatV3, 136, 2), 6u);
  EXPECT_EQ(PageCapacityFor(kFormatV3, 168, 2), 8u);
  EXPECT_EQ(PageCapacityFor(kFormatV1, 84, 1), 10u);
  EXPECT_EQ(PageCapacityFor(kFormatV3, 40, 2), 0u);
}

TEST(StorageTest, SmallPagesStillWorkV1) {
  const GridFile original = MakeFile(100, 4);
  std::stringstream buffer;
  SaveOptions options;
  options.page_size_bytes = 20;  // 4 (v1 header) + 16: one record per page.
  options.format_version = kFormatV1;
  ASSERT_TRUE(SaveGridFile(original, buffer, options).ok());
  const GridFile loaded = LoadGridFile(buffer).value();
  EXPECT_EQ(loaded.num_records(), 100u);
  EXPECT_EQ(loaded.record(99), original.record(99));
}

TEST(StorageTest, PageSizeTooSmallRejected) {
  const GridFile original = MakeFile(10, 5);
  std::stringstream buffer;
  EXPECT_FALSE(SaveGridFile(original, buffer, 16).ok());
  EXPECT_FALSE(SaveGridFile(original, buffer, 0).ok());
}

TEST(StorageTest, RejectsCorruptInputsWithoutCrashing) {
  const GridFile original = MakeFile(50, 6);
  std::stringstream buffer;
  ASSERT_TRUE(SaveGridFile(original, buffer).ok());
  const std::string bytes = buffer.str();

  // Bad magic.
  {
    std::string copy = bytes;
    copy[0] = 'X';
    std::stringstream in(copy);
    EXPECT_FALSE(LoadGridFile(in).ok());
  }
  // Truncations at many prefixes: must error, never crash.
  for (size_t len : {0ul, 3ul, 8ul, 17ul, 40ul, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::stringstream in(bytes.substr(0, len));
    EXPECT_FALSE(LoadGridFile(in).ok()) << "len=" << len;
  }
  // Corrupt version.
  {
    std::string copy = bytes;
    copy[4] = static_cast<char>(0x7F);
    std::stringstream in(copy);
    EXPECT_FALSE(LoadGridFile(in).ok());
  }
}

TEST(StorageTest, PagesPerBucketMath) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {2}).value();
  // 25 records into bucket 0, 1 record into bucket 1.
  for (int i = 0; i < 25; ++i) ASSERT_TRUE(f.Insert({0.1}).ok());
  ASSERT_TRUE(f.Insert({0.9}).ok());
  // Page = 4 header + 8/record; page size 84 -> capacity 10.
  const auto pages = PagesPerBucket(f, 84).value();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0], 3u);  // ceil(25 / 10).
  EXPECT_EQ(pages[1], 1u);
  EXPECT_FALSE(PagesPerBucket(f, 4).ok());
}

TEST(StorageTest, RoundTripLargePageSizes) {
  const GridFile original = MakeFile(300, 7);
  for (uint32_t page : {64u, 1024u, 1u << 20}) {
    std::stringstream buffer;
    ASSERT_TRUE(SaveGridFile(original, buffer, page).ok()) << page;
    const GridFile loaded = LoadGridFile(buffer).value();
    EXPECT_EQ(loaded.num_records(), 300u) << page;
  }
}

std::string Serialize(const GridFile& file, uint32_t page_size,
                      uint32_t version) {
  SaveOptions options;
  options.page_size_bytes = page_size;
  options.format_version = version;
  return SerializeGridFile(file, options).value();
}

TEST(StorageTest, V1FilesLoadTransparently) {
  const GridFile original = MakeFile(120, 8);
  const std::string bytes = Serialize(original, 128, kFormatV1);
  LoadReport report;
  const GridFile loaded =
      ParseGridFile(bytes, LoadOptions{}, &report).value();
  EXPECT_EQ(report.format_version, kFormatV1);
  EXPECT_FALSE(report.checksummed);
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(loaded.num_records(), original.num_records());
  for (RecordId id = 0; id < original.num_records(); ++id) {
    EXPECT_EQ(loaded.record(id), original.record(id));
  }
}

TEST(StorageTest, V2ReportsCleanLoad) {
  const GridFile original = MakeFile(120, 9);
  const std::string bytes = Serialize(original, 128, kFormatV2);
  LoadReport report;
  ASSERT_TRUE(ParseGridFile(bytes, LoadOptions{}, &report).ok());
  EXPECT_EQ(report.format_version, kFormatV2);
  EXPECT_TRUE(report.checksummed);
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(report.records_loaded, 120u);
  EXPECT_EQ(report.records_lost, 0u);
}

TEST(StorageTest, V2DetectsEverySingleBitFlip) {
  // Flip one bit at a stride of offsets across the whole file: the strict
  // checksum-verifying loader must reject every single one.
  const GridFile original = MakeFile(60, 10);
  for (uint32_t version : {kFormatV2, kFormatV3}) {
    const std::string bytes = Serialize(original, 160, version);
    for (size_t pos = 0; pos < bytes.size(); pos += 7) {
      std::string copy = bytes;
      copy[pos] = static_cast<char>(copy[pos] ^ 0x10);
      EXPECT_FALSE(ParseGridFile(copy).ok())
          << "version " << version << " offset " << pos;
    }
  }
}

TEST(StorageTest, V3RoundTripPreservesRecords) {
  const GridFile original = MakeFile(120, 21);
  const std::string bytes = Serialize(original, 168, kFormatV3);
  LoadReport report;
  const GridFile loaded =
      ParseGridFile(bytes, LoadOptions{}, &report).value();
  EXPECT_EQ(report.format_version, kFormatV3);
  EXPECT_TRUE(report.checksummed);
  EXPECT_TRUE(report.Clean());
  ASSERT_EQ(loaded.num_records(), original.num_records());
  for (RecordId id = 0; id < original.num_records(); ++id) {
    EXPECT_EQ(loaded.record(id), original.record(id));
    EXPECT_EQ(loaded.BucketOfRecord(id), original.BucketOfRecord(id));
  }
}

TEST(StorageTest, V3DecodedPageExposesColumnsAndZoneMaps) {
  const GridFile original = MakeFile(40, 22);
  // Capacity (168 - 8 - 32) / 16 = 8 -> 5 pages.
  const std::string bytes = Serialize(original, 168, kFormatV3);
  const FileLayout layout = ParseFileLayout(bytes).value();
  ASSERT_EQ(layout.page_capacity, 8u);
  ASSERT_EQ(layout.num_pages, 5u);
  for (uint64_t p = 0; p < layout.num_pages; ++p) {
    const std::string_view page_bytes =
        std::string_view(bytes).substr(layout.PageOffset(p),
                                       layout.page_size_bytes);
    const DecodedPage page =
        DecodePageBytes(page_bytes, layout, p).value();
    ASSERT_EQ(page.num_records, layout.PageRecords(p));
    ASSERT_EQ(page.num_attrs, 2u);
    for (uint32_t a = 0; a < 2; ++a) {
      double lo = page.column(a)[0];
      double hi = lo;
      for (uint32_t r = 0; r < page.num_records; ++r) {
        const RecordId id = p * layout.page_capacity + r;
        EXPECT_EQ(page.column(a)[r], original.record(id)[a]);
        lo = std::min(lo, page.column(a)[r]);
        hi = std::max(hi, page.column(a)[r]);
      }
      // Stored zone maps are exactly the per-page column min/max.
      EXPECT_EQ(page.zone_min[a], lo);
      EXPECT_EQ(page.zone_max[a], hi);
    }
    // MayMatch: a box covering the zone maps intersects; a disjoint box
    // (above every x) cannot.
    EXPECT_TRUE(page.MayMatch({page.zone_min[0], page.zone_min[1]},
                              {page.zone_max[0], page.zone_max[1]}));
    EXPECT_FALSE(page.MayMatch({page.zone_max[0] + 1.0, -5.0},
                               {page.zone_max[0] + 2.0, 5.0}));
  }
}

TEST(StorageTest, V2DecodedPageComputesZoneMapsInline) {
  // v1/v2 pages carry no stored zone maps; DecodePageBytes computes them
  // from the rows so zone-map skipping works on legacy files too.
  const GridFile original = MakeFile(30, 23);
  const std::string bytes = Serialize(original, 136, kFormatV2);
  const FileLayout layout = ParseFileLayout(bytes).value();
  const std::string_view page0 =
      std::string_view(bytes).substr(layout.PageOffset(0),
                                     layout.page_size_bytes);
  const DecodedPage page = DecodePageBytes(page0, layout, 0).value();
  ASSERT_EQ(page.num_attrs, 2u);
  for (uint32_t a = 0; a < 2; ++a) {
    double lo = page.column(a)[0];
    double hi = lo;
    for (uint32_t r = 0; r < page.num_records; ++r) {
      EXPECT_EQ(page.column(a)[r],
                original.record(layout.page_capacity * 0 + r)[a]);
      lo = std::min(lo, page.column(a)[r]);
      hi = std::max(hi, page.column(a)[r]);
    }
    EXPECT_EQ(page.zone_min[a], lo);
    EXPECT_EQ(page.zone_max[a], hi);
  }
}

TEST(StorageTest, BestEffortSalvagesUndamagedPages) {
  const GridFile original = MakeFile(100, 11);
  // Page size 88 -> capacity 5 -> 20 pages.
  const std::string bytes = Serialize(original, 88, kFormatV2);
  const FileLayout layout = ParseFileLayout(bytes).value();
  ASSERT_EQ(layout.num_pages, 20u);

  // Smash one byte in the middle of page 3.
  std::string copy = bytes;
  copy[layout.PageOffset(3) + 20] ^= 0x40;

  // Strict load rejects...
  EXPECT_FALSE(ParseGridFile(copy).ok());

  // ...best-effort load salvages the other 19 pages and reports the loss.
  LoadOptions options;
  options.policy = SalvageReadPolicy();
  LoadReport report;
  const GridFile salvaged = ParseGridFile(copy, options, &report).value();
  EXPECT_FALSE(report.Clean());
  EXPECT_EQ(report.damaged_page_count, 1u);
  ASSERT_EQ(report.damaged_pages.size(), 1u);
  EXPECT_EQ(report.damaged_pages[0].page_index, 3u);
  EXPECT_EQ(report.records_loaded, 95u);
  EXPECT_EQ(report.records_lost, 5u);
  EXPECT_EQ(salvaged.num_records(), 95u);
}

TEST(StorageTest, BestEffortReportsTruncatedTail) {
  const GridFile original = MakeFile(50, 12);
  const std::string bytes = Serialize(original, 88, kFormatV2);
  const FileLayout layout = ParseFileLayout(bytes).value();
  // Chop the last two pages and the footer.
  const std::string chopped =
      bytes.substr(0, layout.PageOffset(layout.num_pages - 2));
  EXPECT_FALSE(ParseGridFile(chopped).ok());
  LoadOptions options;
  options.policy = SalvageReadPolicy();
  LoadReport report;
  ASSERT_TRUE(ParseGridFile(chopped, options, &report).ok());
  EXPECT_FALSE(report.size_ok);
  EXPECT_EQ(report.damaged_page_count, 2u);
  EXPECT_EQ(report.records_loaded + report.records_lost, 50u);
}

TEST(StorageTest, HardenedPageValidation) {
  const GridFile original = MakeFile(40, 13);
  // v1 has no checksums, so these structural checks carry the load there.
  const std::string bytes = Serialize(original, 88, kFormatV1);
  const FileLayout layout = ParseFileLayout(bytes).value();

  // A page claiming more records than its writer-assigned count must be
  // rejected, even where it would still fit the page physically.
  {
    std::string copy = bytes;
    const uint32_t lie = layout.PageRecords(0) - 1;
    std::memcpy(copy.data() + layout.PageOffset(0), &lie, 4);
    EXPECT_FALSE(ParseGridFile(copy).ok());
  }
  {
    std::string copy = bytes;
    const uint32_t lie = 1000000;  // Way past physical capacity.
    std::memcpy(copy.data() + layout.PageOffset(0), &lie, 4);
    EXPECT_FALSE(ParseGridFile(copy).ok());
  }
  // Trailing garbage after the final page is rejected.
  {
    std::string copy = bytes + std::string(13, '\0');
    EXPECT_FALSE(ParseGridFile(copy).ok());
  }
  // A partial (truncated) final page is rejected.
  {
    const std::string copy = bytes.substr(0, bytes.size() - 1);
    EXPECT_FALSE(ParseGridFile(copy).ok());
  }
}

TEST(StorageTest, FooterIntrospection) {
  const GridFile original = MakeFile(30, 14);
  const std::string bytes = Serialize(original, 128, kFormatV2);
  const FileLayout layout = ParseFileLayout(bytes).value();
  EXPECT_EQ(layout.expected_file_size, bytes.size());
  for (uint64_t p = 0; p < layout.num_pages; ++p) {
    EXPECT_TRUE(VerifyFilePage(bytes, layout, p).ok());
  }
  EXPECT_TRUE(VerifyFileFooter(bytes, layout).ok());
  // The footer is a pure function of the body.
  EXPECT_EQ(BuildFileFooter(layout,
                            std::string_view(bytes).substr(
                                0, layout.footer_offset)),
            bytes.substr(layout.footer_offset));
  // A flipped footer byte is caught.
  std::string copy = bytes;
  copy[layout.footer_offset + 5] ^= 0x01;
  EXPECT_FALSE(VerifyFileFooter(copy, layout).ok());
}

TEST(StorageTest, SerializationIsDeterministic) {
  const GridFile a = MakeFile(77, 15);
  const GridFile b = MakeFile(77, 15);
  EXPECT_EQ(Serialize(a, 256, kFormatV2), Serialize(b, 256, kFormatV2));
}

}  // namespace
}  // namespace griddecl
