#include "griddecl/theory/strict_optimality.h"

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(StrictOptimalityTest, Validation) {
  EXPECT_FALSE(FindStrictlyOptimalAllocation(0, 3, 2).ok());
  EXPECT_FALSE(FindStrictlyOptimalAllocation(3, 0, 2).ok());
  EXPECT_FALSE(FindStrictlyOptimalAllocation(3, 3, 0).ok());
  EXPECT_FALSE(FindStrictlyOptimalAllocation(65, 3, 2).ok());
}

TEST(StrictOptimalityTest, TrivialOneDisk) {
  const auto r = FindStrictlyOptimalAllocation(4, 4, 1).value();
  EXPECT_EQ(r.outcome, SearchOutcome::kFound);
  EXPECT_TRUE(AllocationIsStrictlyOptimal(4, 4, 1, r.allocation));
}

TEST(StrictOptimalityTest, FeasibleForTwoThreeFiveDisks) {
  for (uint32_t m : {2u, 3u, 5u}) {
    const auto r = FindStrictlyOptimalAllocation(m + 2, m + 2, m).value();
    EXPECT_EQ(r.outcome, SearchOutcome::kFound) << "M=" << m;
    EXPECT_TRUE(AllocationIsStrictlyOptimal(m + 2, m + 2, m, r.allocation))
        << "M=" << m;
  }
}

TEST(StrictOptimalityTest, PaperTheoremInfeasibleBeyondFiveDisks) {
  // The paper's theorem: no strictly optimal method exists for M > 5.
  // Exhaustive proof on small grids for M = 6, 7, 8.
  for (uint32_t m : {6u, 7u, 8u}) {
    const auto r = FindStrictlyOptimalAllocation(m + 2, m + 2, m).value();
    EXPECT_EQ(r.outcome, SearchOutcome::kInfeasible) << "M=" << m;
    EXPECT_GT(r.nodes_explored, 0u);
  }
}

TEST(StrictOptimalityTest, KnownCoefficientsVerify) {
  for (uint32_t m : {1u, 2u, 3u, 5u}) {
    const auto coeffs = KnownStrictlyOptimalCoefficients(m).value();
    // Build the linear allocation on a grid larger than M and verify
    // exhaustively.
    const uint32_t side = 2 * m + 3;
    std::vector<uint32_t> alloc(side * side);
    for (uint32_t i = 0; i < side; ++i) {
      for (uint32_t j = 0; j < side; ++j) {
        alloc[i * side + j] = (coeffs.first * i + coeffs.second * j) % m;
      }
    }
    EXPECT_TRUE(AllocationIsStrictlyOptimal(side, side, m, alloc))
        << "M=" << m;
  }
}

TEST(StrictOptimalityTest, NoKnownCoefficientsBeyondFive) {
  for (uint32_t m : {4u, 6u, 7u, 100u}) {
    EXPECT_FALSE(KnownStrictlyOptimalCoefficients(m).ok()) << m;
  }
}

TEST(StrictOptimalityTest, AllocationVerifierRejectsBadAllocation) {
  // All-zeros on 2 disks: a 1x2 query gets RT 2 > opt 1.
  std::vector<uint32_t> alloc(4, 0);
  EXPECT_FALSE(AllocationIsStrictlyOptimal(2, 2, 2, alloc));
  // Checkerboard on 2 disks is strictly optimal.
  std::vector<uint32_t> checker = {0, 1, 1, 0};
  EXPECT_TRUE(AllocationIsStrictlyOptimal(2, 2, 2, checker));
}

TEST(StrictOptimalityTest, BudgetExhaustion) {
  StrictOptimalitySearchOptions opts;
  opts.max_nodes = 3;
  const auto r = FindStrictlyOptimalAllocation(6, 6, 5, opts).value();
  EXPECT_EQ(r.outcome, SearchOutcome::kBudgetExhausted);
  EXPECT_LE(r.nodes_explored, 4u);
}

TEST(StrictOptimalityTest, NonSquareGrids) {
  // 1-row grids are trivially feasible for any M (round robin).
  const auto row = FindStrictlyOptimalAllocation(1, 12, 7).value();
  EXPECT_EQ(row.outcome, SearchOutcome::kFound);
  EXPECT_TRUE(AllocationIsStrictlyOptimal(1, 12, 7, row.allocation));
  // A 2 x M+1 grid for M=6 is already infeasible? Not necessarily — but
  // 8x8 is (checked in the theorem test); here check a thin feasible case.
  const auto thin = FindStrictlyOptimalAllocation(2, 6, 4).value();
  if (thin.outcome == SearchOutcome::kFound) {
    EXPECT_TRUE(AllocationIsStrictlyOptimal(2, 6, 4, thin.allocation));
  }
}

TEST(StrictOptimalityTest, SmallestInfeasibleSquareSide) {
  bool budget_hit = true;
  // M = 2: feasible on every side we test.
  EXPECT_EQ(SmallestInfeasibleSquareSide(2, 5, &budget_hit), 0u);
  EXPECT_FALSE(budget_hit);
  // M = 6: infeasible at some small side.
  const uint32_t side6 = SmallestInfeasibleSquareSide(6, 8, &budget_hit);
  EXPECT_FALSE(budget_hit);
  EXPECT_GT(side6, 0u);
  EXPECT_LE(side6, 8u);
}

TEST(StrictOptimalityTest, FoundAllocationsAreCanonical) {
  // Symmetry breaking: first cell must be disk 0.
  const auto r = FindStrictlyOptimalAllocation(4, 4, 3).value();
  ASSERT_EQ(r.outcome, SearchOutcome::kFound);
  EXPECT_EQ(r.allocation[0], 0u);
}

}  // namespace
}  // namespace griddecl
