#include "griddecl/methods/table_method.h"

#include <sstream>

#include <gtest/gtest.h>

#include "griddecl/methods/registry.h"

namespace griddecl {
namespace {

TEST(TableMethodTest, CreateValidation) {
  const GridSpec grid = GridSpec::Create({2, 2}).value();
  EXPECT_TRUE(TableMethod::Create(grid, 2, {0, 1, 1, 0}).ok());
  // Wrong length.
  EXPECT_FALSE(TableMethod::Create(grid, 2, {0, 1, 1}).ok());
  // Out-of-range disk.
  EXPECT_FALSE(TableMethod::Create(grid, 2, {0, 1, 2, 0}).ok());
  EXPECT_FALSE(TableMethod::Create(grid, 0, {0, 0, 0, 0}).ok());
}

TEST(TableMethodTest, LookupRowMajor) {
  const GridSpec grid = GridSpec::Create({2, 3}).value();
  const auto t = TableMethod::Create(grid, 6, {0, 1, 2, 3, 4, 5}).value();
  EXPECT_EQ(t->DiskOf({0, 0}), 0u);
  EXPECT_EQ(t->DiskOf({0, 2}), 2u);
  EXPECT_EQ(t->DiskOf({1, 0}), 3u);
  EXPECT_EQ(t->DiskOf({1, 2}), 5u);
}

TEST(TableMethodTest, FromMethodSnapshotsExactly) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto hcam = CreateMethod("hcam", grid, 5).value();
  const auto table = TableMethod::FromMethod(*hcam).value();
  EXPECT_EQ(table->name(), "HCAM-table");
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(table->DiskOf(c), hcam->DiskOf(c));
  });
}

TEST(SerializationTest, RoundTripEveryRegisteredMethod) {
  const GridSpec grid = GridSpec::Create({8, 16}).value();
  for (const std::string& name : AllMethodNames()) {
    const auto method = CreateMethod(name, grid, 8).value();
    std::stringstream buffer;
    ASSERT_TRUE(SerializeAllocation(*method, buffer).ok()) << name;
    const auto loaded = DeserializeAllocation(buffer);
    ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded.value()->grid(), grid);
    EXPECT_EQ(loaded.value()->num_disks(), 8u);
    grid.ForEachBucket([&](const BucketCoords& c) {
      EXPECT_EQ(loaded.value()->DiskOf(c), method->DiskOf(c)) << name;
    });
  }
}

TEST(SerializationTest, FormatHasHeaderAndComments) {
  const GridSpec grid = GridSpec::Create({2, 2}).value();
  const auto t = TableMethod::Create(grid, 2, {0, 1, 1, 0}).value();
  std::stringstream buffer;
  ASSERT_TRUE(SerializeAllocation(*t, buffer).ok());
  const std::string text = buffer.str();
  EXPECT_EQ(text.rfind("griddecl-allocation v1", 0), 0u) << text;
  EXPECT_NE(text.find("grid 2x2"), std::string::npos);
  EXPECT_NE(text.find("disks 2"), std::string::npos);
}

TEST(SerializationTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "griddecl-allocation v1\n"
      "\n"
      "grid 2x2\n"
      "# another\n"
      "disks 2\n"
      "0 1\n"
      "\n"
      "1 0\n");
  const auto loaded = DeserializeAllocation(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->DiskOf({0, 1}), 1u);
  EXPECT_EQ(loaded.value()->DiskOf({1, 1}), 0u);
}

TEST(SerializationTest, RejectsCorruptInputs) {
  auto parse = [](const std::string& text) {
    std::stringstream in(text);
    return DeserializeAllocation(in).ok();
  };
  EXPECT_FALSE(parse(""));
  EXPECT_FALSE(parse("wrong-magic v1\ngrid 2x2\ndisks 2\n0 1 1 0\n"));
  EXPECT_FALSE(parse("griddecl-allocation v9\ngrid 2x2\ndisks 2\n0 1 1 0\n"));
  EXPECT_FALSE(parse("griddecl-allocation v1\ngrid 2y2\ndisks 2\n0 1 1 0\n"));
  EXPECT_FALSE(parse("griddecl-allocation v1\ngrid 2x2\ndisks 0\n0 1 1 0\n"));
  // Too few entries.
  EXPECT_FALSE(parse("griddecl-allocation v1\ngrid 2x2\ndisks 2\n0 1 1\n"));
  // Too many entries.
  EXPECT_FALSE(
      parse("griddecl-allocation v1\ngrid 2x2\ndisks 2\n0 1 1 0 1\n"));
  // Entry out of range.
  EXPECT_FALSE(parse("griddecl-allocation v1\ngrid 2x2\ndisks 2\n0 1 1 7\n"));
  // Non-numeric entry.
  EXPECT_FALSE(parse("griddecl-allocation v1\ngrid 2x2\ndisks 2\n0 1 x 0\n"));
}

TEST(GridSpecFromStringTest, ParsesAndRejects) {
  EXPECT_EQ(GridSpec::FromString("32x32").value().ToString(), "32x32");
  EXPECT_EQ(GridSpec::FromString("8x16x4").value().num_buckets(), 512u);
  EXPECT_EQ(GridSpec::FromString("7").value().num_dims(), 1u);
  EXPECT_FALSE(GridSpec::FromString("").ok());
  EXPECT_FALSE(GridSpec::FromString("x4").ok());
  EXPECT_FALSE(GridSpec::FromString("4x").ok());
  EXPECT_FALSE(GridSpec::FromString("4xx4").ok());
  EXPECT_FALSE(GridSpec::FromString("ax4").ok());
  EXPECT_FALSE(GridSpec::FromString("0x4").ok());
}

}  // namespace
}  // namespace griddecl
