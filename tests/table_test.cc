#include "griddecl/common/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace griddecl {
namespace {

TEST(TableTest, TextRenderingAligned) {
  Table t({"Method", "RT"});
  t.AddRow({"DM/CMD", "1.50"});
  t.AddRow({"FX", "1.25"});
  std::ostringstream os;
  t.PrintText(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| Method | RT   |"), std::string::npos) << out;
  EXPECT_NE(out.find("| DM/CMD | 1.50 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| FX     | 1.25 |"), std::string::npos) << out;
}

TEST(TableTest, CsvRendering) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(TableTest, Fmt) {
  EXPECT_EQ(Table::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Fmt(1.0, 3), "1.000");
  EXPECT_EQ(Table::Fmt(uint64_t{42}), "42");
  EXPECT_EQ(Table::Fmt(int64_t{-7}), "-7");
}

TEST(TableTest, Introspection) {
  Table t({"x", "y", "z"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"a", "b", "c"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.row(0)[2], "c");
  EXPECT_EQ(t.headers()[0], "x");
}

TEST(TableDeathTest, WrongArityRowAborts) {
  Table t({"only"});
  EXPECT_DEATH(t.AddRow({"a", "b"}), "CHECK failed");
}

}  // namespace
}  // namespace griddecl
