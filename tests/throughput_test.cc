#include "griddecl/sim/throughput.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/methods/registry.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

DiskParams UnitParams() {
  DiskParams p;
  p.avg_seek_ms = 0.0;
  p.rotational_latency_ms = 0.0;
  p.transfer_ms_per_kb = 0.125;
  p.bucket_kb = 8.0;  // 1 ms per bucket, no positioning.
  p.near_gap_buckets = 0;
  return p;
}

Workload OneQuery(const GridSpec& grid, BucketCoords lo, BucketCoords hi) {
  Workload w;
  w.queries.push_back(
      RangeQuery::Create(grid, BucketRect::Create(lo, hi).value()).value());
  return w;
}

TEST(ThroughputTest, Validation) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  ThroughputOptions opts;
  opts.concurrency = 0;
  Workload w = OneQuery(grid, {0, 0}, {1, 1});
  EXPECT_FALSE(SimulateThroughput(*dm, w, opts).ok());
  opts.concurrency = 1;
  Workload empty;
  EXPECT_FALSE(SimulateThroughput(*dm, empty, opts).ok());
}

TEST(ThroughputTest, SingleQueryMatchesMakespanModel) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  ThroughputOptions opts;
  opts.concurrency = 1;
  opts.params = UnitParams();
  // 2x2 query under DM/4: disks {0,1,1,2} -> max batch 2 buckets = 2 ms.
  const Workload w = OneQuery(grid, {0, 0}, {1, 1});
  const ThroughputResult r = SimulateThroughput(*dm, w, opts).value();
  EXPECT_DOUBLE_EQ(r.total_ms, 2.0);
  EXPECT_DOUBLE_EQ(r.mean_latency_ms, 2.0);
  EXPECT_EQ(r.num_queries, 1u);
}

TEST(ThroughputTest, SerialWhenConcurrencyOne) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 4).value();
  QueryGenerator gen(grid);
  Rng rng(1);
  const Workload w = gen.SampledPlacements({4, 4}, 20, &rng, "w").value();
  ThroughputOptions opts;
  opts.params = UnitParams();
  opts.concurrency = 1;
  const ThroughputResult serial = SimulateThroughput(*hcam, w, opts).value();
  // With MPL 1, total time = sum of per-query makespans.
  double expected = 0;
  for (const RangeQuery& q : w.queries) {
    std::vector<uint64_t> counts(4, 0);
    q.rect().ForEachBucket(
        [&](const BucketCoords& c) { ++counts[hcam->DiskOf(c)]; });
    expected += static_cast<double>(
        *std::max_element(counts.begin(), counts.end()));
  }
  EXPECT_NEAR(serial.total_ms, expected, 1e-9);
}

TEST(ThroughputTest, ConcurrencyImprovesThroughput) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(2);
  const Workload w = gen.SampledPlacements({3, 3}, 100, &rng, "w").value();
  ThroughputOptions opts;
  opts.params = UnitParams();
  opts.concurrency = 1;
  const double serial =
      SimulateThroughput(*hcam, w, opts).value().total_ms;
  opts.concurrency = 8;
  const double parallel =
      SimulateThroughput(*hcam, w, opts).value().total_ms;
  EXPECT_LT(parallel, serial);
}

TEST(ThroughputTest, BetterDeclusteringBetterThroughput) {
  // Linear puts whole columns on one disk; a column-heavy workload should
  // get clearly better throughput under HCAM.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto hcam = CreateMethod("hcam", grid, 8).value();
  const auto linear = CreateMethod("linear", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(3);
  const Workload w = gen.SampledPlacements({8, 1}, 60, &rng, "cols").value();
  ThroughputOptions opts;
  opts.params = UnitParams();
  opts.concurrency = 4;
  const ThroughputResult rh = SimulateThroughput(*hcam, w, opts).value();
  const ThroughputResult rl = SimulateThroughput(*linear, w, opts).value();
  EXPECT_GT(rh.ThroughputQps(), rl.ThroughputQps());
}

TEST(ThroughputTest, HeterogeneousDisksValidatedAndApplied) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  const Workload w = OneQuery(grid, {0, 0}, {3, 3});
  ThroughputOptions opts;
  opts.concurrency = 1;
  opts.params = UnitParams();
  opts.slowdown = {1.0, 1.0};  // Wrong arity.
  EXPECT_FALSE(SimulateThroughput(*dm, w, opts).ok());
  opts.slowdown = {1.0, -1.0, 1.0, 1.0};
  EXPECT_FALSE(SimulateThroughput(*dm, w, opts).ok());

  // A slow disk stretches completion: 4x4 query under DM/4 puts 4 buckets
  // on each disk; slowing one disk 3x makes it the bottleneck.
  opts.slowdown = {1.0, 1.0, 1.0, 3.0};
  const double slowed = SimulateThroughput(*dm, w, opts).value().total_ms;
  opts.slowdown.clear();
  const double nominal = SimulateThroughput(*dm, w, opts).value().total_ms;
  EXPECT_DOUBLE_EQ(nominal, 4.0);
  EXPECT_DOUBLE_EQ(slowed, 12.0);
}

TEST(ThroughputTest, AccountingInvariants) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto fx = CreateMethod("fx", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(4);
  const Workload w = gen.SampledPlacements({4, 4}, 50, &rng, "w").value();
  ThroughputOptions opts;
  opts.concurrency = 4;
  const ThroughputResult r = SimulateThroughput(*fx, w, opts).value();
  EXPECT_EQ(r.num_queries, 50u);
  EXPECT_GT(r.total_ms, 0.0);
  EXPECT_GE(r.max_latency_ms, r.mean_latency_ms);
  EXPECT_GT(r.ThroughputQps(), 0.0);
  ASSERT_EQ(r.disk_busy_ms.size(), 8u);
  const double util = r.MeanDiskUtilization();
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0 + 1e-9);
  for (double busy : r.disk_busy_ms) {
    EXPECT_LE(busy, r.total_ms + 1e-9);
  }
}

}  // namespace
}  // namespace griddecl
