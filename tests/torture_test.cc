#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "griddecl/common/crc32c.h"
#include "griddecl/common/random.h"
#include "griddecl/gridfile/manifest.h"
#include "griddecl/gridfile/scrub.h"

namespace griddecl {
namespace {

/// Deterministic durability torture: crash the manifest commit protocol at
/// EVERY mutating operation index and corrupt EVERY page of a protected
/// relation. Invariants under test:
///
///   * recovery after a crash at any point lands on a consistent catalog —
///     bit-exactly the previous generation or bit-exactly the new one,
///     never a mix, never a crash;
///   * any single-page corruption of a mirror- or parity-protected
///     relation is repaired bit-identically by scrub;
///   * corruption of an unprotected relation is reported and the strict
///     loader rejects the catalog — damage is never silently absorbed.

GridFile MakeFile(int num_records, uint64_t seed) {
  Schema schema = Schema::Create({{"x", 0.0, 1.0}, {"y", 0.0, 1.0}}).value();
  GridFile f = GridFile::Create(std::move(schema), {8, 8}).value();
  Rng rng(seed);
  for (int i = 0; i < num_records; ++i) {
    EXPECT_TRUE(f.Insert({rng.NextDouble(), rng.NextDouble()}).ok());
  }
  return f;
}

Catalog MakeCatalogA() {
  Catalog c(4);
  EXPECT_TRUE(
      c.AddRelation("alpha", DeclusteredFile::Create(MakeFile(80, 1), "dm", 4)
                                 .value())
          .ok());
  return c;
}

Catalog MakeCatalogB() {
  // A successor state: alpha grew, beta is new.
  Catalog c(4);
  EXPECT_TRUE(
      c.AddRelation("alpha",
                    DeclusteredFile::Create(MakeFile(96, 2), "hcam", 4)
                        .value())
          .ok());
  EXPECT_TRUE(
      c.AddRelation("beta", DeclusteredFile::Create(MakeFile(40, 3), "fx", 4)
                                .value())
          .ok());
  return c;
}

ManifestSaveOptions TortureSaveOptions() {
  ManifestSaveOptions options;
  options.page_size_bytes = 168;  // 8 records per page.
  options.default_redundancy.policy = RelationRedundancy::Policy::kMirror;
  options.default_redundancy.copies = 2;
  options.per_relation["beta"].policy = RelationRedundancy::Policy::kParity;
  options.per_relation["beta"].group_pages = 2;
  return options;
}

/// Content fingerprint of a catalog: relation names, methods, and exact
/// serialized bytes (page size fixed, so equal fingerprints mean equal
/// records, boundaries, and ids).
std::string Fingerprint(const Catalog& catalog) {
  std::string fp = std::to_string(catalog.num_disks());
  SaveOptions save;
  save.page_size_bytes = 168;
  for (const std::string& name : catalog.RelationNames()) {
    const DeclusteredFile* rel = catalog.Find(name);
    fp += "|" + name + ":" + rel->method_name() + ":" +
          std::to_string(Crc32c(SerializeGridFile(rel->file(), save).value()));
  }
  return fp;
}

TEST(TortureTest, CrashAtEveryOperationRecoversConsistently) {
  const Catalog catalog_a = MakeCatalogA();
  const Catalog catalog_b = MakeCatalogB();
  const std::string fp_a = Fingerprint(catalog_a);
  const std::string fp_b = Fingerprint(catalog_b);
  ASSERT_NE(fp_a, fp_b);
  const ManifestSaveOptions options = TortureSaveOptions();

  // Generations 1 and 2 committed cleanly (both hold catalog A). The
  // generation-3 save then has real GC work — deleting generation 1 —
  // so the sweep also hits crash points AFTER the commit.
  MemEnv base;
  ASSERT_EQ(SaveCatalogManifest(catalog_a, &base, options).value(), 1u);
  ASSERT_EQ(SaveCatalogManifest(catalog_a, &base, options).value(), 2u);
  ASSERT_TRUE(base.Exists(ManifestFileName(1)));

  // Count the mutating ops a generation-3 save issues.
  uint64_t total_ops;
  {
    MemEnv scratch = base;
    CrashEnv counter(&scratch, UINT64_MAX, /*seed=*/0);
    ASSERT_TRUE(SaveCatalogManifest(catalog_b, &counter, options).ok());
    total_ops = counter.ops_issued();
  }
  ASSERT_GT(total_ops, 8u);

  int recovered_old = 0;
  int recovered_new = 0;
  for (uint64_t crash_at = 0; crash_at < total_ops; ++crash_at) {
    for (uint64_t seed : {11u, 22u, 33u}) {
      MemEnv env = base;
      CrashEnv crash(&env, crash_at, seed);
      const Result<uint64_t> save =
          SaveCatalogManifest(catalog_b, &crash, options);
      ASSERT_TRUE(crash.crashed());

      // "Reboot": recover from the wreckage through the raw env.
      const Result<CatalogManifest> manifest = ReadCurrentManifest(env);
      ASSERT_TRUE(manifest.ok())
          << "crash_at=" << crash_at << " seed=" << seed << ": "
          << manifest.status().ToString();
      const Result<Catalog> loaded = LoadCatalogManifest(env);
      ASSERT_TRUE(loaded.ok())
          << "crash_at=" << crash_at << " seed=" << seed << ": "
          << loaded.status().ToString();
      const std::string fp = Fingerprint(loaded.value());
      // Consistency: exactly the old catalog or exactly the new one.
      ASSERT_TRUE(fp == fp_a || fp == fp_b)
          << "crash_at=" << crash_at << " seed=" << seed;
      if (fp == fp_a) {
        EXPECT_FALSE(save.ok());  // A save that failed must not commit...
        ++recovered_old;
      } else {
        ++recovered_new;
      }
      // Pre-commit crashes leave generation 2; post-commit (mid-GC)
      // crashes leave the fully durable generation 3.
      EXPECT_EQ(manifest.value().generation, fp == fp_a ? 2u : 3u);

      // The wreckage must remain writable: a retried save commits and
      // subsequent recovery sees the new catalog.
      ASSERT_TRUE(SaveCatalogManifest(catalog_b, &env, options).ok())
          << "crash_at=" << crash_at;
      EXPECT_EQ(Fingerprint(LoadCatalogManifest(env).value()), fp_b);
    }
  }
  // The sweep must actually exercise both outcomes.
  EXPECT_GT(recovered_old, 0);
  EXPECT_GT(recovered_new, 0);
}

TEST(TortureTest, EveryPageCorruptionOfProtectedRelationRepairs) {
  for (const RelationRedundancy::Policy policy :
       {RelationRedundancy::Policy::kMirror,
        RelationRedundancy::Policy::kParity}) {
    Catalog catalog(4);
    ASSERT_TRUE(catalog
                    .AddRelation("r", DeclusteredFile::Create(
                                          MakeFile(120, 4), "dm", 4)
                                          .value())
                    .ok());
    MemEnv base;
    ManifestSaveOptions options;
    options.page_size_bytes = 168;
    options.default_redundancy.policy = policy;
    options.default_redundancy.group_pages = 4;
    ASSERT_TRUE(SaveCatalogManifest(catalog, &base, options).ok());
    const CatalogManifest m = ReadCurrentManifest(base).value();
    const std::string pristine = base.ReadFile(m.DataFileName(0)).value();
    const FileLayout layout = ParseFileLayout(pristine).value();

    for (uint64_t page = 0; page < layout.num_pages; ++page) {
      for (const uint32_t delta : {0u, 7u, layout.page_size_bytes - 1}) {
        MemEnv env = base;
        ASSERT_TRUE(env.CorruptByte(m.DataFileName(0),
                                    layout.PageOffset(page) + delta, 0xA5)
                        .ok());
        // Strict load must reject the damage (never silently wrong)...
        EXPECT_FALSE(LoadCatalogManifest(env).ok())
            << "page " << page << " delta " << delta;
        // ...and scrub must repair it bit-identically.
        const ScrubReport report = ScrubCatalog(&env).value();
        ASSERT_TRUE(report.Clean())
            << RedundancyPolicyName(policy) << " page " << page << " delta "
            << delta << "\n"
            << FormatScrubReport(report);
        EXPECT_EQ(env.ReadFile(m.DataFileName(0)).value(), pristine);
        EXPECT_TRUE(LoadCatalogManifest(env).ok());
      }
    }
  }
}

TEST(TortureTest, EveryPageCorruptionOfUnprotectedRelationIsReported) {
  Catalog catalog(4);
  ASSERT_TRUE(catalog
                  .AddRelation("r", DeclusteredFile::Create(
                                        MakeFile(120, 5), "dm", 4)
                                        .value())
                  .ok());
  MemEnv base;
  ManifestSaveOptions options;
  options.page_size_bytes = 168;
  ASSERT_TRUE(SaveCatalogManifest(catalog, &base, options).ok());
  const CatalogManifest m = ReadCurrentManifest(base).value();
  const std::string pristine = base.ReadFile(m.DataFileName(0)).value();
  const FileLayout layout = ParseFileLayout(pristine).value();

  for (uint64_t page = 0; page < layout.num_pages; ++page) {
    MemEnv env = base;
    ASSERT_TRUE(env.CorruptByte(m.DataFileName(0),
                                layout.PageOffset(page) + 13, 0xA5)
                    .ok());
    EXPECT_FALSE(LoadCatalogManifest(env).ok()) << page;
    const ScrubReport report = ScrubCatalog(&env).value();
    EXPECT_FALSE(report.Clean()) << page;
    EXPECT_EQ(report.relations_unrepairable, 1u) << page;
    // Still rejected after scrub: the damage was reported, not hidden.
    EXPECT_FALSE(LoadCatalogManifest(env).ok()) << page;
  }
}

TEST(TortureTest, ArbitraryByteCorruptionNeverCrashesRecovery) {
  // Flip a byte at a stride of offsets in EVERY file of a committed env
  // (manifest and CURRENT included): recovery must always either load a
  // consistent catalog or reject with a Status — never crash, never
  // return a catalog that disagrees with both known-good states.
  const Catalog catalog = MakeCatalogA();
  const std::string fp_a = Fingerprint(catalog);
  MemEnv base;
  const ManifestSaveOptions options = TortureSaveOptions();
  ASSERT_TRUE(SaveCatalogManifest(catalog, &base, options).ok());

  const std::vector<std::string> all_files = base.ListFiles().value();
  for (const std::string& name : all_files) {
    const size_t size = base.ReadFile(name).value().size();
    for (size_t off = 0; off < size; off += 31) {
      MemEnv env = base;
      ASSERT_TRUE(env.CorruptByte(name, off, 0x55).ok());
      const Result<Catalog> loaded = LoadCatalogManifest(env);
      if (loaded.ok()) {
        EXPECT_EQ(Fingerprint(loaded.value()), fp_a)
            << name << " offset " << off;
      }
      // Scrub likewise must never crash; where it claims success the
      // catalog must load and match.
      const Result<ScrubReport> scrubbed = ScrubCatalog(&env);
      if (scrubbed.ok() && scrubbed.value().Clean()) {
        const Result<Catalog> after = LoadCatalogManifest(env);
        ASSERT_TRUE(after.ok()) << name << " offset " << off;
        EXPECT_EQ(Fingerprint(after.value()), fp_a)
            << name << " offset " << off;
      }
    }
  }
}

}  // namespace
}  // namespace griddecl
