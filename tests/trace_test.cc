#include "griddecl/query/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

TEST(TraceTest, RoundTrip) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  QueryGenerator gen(grid);
  Rng rng(5);
  Workload w = gen.SampledPlacements({3, 4}, 25, &rng, "my trace").value();

  std::stringstream buffer;
  ASSERT_TRUE(SerializeWorkload(grid, w, buffer).ok());
  const WorkloadTrace trace = DeserializeWorkload(buffer).value();
  EXPECT_EQ(trace.grid, grid);
  EXPECT_EQ(trace.workload.name, "my trace");
  ASSERT_EQ(trace.workload.size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(trace.workload.queries[i].ToString(),
              w.queries[i].ToString());
  }
}

TEST(TraceTest, RoundTrip3D) {
  const GridSpec grid = GridSpec::Create({4, 6, 8}).value();
  QueryGenerator gen(grid);
  Workload w = gen.AllPlacements({2, 3, 4}, "threed").value();
  std::stringstream buffer;
  ASSERT_TRUE(SerializeWorkload(grid, w, buffer).ok());
  const WorkloadTrace trace = DeserializeWorkload(buffer).value();
  EXPECT_EQ(trace.grid.num_dims(), 3u);
  EXPECT_EQ(trace.workload.size(), w.size());
}

TEST(TraceTest, SerializeRejectsOutOfGridQuery) {
  const GridSpec small = GridSpec::Create({4, 4}).value();
  const GridSpec big = GridSpec::Create({8, 8}).value();
  Workload w;
  w.queries.push_back(
      RangeQuery::Create(big, BucketRect::Create({0, 0}, {6, 6}).value())
          .value());
  std::stringstream buffer;
  EXPECT_FALSE(SerializeWorkload(small, w, buffer).ok());
}

TEST(TraceTest, ParsesHandWrittenTrace) {
  std::stringstream in(
      "# captured 1994-02-14\n"
      "griddecl-workload v1\n"
      "grid 8x8\n"
      "name legacy\n"
      "q 0 3 0 3\n"
      "q 2 2 0 7\n");
  const WorkloadTrace trace = DeserializeWorkload(in).value();
  EXPECT_EQ(trace.workload.name, "legacy");
  ASSERT_EQ(trace.workload.size(), 2u);
  EXPECT_EQ(trace.workload.queries[0].NumBuckets(), 16u);
  EXPECT_EQ(trace.workload.queries[1].NumBuckets(), 8u);
}

TEST(TraceTest, RejectsCorruptTraces) {
  auto parse = [](const std::string& text) {
    std::stringstream in(text);
    return DeserializeWorkload(in).ok();
  };
  EXPECT_FALSE(parse(""));
  EXPECT_FALSE(parse("nope v1\ngrid 4x4\n"));
  EXPECT_FALSE(parse("griddecl-workload v2\ngrid 4x4\n"));
  EXPECT_FALSE(parse("griddecl-workload v1\nnogrid\n"));
  // Query outside the grid.
  EXPECT_FALSE(parse("griddecl-workload v1\ngrid 4x4\nq 0 5 0 1\n"));
  // lo > hi.
  EXPECT_FALSE(parse("griddecl-workload v1\ngrid 4x4\nq 3 1 0 1\n"));
  // Wrong arity.
  EXPECT_FALSE(parse("griddecl-workload v1\ngrid 4x4\nq 0 1\n"));
  EXPECT_FALSE(parse("griddecl-workload v1\ngrid 4x4\nq 0 1 0 1 0 1\n"));
  // Junk line.
  EXPECT_FALSE(parse("griddecl-workload v1\ngrid 4x4\nz 0 1 0 1\n"));
}

TEST(TraceTest, EmptyWorkloadRoundTrips) {
  const GridSpec grid = GridSpec::Create({4, 4}).value();
  Workload w;
  w.name = "empty";
  std::stringstream buffer;
  ASSERT_TRUE(SerializeWorkload(grid, w, buffer).ok());
  const WorkloadTrace trace = DeserializeWorkload(buffer).value();
  EXPECT_TRUE(trace.workload.empty());
  EXPECT_EQ(trace.workload.name, "empty");
}

}  // namespace
}  // namespace griddecl
