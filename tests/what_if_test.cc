#include "griddecl/eval/what_if.h"

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

Workload SquareWorkload(const GridSpec& grid, uint32_t side) {
  QueryGenerator gen(grid);
  return gen.AllPlacements({side, side}, "squares").value();
}

TEST(WhatIfTest, Validation) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const Workload w = SquareWorkload(grid, 4);
  Workload empty;
  EXPECT_FALSE(DiskScalingAnalysis(grid, "dm", empty, {2, 4}).ok());
  EXPECT_FALSE(DiskScalingAnalysis(grid, "dm", w, {}).ok());
  EXPECT_FALSE(DiskScalingAnalysis(grid, "dm", w, {4, 2}).ok());
  EXPECT_FALSE(DiskScalingAnalysis(grid, "dm", w, {0, 2}).ok());
  EXPECT_FALSE(DiskScalingAnalysis(grid, "bogus", w, {2, 4}).ok());
  // Query from another grid.
  const GridSpec big = GridSpec::Create({32, 32}).value();
  EXPECT_FALSE(
      DiskScalingAnalysis(grid, "dm", SquareWorkload(big, 20), {2}).ok());
}

TEST(WhatIfTest, MonotoneScalingForRoundRobinMethod) {
  // HCAM's mean response on fixed queries never increases with more disks,
  // and speedup/efficiency are computed against the first point.
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const Workload w = SquareWorkload(grid, 4);
  const auto points =
      DiskScalingAnalysis(grid, "hcam", w, {2, 4, 8, 16}).value();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].disks, 2u);
  EXPECT_DOUBLE_EQ(points[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(points[0].efficiency, 1.0);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].mean_response, points[i - 1].mean_response + 1e-9);
    EXPECT_GE(points[i].speedup, points[i - 1].speedup - 1e-9);
    EXPECT_LE(points[i].efficiency, 1.0 + 1e-9);
    EXPECT_LE(points[i].mean_optimal, points[i - 1].mean_optimal + 1e-9);
  }
}

TEST(WhatIfTest, SkipsUnsupportedDiskCounts) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const Workload w = SquareWorkload(grid, 3);
  // ECC exists only at powers of two: 6 and 12 are skipped.
  const auto points =
      DiskScalingAnalysis(grid, "ecc", w, {4, 6, 8, 12}).value();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].disks, 4u);
  EXPECT_EQ(points[1].disks, 8u);
  // Nothing constructible at all -> error.
  EXPECT_FALSE(DiskScalingAnalysis(grid, "ecc", w, {3, 6}).ok());
}

TEST(WhatIfTest, RecommendDiskCount) {
  const GridSpec grid = GridSpec::Create({32, 32}).value();
  const Workload w = SquareWorkload(grid, 8);  // 64-bucket queries.
  // HCAM near-optimal: at M=16 mean RT ~ 64/16*(1+eps) ~ 4.x; at M=8 ~ 8.x.
  const auto m =
      RecommendDiskCount(grid, "hcam", w, 6.0, {2, 4, 8, 16, 32}).value();
  EXPECT_EQ(m, 16u);
  // Unreachable target.
  const auto none = RecommendDiskCount(grid, "hcam", w, 0.5, {2, 4, 8});
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
  // Bad target.
  EXPECT_FALSE(RecommendDiskCount(grid, "hcam", w, 0.0, {2}).ok());
}

}  // namespace
}  // namespace griddecl
