#include "griddecl/methods/workload_opt.h"

#include <gtest/gtest.h>

#include "griddecl/common/random.h"
#include "griddecl/eval/metrics.h"
#include "griddecl/methods/registry.h"
#include "griddecl/query/generator.h"

namespace griddecl {
namespace {

TEST(WorkloadCostTest, SumsResponseTimes) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 2}, "w").value();
  uint64_t expected = 0;
  for (const RangeQuery& q : w.queries) expected += ResponseTime(*dm, q);
  EXPECT_EQ(WorkloadCost(*dm, w), expected);
}

TEST(WorkloadOptTest, Validation) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  Workload empty;
  EXPECT_FALSE(OptimizeForWorkload(*dm, empty).ok());

  // A query from a different (larger) grid is rejected.
  const GridSpec big = GridSpec::Create({16, 16}).value();
  Workload alien;
  alien.queries.push_back(
      RangeQuery::Create(big, BucketRect::Create({0, 0}, {12, 12}).value())
          .value());
  EXPECT_FALSE(OptimizeForWorkload(*dm, alien).ok());
}

TEST(WorkloadOptTest, NeverWorseAndUsuallyBetter) {
  // DM is weak on 2x2 queries: the optimizer must strictly improve it.
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 2}, "2x2").value();

  WorkloadOptimizeStats stats;
  const auto optimized = OptimizeForWorkload(*dm, w, {}, &stats).value();
  EXPECT_EQ(stats.initial_cost, WorkloadCost(*dm, w));
  EXPECT_EQ(stats.final_cost, WorkloadCost(*optimized, w));
  EXPECT_LE(stats.final_cost, stats.initial_cost);
  EXPECT_LT(stats.final_cost, stats.initial_cost);  // DM has obvious slack.
  EXPECT_GT(stats.moves_applied, 0u);
  EXPECT_EQ(optimized->name(), "DM/CMD+opt");
  EXPECT_EQ(optimized->num_disks(), 4u);
}

TEST(WorkloadOptTest, AlreadyOptimalSeedIsFixpoint) {
  // The M=2 checkerboard is strictly optimal; no move can improve it.
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 2).value();
  QueryGenerator gen(grid);
  Workload w = gen.AllPlacements({2, 2}, "2x2").value();
  w.Append(gen.AllPlacements({1, 2}, "1x2").value());

  WorkloadOptimizeStats stats;
  const auto optimized = OptimizeForWorkload(*dm, w, {}, &stats).value();
  EXPECT_EQ(stats.moves_applied, 0u);
  EXPECT_EQ(stats.final_cost, stats.initial_cost);
  EXPECT_EQ(stats.passes, 0u);  // First pass found nothing; loop exited.
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(optimized->DiskOf(c), dm->DiskOf(c));
  });
}

TEST(WorkloadOptTest, ImprovesGeneralizationOnHeldOutPlacements) {
  // Train on a sample of 3x3 placements, evaluate on all: the optimizer
  // should still beat the seed (structure generalizes across placements).
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto linear = CreateMethod("linear", grid, 8).value();
  QueryGenerator gen(grid);
  Rng rng(3);
  const Workload train =
      gen.SampledPlacements({3, 3}, 120, &rng, "train").value();
  const Workload all = gen.AllPlacements({3, 3}, "all").value();

  const auto optimized = OptimizeForWorkload(*linear, train).value();
  EXPECT_LT(WorkloadCost(*optimized, all), WorkloadCost(*linear, all));
}

TEST(WorkloadOptTest, DeterministicForSeed) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 2}, "w").value();
  WorkloadOptimizeOptions opts;
  opts.seed = 11;
  const auto a = OptimizeForWorkload(*dm, w, opts).value();
  const auto b = OptimizeForWorkload(*dm, w, opts).value();
  grid.ForEachBucket([&](const BucketCoords& c) {
    EXPECT_EQ(a->DiskOf(c), b->DiskOf(c));
  });
}

TEST(WorkloadOptTest, PassBudgetRespected) {
  const GridSpec grid = GridSpec::Create({16, 16}).value();
  const auto random = CreateMethod("random", grid, 8).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({4, 4}, "w").value();
  WorkloadOptimizeOptions opts;
  opts.max_passes = 1;
  WorkloadOptimizeStats stats;
  ASSERT_TRUE(OptimizeForWorkload(*random, w, opts, &stats).ok());
  EXPECT_LE(stats.passes, 1u);
}

TEST(WorkloadOptTest, OptimizerReachesNearOptimalOnSmallCase) {
  // On a tiny grid with all 2x2 queries and M=4, a perfect allocation
  // (every 2x2 distinct) exists; the climb should get all the way or very
  // close to cost == num_queries (response 1 each).
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto seed_method = CreateMethod("dm", grid, 4).value();
  QueryGenerator gen(grid);
  const Workload w = gen.AllPlacements({2, 2}, "2x2").value();
  const auto optimized = OptimizeForWorkload(*seed_method, w).value();
  const double mean =
      static_cast<double>(WorkloadCost(*optimized, w)) /
      static_cast<double>(w.size());
  EXPECT_LT(mean, 1.35);  // Seed DM starts at 2.0.
}

}  // namespace
}  // namespace griddecl
