#include "griddecl/theory/worst_case.h"

#include <gtest/gtest.h>

#include "griddecl/eval/metrics.h"
#include "griddecl/methods/dm.h"
#include "griddecl/methods/registry.h"
#include "griddecl/query/query.h"
#include "griddecl/sim/io_sim.h"

namespace griddecl {
namespace {

TEST(WorstCaseTest, GuardsAgainstHugeGrids) {
  const GridSpec grid = GridSpec::Create({2048, 2048}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  EXPECT_FALSE(FindWorstCaseQuery(*dm).ok());
}

TEST(WorstCaseTest, StrictlyOptimalMethodHasZeroDeviation) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto gdm = GdmMethod::Create(grid, 5, {1, 2}).value();
  const WorstCaseResult worst = FindWorstCaseQuery(*gdm).value();
  EXPECT_EQ(worst.AdditiveDeviation(), 0u);
  EXPECT_DOUBLE_EQ(worst.Ratio(), 1.0);
}

TEST(WorstCaseTest, DmWorstCaseIsTheDiagonalTrap) {
  // DM with M=4 on small squares: a 2x2 query already deviates by 1; on an
  // 8x8 grid the overall worst ratio is the anti-diagonal effect. The
  // reported worst query must (a) reproduce its claimed response under the
  // generic metric and (b) dominate a known-bad query.
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  const WorstCaseResult worst = FindWorstCaseQuery(*dm).value();

  const RangeQuery check = RangeQuery::Create(grid, worst.rect).value();
  EXPECT_EQ(ResponseTime(*dm, check), worst.response);
  EXPECT_EQ(OptimalResponseTime(worst.volume, 4), worst.optimal);

  const RangeQuery known_bad =
      RangeQuery::Create(grid, BucketRect::Create({0, 0}, {1, 1}).value())
          .value();
  const uint64_t known_dev =
      ResponseTime(*dm, known_bad) - OptimalResponseTime(4, 4);
  EXPECT_GE(worst.AdditiveDeviation(), known_dev);
  EXPECT_GE(worst.AdditiveDeviation(), 1u);
}

TEST(WorstCaseTest, VolumeCapRestrictsSearch) {
  const GridSpec grid = GridSpec::Create({8, 8}).value();
  const auto dm = CreateMethod("dm", grid, 4).value();
  const WorstCaseResult capped = FindWorstCaseQuery(*dm, 4).value();
  EXPECT_LE(capped.volume, 4u);
  const WorstCaseResult full = FindWorstCaseQuery(*dm).value();
  EXPECT_GE(full.AdditiveDeviation(), capped.AdditiveDeviation());
}

TEST(WorstCaseTest, ThreeDimensionalGrid) {
  const GridSpec grid = GridSpec::Create({4, 4, 4}).value();
  const auto fx = CreateMethod("fx", grid, 4).value();
  const WorstCaseResult worst = FindWorstCaseQuery(*fx).value();
  const RangeQuery check = RangeQuery::Create(grid, worst.rect).value();
  EXPECT_EQ(ResponseTime(*fx, check), worst.response);
}

TEST(WorstCaseTest, AgreesWithBruteForceOnTinyGrid) {
  const GridSpec grid = GridSpec::Create({4, 5}).value();
  const auto rnd = CreateMethod("random", grid, 3).value();
  const WorstCaseResult fast = FindWorstCaseQuery(*rnd).value();
  // Brute force every rectangle.
  uint64_t best_dev = 0;
  double best_ratio = 0;
  for (uint32_t lo0 = 0; lo0 < 4; ++lo0) {
    for (uint32_t hi0 = lo0; hi0 < 4; ++hi0) {
      for (uint32_t lo1 = 0; lo1 < 5; ++lo1) {
        for (uint32_t hi1 = lo1; hi1 < 5; ++hi1) {
          const RangeQuery q =
              RangeQuery::Create(
                  grid, BucketRect::Create({lo0, lo1}, {hi0, hi1}).value())
                  .value();
          const uint64_t rt = ResponseTime(*rnd, q);
          const uint64_t opt = OptimalResponseTime(q.NumBuckets(), 3);
          const uint64_t dev = rt - opt;
          const double ratio =
              static_cast<double>(rt) / static_cast<double>(opt);
          if (dev > best_dev || (dev == best_dev && ratio > best_ratio)) {
            best_dev = dev;
            best_ratio = ratio;
          }
        }
      }
    }
  }
  EXPECT_EQ(fast.AdditiveDeviation(), best_dev);
  EXPECT_DOUBLE_EQ(fast.Ratio(), best_ratio);
}

TEST(HeterogeneousDiskTest, SlowDiskStretchesMakespan) {
  DiskParams p;
  p.avg_seek_ms = 0;
  p.rotational_latency_ms = 0;
  p.transfer_ms_per_kb = 0.125;
  p.bucket_kb = 8;  // 1 ms/bucket nominal.
  ParallelIoSimulator uniform(4, p);
  ParallelIoSimulator skewed(4, p, {1.0, 1.0, 1.0, 3.0});
  const std::vector<std::vector<uint64_t>> schedule = {
      {1, 2}, {10, 11}, {20, 21}, {30, 31}};
  EXPECT_DOUBLE_EQ(uniform.RunSchedule(schedule).makespan_ms, 2.0);
  EXPECT_DOUBLE_EQ(skewed.RunSchedule(schedule).makespan_ms, 6.0);
  EXPECT_DOUBLE_EQ(skewed.slowdown(3), 3.0);
  EXPECT_DOUBLE_EQ(skewed.slowdown(0), 1.0);
}

TEST(HeterogeneousDiskDeathTest, BadSlowdownsRejected) {
  DiskParams p;
  EXPECT_DEATH(ParallelIoSimulator(4, p, {1.0, 1.0}), "CHECK failed");
  EXPECT_DEATH(ParallelIoSimulator(2, p, {1.0, 0.0}), "CHECK failed");
}

}  // namespace
}  // namespace griddecl
