/// declctl: command-line front end for the griddecl library.
///
/// Subcommands:
///
///   declctl methods
///       List the registered declustering methods and their restrictions.
///
///   declctl eval --grid 64x64 --disks 16 --method hcam --shape 4x4
///                [--placements 4096] [--seed 42]
///       Mean response time of one method on all/sampled placements of a
///       query shape.
///
///   declctl compare --grid 64x64 --disks 16 --shape 4x4
///                [--methods dm,fx-auto,ecc,hcam] [--placements N]
///       Side-by-side comparison table.
///
///   declctl sweep-size --grid 64x64 --disks 16 --areas 1,4,16,64,256
///       The paper's Experiment 1 at arbitrary parameters.
///
///   declctl gen-trace --grid 64x64 --shape 3x3 --count 200 [--seed 7]
///       Emit a workload trace (stdout) for later use.
///
///   declctl advise --trace FILE --disks 16 [--no-optimize]
///       Score methods against a recorded trace and recommend one.
///
///   declctl show --grid 16x16 --disks 8 --method hcam
///       Render a 2-d allocation as a character grid (one base-36 digit
///       per bucket).
///
///   declctl export --grid 32x32 --disks 8 --method ecc
///       Print the full allocation in the serializable table format.
///
///   declctl optimize --trace FILE --disks 16 [--seed-method hcam]
///                [--passes 8]
///       Hill-climb an allocation for a recorded trace; prints the
///       optimized allocation in the serializable table format.
///
///   declctl throughput --trace FILE --disks 16 --method hcam [--mpl 4]
///       Closed-system multiuser throughput simulation of a trace.
///
///   declctl search --disks 6 --rows 8 --cols 8 [--max-nodes N]
///       Exhaustive strict-optimality search (the paper's theorem).
///
///   declctl degrade --grid 32x32 --disks 8 --shape 4x4 [--queries 200]
///                [--max-failed 2] [--replication 2,3] [--methods a,b,...]
///                [--seed 42] [--mpl 4] [--json FILE]
///                [--failure-domain node|rack|zone --topology NxRxZ]
///                [--policies chained,spread,zone_aware]
///                [--placement-seed S] [--repair]
///                [--repair-detect-ms MS] [--repair-ms-per-replica MS]
///       Availability sweep: mean response and availability vs. failed
///       disks per method and degraded-read strategy (plain, replica
///       re-routing, ECC reconstruction). `--json -` prints the JSON
///       report to stdout instead of the table. With `--failure-domain`
///       the sweep kills whole nodes/racks/zones of `--topology` instead
///       of single disks and evaluates the cluster placement policies
///       (chained, spread, zone_aware) as the replica strategies — the
///       A16 correlated-failure experiment. `--repair` adds
///       `<policy>-rR+repair` strategies where every earlier kill has
///       been healed by the repair planner before the next domain dies,
///       with a modelled redundancy-restored-by time per point — the
///       A17 self-healing experiment.
///
///   declctl mkcatalog --dir DIR --grid 8x8 --disks 4 [--methods dm,hcam]
///                [--records 256] [--seed 42] [--page-size 4096]
///                [--format 2|3] [--redundancy none|mirror|parity]
///                [--copies 2] [--group-pages 8] [--clustered]
///                [--placement chained|spread|zone_aware
///                 --topology N[xR[xZ]] [--placement-seed S]]
///       Build a catalog of synthetic relations (one per method, uniform
///       random records) and commit it to DIR as a checksummed manifest
///       generation, optionally with mirror or parity redundancy.
///       `--format` picks the page layout (3 = columnar with zone maps,
///       the default; 2 = the row-major v2 format). `--clustered`
///       inserts records bucket by bucket with per-bucket counts padded
///       to a page-capacity multiple, producing the bucket-clustered
///       layout `serve --fail-disk` requires.
///
///   declctl fsck --dir DIR [--dry-run]
///       Verify every page of every relation in the catalog at DIR
///       against its checksums; repair damage from mirror/parity
///       redundancy and heal damaged sidecars. `--dry-run` reports what
///       would be repaired without writing. Exit status: 0 when the
///       catalog is (now) intact, 1 when unrepairable damage remains.
///
///   declctl serve --dir DIR --script FILE [--threads 4] [--queue 64]
///                [--deadline MS] [--drain MS] [--seed S]
///                [--pool-pages N] [--transient-prob P] [--fault-seed S]
///                [--max-transient-attempts K] [--latency MS]
///                [--fail-disk D --fail-relation NAME]
///       Run the resilient query service (serve/service.h) over the
///       catalog at DIR and execute the range queries in FILE (format:
///       serve/script.h — `query <relation> <lo,..> <hi,..>
///       [deadline_ms]`). Optional fault injection wraps the catalog in a
///       FaultyEnv: `--transient-prob` injects seeded transient read
///       faults (exercising retries), `--fail-disk`/`--fail-relation`
///       permanently fails one virtual disk of one relation (exercising
///       breakers and degraded reads; requires a bucket-clustered
///       layout). `--pool-pages` sizes the scan-resistant buffer pool (0
///       disables caching). Prints one outcome line per query and a
///       summary; exit status 0 iff every query succeeded. With
///       `--metrics-json` the snapshot includes the pool's
///       `storage.pool.*` hit/miss/eviction counters.
///
///   declctl cluster --dir DIR --script FILE [--nodes 4] [--threads 4]
///                [--hedge-delay MS] [--no-hedge] [--first-success]
///                [--quorum F] [--seed S] [--latency n0,n1,...]
///                [--transient-prob P] [--fault-seed S]
///                [--max-nodes N] [--retry-budget N] [--hedge-budget F]
///                [--placement chained|spread|zone_aware
///                 --topology N[xR[xZ]] [--placement-seed S]]
///       Simulate an N-node scatter-gather cluster (cluster/cluster.h)
///       over the catalog at DIR: every node gets a private in-memory
///       copy of the catalog behind a FaultyEnv and a serve::QueryService;
///       the coordinator plans per-node sub-queries along virtual-disk
///       ownership, hedges stragglers to replica-holding nodes, routes
///       around dead or breaker-tripped nodes, and returns partial
///       results with an explicit availability fraction when buckets have
///       no live route. The script (cluster/script.h) extends the serve
///       format with `kill-node N`, `revive-node N`, `kill-zone Z`,
///       `revive-zone Z`, `advance-ms T`, `migrate <method> <disks>`
///       (live re-declustering with atomic cutover), `repair [B/s]`
///       (paced re-replication of replicas lost to heartbeat-dead or
///       decommissioned nodes), `add-node <rack> <zone>` (grow the
///       cluster; requires headroom from `--max-nodes`), and
///       `remove-node N` (decommission). `--latency` injects
///       per-node read latency in ms (the slow-node hedging demo).
///       `--placement`/`--topology` override the replica placement policy
///       recorded in the manifest (chained when absent); self-colocating
///       chained placements are reported as warnings. `--retry-budget`
///       caps per-query failover attempts; `--hedge-budget` caps
///       cluster-wide hedged extras as a fraction of primary sub-queries
///       (0 = unlimited for both). Exit status 0 iff every query returned
///       complete and every migrate or repair committed.
///
/// Commands that drive the evaluator, a simulator, or the storage stack
/// (eval, compare, throughput, degrade, mkcatalog, fsck) also accept
/// `--metrics-json=PATH` ("-" = stdout): the library's observability
/// counters and histograms (obs/metrics.h) are snapshotted to JSON after
/// the work finishes. Without the flag no registry exists and the
/// instrumentation is a no-op.
///
/// All output is plain text; exit status is non-zero on usage errors.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "griddecl/cluster/cluster.h"
#include "griddecl/cluster/script.h"
#include "griddecl/common/flags.h"
#include "griddecl/eval/advisor.h"
#include "griddecl/griddecl.h"
#include "griddecl/methods/table_method.h"
#include "griddecl/methods/workload_opt.h"
#include "griddecl/query/trace.h"
#include "griddecl/serve/script.h"
#include "griddecl/serve/service.h"
#include "griddecl/theory/kd_strict_optimality.h"

namespace griddecl {
namespace {

int Fail(const std::string& message) {
  std::cerr << "declctl: " << message << "\n";
  return 1;
}

/// `--metrics-json=PATH` support ("-" = stdout). Commands pass `registry()`
/// into library options — null when the flag is absent, which compiles the
/// library's instrumentation down to no-ops — and call `Flush()` once the
/// work is done to write the deterministic JSON snapshot.
struct MetricsSink {
  explicit MetricsSink(const Flags& flags)
      : path(flags.GetString("metrics-json", "")) {}

  obs::MetricsRegistry* registry() { return path.empty() ? nullptr : &reg; }

  /// Writes the snapshot; returns non-zero on I/O failure (usable as the
  /// command's exit status).
  int Flush() {
    if (path.empty()) return 0;
    obs::JsonOptions json;
    json.indent = "  ";
    if (path == "-") {
      std::cout << reg.ToJson(json) << "\n";
      return 0;
    }
    std::ofstream out(path);
    if (!out.good()) return Fail("cannot write '" + path + "'");
    out << reg.ToJson(json) << "\n";
    out.flush();
    if (!out.good()) return Fail("write to '" + path + "' failed");
    return 0;
  }

  std::string path;
  obs::MetricsRegistry reg;
};

int Usage() {
  std::cerr <<
      "usage: declctl <command> [flags]\n"
      "commands: methods | eval | compare | sweep-size | gen-trace |\n"
      "          advise | show | export | optimize | throughput | search |\n"
      "          degrade | mkcatalog | fsck | serve | cluster\n"
      "see the header of tools/declctl.cc for per-command flags\n";
  return 2;
}

Result<GridSpec> GridFromFlags(const Flags& flags) {
  return GridSpec::FromString(flags.GetString("grid", "64x64"));
}

Result<QueryShape> ShapeFromFlags(const Flags& flags, const GridSpec& grid) {
  const std::string shape_str = flags.GetString("shape", "4x4");
  Result<GridSpec> parsed = GridSpec::FromString(shape_str);
  if (!parsed.ok()) return parsed.status();
  if (parsed.value().num_dims() != grid.num_dims()) {
    return Status::InvalidArgument("shape " + shape_str +
                                   " does not match grid " + grid.ToString());
  }
  QueryShape shape = parsed.value().dims();
  return shape;
}

int CmdMethods() {
  Table t({"Name", "Restrictions"});
  for (const std::string& name : AllMethodNames()) {
    t.AddRow({name, MethodRestrictionSummary(name)});
  }
  t.PrintText(std::cout);
  return 0;
}

int CmdEval(const Flags& flags) {
  Result<GridSpec> grid = GridFromFlags(flags);
  if (!grid.ok()) return Fail(grid.status().ToString());
  const auto disks = flags.GetInt("disks", 16);
  if (!disks.ok() || disks.value() < 1) return Fail("bad --disks");
  Result<std::unique_ptr<DeclusteringMethod>> method = CreateMethod(
      flags.GetString("method", "hcam"), grid.value(),
      static_cast<uint32_t>(disks.value()));
  if (!method.ok()) return Fail(method.status().ToString());
  Result<QueryShape> shape = ShapeFromFlags(flags, grid.value());
  if (!shape.ok()) return Fail(shape.status().ToString());
  const auto placements = flags.GetInt("placements", 4096);
  const auto seed = flags.GetInt("seed", 42);
  if (!placements.ok() || !seed.ok()) return Fail("bad numeric flag");

  QueryGenerator gen(grid.value());
  Rng rng(static_cast<uint64_t>(seed.value()));
  Result<Workload> workload =
      gen.Placements(shape.value(), static_cast<size_t>(placements.value()),
                     &rng, "cli");
  if (!workload.ok()) return Fail(workload.status().ToString());
  MetricsSink sink(flags);
  EvalOptions eval_options;
  eval_options.metrics = sink.registry();
  const WorkloadEval e = Evaluator(*method.value(), eval_options)
                             .EvaluateWorkload(workload.value());
  std::cout << "method " << method.value()->name() << " on grid "
            << grid.value().ToString() << ", M=" << disks.value() << "\n"
            << "queries evaluated: " << e.num_queries << "\n"
            << "mean response time: " << Table::Fmt(e.MeanResponse(), 4)
            << " (optimal " << Table::Fmt(e.MeanOptimal(), 4) << ")\n"
            << "mean RT/optimal:    " << Table::Fmt(e.MeanRatio(), 4) << "\n"
            << "optimal queries:    "
            << Table::Fmt(e.FractionOptimal() * 100, 1) << "%\n";
  return sink.Flush();
}

int CmdCompare(const Flags& flags) {
  Result<GridSpec> grid = GridFromFlags(flags);
  if (!grid.ok()) return Fail(grid.status().ToString());
  const auto disks = flags.GetInt("disks", 16);
  if (!disks.ok() || disks.value() < 1) return Fail("bad --disks");
  Result<QueryShape> shape = ShapeFromFlags(flags, grid.value());
  if (!shape.ok()) return Fail(shape.status().ToString());
  const auto placements = flags.GetInt("placements", 4096);
  const auto seed = flags.GetInt("seed", 42);
  if (!placements.ok() || !seed.ok()) return Fail("bad numeric flag");

  std::vector<std::string> names;
  {
    const std::string list =
        flags.GetString("methods", "dm,fx-auto,ecc,hcam");
    std::istringstream ss(list);
    std::string token;
    while (std::getline(ss, token, ',')) names.push_back(token);
  }
  QueryGenerator gen(grid.value());
  Rng rng(static_cast<uint64_t>(seed.value()));
  Result<Workload> workload =
      gen.Placements(shape.value(), static_cast<size_t>(placements.value()),
                     &rng, "cli");
  if (!workload.ok()) return Fail(workload.status().ToString());

  MetricsSink sink(flags);
  EvalOptions eval_options;
  eval_options.metrics = sink.registry();
  Table t({"Method", "Mean RT", "RT/opt", "% optimal"});
  for (const std::string& name : names) {
    Result<std::unique_ptr<DeclusteringMethod>> method = CreateMethod(
        name, grid.value(), static_cast<uint32_t>(disks.value()));
    if (!method.ok()) {
      t.AddRow({name, "-", "-", "(" + method.status().ToString() + ")"});
      continue;
    }
    const WorkloadEval e = Evaluator(*method.value(), eval_options)
                               .EvaluateWorkload(workload.value());
    t.AddRow({method.value()->name(), Table::Fmt(e.MeanResponse(), 4),
              Table::Fmt(e.MeanRatio(), 4),
              Table::Fmt(e.FractionOptimal() * 100, 1)});
  }
  t.PrintText(std::cout);
  return sink.Flush();
}

int CmdSweepSize(const Flags& flags) {
  Result<GridSpec> grid = GridFromFlags(flags);
  if (!grid.ok()) return Fail(grid.status().ToString());
  const auto disks = flags.GetInt("disks", 16);
  if (!disks.ok() || disks.value() < 1) return Fail("bad --disks");
  const auto areas32 =
      flags.GetUint32List("areas", {1, 4, 16, 64, 256, 1024});
  if (!areas32.ok()) return Fail(areas32.status().ToString());
  std::vector<uint64_t> areas(areas32.value().begin(),
                              areas32.value().end());
  SweepOptions opts;
  const auto placements = flags.GetInt("placements", 4096);
  const auto seed = flags.GetInt("seed", 42);
  if (!placements.ok() || !seed.ok()) return Fail("bad numeric flag");
  opts.max_placements = static_cast<size_t>(placements.value());
  opts.seed = static_cast<uint64_t>(seed.value());
  Result<SweepResult> sweep = QuerySizeSweep(
      grid.value(), static_cast<uint32_t>(disks.value()), areas, opts);
  if (!sweep.ok()) return Fail(sweep.status().ToString());
  sweep.value().ResponseTable().PrintText(std::cout);
  std::cout << "\n";
  sweep.value().RatioTable().PrintText(std::cout);
  return 0;
}

int CmdGenTrace(const Flags& flags) {
  Result<GridSpec> grid = GridFromFlags(flags);
  if (!grid.ok()) return Fail(grid.status().ToString());
  Result<QueryShape> shape = ShapeFromFlags(flags, grid.value());
  if (!shape.ok()) return Fail(shape.status().ToString());
  const auto count = flags.GetInt("count", 200);
  const auto seed = flags.GetInt("seed", 7);
  if (!count.ok() || !seed.ok() || count.value() < 1) {
    return Fail("bad numeric flag");
  }
  QueryGenerator gen(grid.value());
  Rng rng(static_cast<uint64_t>(seed.value()));
  Result<Workload> workload = gen.SampledPlacements(
      shape.value(), static_cast<size_t>(count.value()), &rng, "generated");
  if (!workload.ok()) return Fail(workload.status().ToString());
  const Status st =
      SerializeWorkload(grid.value(), workload.value(), std::cout);
  if (!st.ok()) return Fail(st.ToString());
  return 0;
}

int CmdAdvise(const Flags& flags) {
  const std::string path = flags.GetString("trace", "");
  if (path.empty()) return Fail("--trace FILE is required");
  std::ifstream in(path);
  if (!in.good()) return Fail("cannot open trace file '" + path + "'");
  Result<WorkloadTrace> trace = DeserializeWorkload(in);
  if (!trace.ok()) return Fail(trace.status().ToString());
  const auto disks = flags.GetInt("disks", 16);
  if (!disks.ok() || disks.value() < 1) return Fail("bad --disks");
  const auto no_opt = flags.GetBool("no-optimize", false);
  if (!no_opt.ok()) return Fail(no_opt.status().ToString());

  AdvisorOptions opts;
  opts.include_optimized = !no_opt.value();
  Result<Advice> advice = AdviseDeclustering(
      trace.value().grid, static_cast<uint32_t>(disks.value()),
      trace.value().workload, opts);
  if (!advice.ok()) return Fail(advice.status().ToString());

  Table t({"Method", "Train RT", "Test RT", "Test RT/opt", "Test % optimal"});
  for (const MethodScore& s : advice.value().scores) {
    t.AddRow({s.name, Table::Fmt(s.train_mean_response, 4),
              Table::Fmt(s.test_mean_response, 4),
              Table::Fmt(s.test_mean_ratio, 4),
              Table::Fmt(s.test_fraction_optimal * 100, 1)});
  }
  t.PrintText(std::cout);
  std::cout << "\nrecommended: " << advice.value().recommended << "\n";
  return 0;
}

int CmdExport(const Flags& flags) {
  Result<GridSpec> grid = GridFromFlags(flags);
  if (!grid.ok()) return Fail(grid.status().ToString());
  const auto disks = flags.GetInt("disks", 16);
  if (!disks.ok() || disks.value() < 1) return Fail("bad --disks");
  Result<std::unique_ptr<DeclusteringMethod>> method = CreateMethod(
      flags.GetString("method", "hcam"), grid.value(),
      static_cast<uint32_t>(disks.value()));
  if (!method.ok()) return Fail(method.status().ToString());
  const Status st = SerializeAllocation(*method.value(), std::cout);
  if (!st.ok()) return Fail(st.ToString());
  return 0;
}

int CmdShow(const Flags& flags) {
  Result<GridSpec> grid = GridFromFlags(flags);
  if (!grid.ok()) return Fail(grid.status().ToString());
  if (grid.value().num_dims() != 2) {
    return Fail("show renders 2-d grids only");
  }
  const auto disks = flags.GetInt("disks", 16);
  if (!disks.ok() || disks.value() < 1) return Fail("bad --disks");
  Result<std::unique_ptr<DeclusteringMethod>> method = CreateMethod(
      flags.GetString("method", "hcam"), grid.value(),
      static_cast<uint32_t>(disks.value()));
  if (!method.ok()) return Fail(method.status().ToString());
  // Disk ids rendered base-36 so up to 36 disks stay one column wide.
  static const char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  std::cout << method.value()->name() << " on " << grid.value().ToString()
            << ", M=" << disks.value() << "\n";
  for (uint32_t i = 0; i < grid.value().dim(0); ++i) {
    for (uint32_t j = 0; j < grid.value().dim(1); ++j) {
      const uint32_t d = method.value()->DiskOf({i, j});
      std::cout << (d < 36 ? kDigits[d] : '?') << ' ';
    }
    std::cout << "\n";
  }
  return 0;
}

int CmdOptimize(const Flags& flags) {
  const std::string path = flags.GetString("trace", "");
  if (path.empty()) return Fail("--trace FILE is required");
  std::ifstream in(path);
  if (!in.good()) return Fail("cannot open trace file '" + path + "'");
  Result<WorkloadTrace> trace = DeserializeWorkload(in);
  if (!trace.ok()) return Fail(trace.status().ToString());
  const auto disks = flags.GetInt("disks", 16);
  const auto passes = flags.GetInt("passes", 8);
  if (!disks.ok() || !passes.ok() || disks.value() < 1 || passes.value() < 1) {
    return Fail("bad numeric flag");
  }
  Result<std::unique_ptr<DeclusteringMethod>> seed = CreateMethod(
      flags.GetString("seed-method", "hcam"), trace.value().grid,
      static_cast<uint32_t>(disks.value()));
  if (!seed.ok()) return Fail(seed.status().ToString());

  WorkloadOptimizeOptions opts;
  opts.max_passes = static_cast<uint32_t>(passes.value());
  WorkloadOptimizeStats stats;
  Result<std::unique_ptr<DeclusteringMethod>> optimized =
      OptimizeForWorkload(*seed.value(), trace.value().workload, opts,
                          &stats);
  if (!optimized.ok()) return Fail(optimized.status().ToString());
  std::cerr << "optimize: cost " << stats.initial_cost << " -> "
            << stats.final_cost << " (" << stats.moves_applied
            << " moves, " << stats.passes << " passes)\n";
  const Status st = SerializeAllocation(*optimized.value(), std::cout);
  if (!st.ok()) return Fail(st.ToString());
  return 0;
}

int CmdThroughput(const Flags& flags) {
  const std::string path = flags.GetString("trace", "");
  if (path.empty()) return Fail("--trace FILE is required");
  std::ifstream in(path);
  if (!in.good()) return Fail("cannot open trace file '" + path + "'");
  Result<WorkloadTrace> trace = DeserializeWorkload(in);
  if (!trace.ok()) return Fail(trace.status().ToString());
  const auto disks = flags.GetInt("disks", 16);
  const auto mpl = flags.GetInt("mpl", 4);
  if (!disks.ok() || !mpl.ok() || disks.value() < 1 || mpl.value() < 1) {
    return Fail("bad numeric flag");
  }
  Result<std::unique_ptr<DeclusteringMethod>> method = CreateMethod(
      flags.GetString("method", "hcam"), trace.value().grid,
      static_cast<uint32_t>(disks.value()));
  if (!method.ok()) return Fail(method.status().ToString());
  MetricsSink sink(flags);
  ThroughputOptions opts;
  opts.concurrency = static_cast<uint32_t>(mpl.value());
  opts.metrics = sink.registry();
  Result<ThroughputResult> r =
      SimulateThroughput(*method.value(), trace.value().workload, opts);
  if (!r.ok()) return Fail(r.status().ToString());
  std::cout << "method " << method.value()->name() << ", MPL "
            << mpl.value() << ", " << r.value().num_queries << " queries\n"
            << "total:        " << Table::Fmt(r.value().total_ms, 1)
            << " ms\n"
            << "throughput:   " << Table::Fmt(r.value().ThroughputQps(), 2)
            << " queries/s\n"
            << "mean latency: " << Table::Fmt(r.value().mean_latency_ms, 2)
            << " ms (max " << Table::Fmt(r.value().max_latency_ms, 1)
            << ")\n"
            << "disk util:    "
            << Table::Fmt(r.value().MeanDiskUtilization(), 3) << "\n";
  return sink.Flush();
}

int CmdReproduce(const Flags& flags) {
  ReproductionOptions opts;
  const auto placements = flags.GetInt("placements", 1024);
  const auto seed = flags.GetInt("seed", 42);
  const auto theory = flags.GetBool("theory", true);
  if (!placements.ok() || !seed.ok() || !theory.ok() ||
      placements.value() < 1) {
    return Fail("bad flag");
  }
  opts.max_placements = static_cast<size_t>(placements.value());
  opts.seed = static_cast<uint64_t>(seed.value());
  opts.include_theory = theory.value();
  const Status st = RunPaperReproduction(std::cout, opts);
  if (!st.ok()) return Fail(st.ToString());
  return 0;
}

int CmdSearch(const Flags& flags) {
  const auto disks = flags.GetInt("disks", 6);
  const auto rows = flags.GetInt("rows", 8);
  const auto cols = flags.GetInt("cols", 8);
  const auto max_nodes = flags.GetInt("max-nodes", 20'000'000);
  if (!disks.ok() || !rows.ok() || !cols.ok() || !max_nodes.ok() ||
      disks.value() < 1 || rows.value() < 1 || cols.value() < 1) {
    return Fail("bad numeric flag");
  }
  StrictOptimalitySearchOptions opts;
  opts.max_nodes = static_cast<uint64_t>(max_nodes.value());
  Result<StrictOptimalitySearchResult> r = FindStrictlyOptimalAllocation(
      static_cast<uint32_t>(rows.value()), static_cast<uint32_t>(cols.value()),
      static_cast<uint32_t>(disks.value()), opts);
  if (!r.ok()) return Fail(r.status().ToString());
  switch (r.value().outcome) {
    case SearchOutcome::kFound:
      std::cout << "strictly optimal allocation found ("
                << r.value().nodes_explored << " nodes):\n";
      for (int64_t i = 0; i < rows.value(); ++i) {
        for (int64_t j = 0; j < cols.value(); ++j) {
          std::cout << r.value().allocation[static_cast<size_t>(
                           i * cols.value() + j)]
                    << " ";
        }
        std::cout << "\n";
      }
      return 0;
    case SearchOutcome::kInfeasible:
      std::cout << "no strictly optimal allocation exists for "
                << rows.value() << "x" << cols.value() << " on "
                << disks.value() << " disks (exhaustive, "
                << r.value().nodes_explored << " nodes)\n";
      return 0;
    case SearchOutcome::kBudgetExhausted:
      std::cout << "undecided: node budget exhausted\n";
      return 0;
  }
  return 0;
}

int CmdDegrade(const Flags& flags) {
  AvailabilitySweepOptions opts;
  Result<GridSpec> grid = GridFromFlags(flags);
  if (!grid.ok()) return Fail(grid.status().ToString());
  opts.grid_dims = grid.value().dims();
  const auto disks = flags.GetInt("disks", 8);
  const auto queries = flags.GetInt("queries", 200);
  const auto max_failed = flags.GetInt("max-failed", 2);
  const auto seed = flags.GetInt("seed", 42);
  const auto mpl = flags.GetInt("mpl", 4);
  const auto replication = flags.GetUint32List("replication", {2, 3});
  if (!disks.ok() || !queries.ok() || !max_failed.ok() || !seed.ok() ||
      !mpl.ok() || !replication.ok() || disks.value() < 1 ||
      queries.value() < 1 || max_failed.value() < 0 || mpl.value() < 1) {
    return Fail("bad numeric flag");
  }
  opts.num_disks = static_cast<uint32_t>(disks.value());
  Result<QueryShape> shape = ShapeFromFlags(flags, grid.value());
  if (!shape.ok()) return Fail(shape.status().ToString());
  opts.query_shape = shape.value();
  opts.num_queries = static_cast<uint32_t>(queries.value());
  opts.max_failed = static_cast<uint32_t>(max_failed.value());
  opts.replication = replication.value();
  opts.seed = static_cast<uint64_t>(seed.value());
  opts.sim.concurrency = static_cast<uint32_t>(mpl.value());
  {
    // Correlated-failure mode (A16): kill whole nodes/racks/zones of a
    // topology and evaluate the cluster placement policies.
    const std::string domain = flags.GetString("failure-domain", "");
    if (!domain.empty()) {
      Result<FailureDomain> parsed = ParseFailureDomain(domain);
      if (!parsed.ok()) return Fail(parsed.status().ToString());
      opts.failure_domain = parsed.value();
    }
    const std::string topology = flags.GetString("topology", "");
    if (opts.failure_domain != FailureDomain::kDisk && topology.empty()) {
      return Fail("--failure-domain needs --topology N[xR[xZ]]");
    }
    if (!topology.empty()) {
      Result<cluster::Topology> topo = cluster::ParseTopology(topology);
      if (!topo.ok()) return Fail(topo.status().ToString());
      opts.topology = std::move(topo).value();
    }
    const std::string policies = flags.GetString("policies", "");
    if (!policies.empty()) {
      std::stringstream ss(policies);
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (name.empty()) continue;
        Result<cluster::PlacementPolicy> p =
            cluster::ParsePlacementPolicy(name);
        if (!p.ok()) return Fail(p.status().ToString());
        opts.placement_policies.push_back(p.value());
      }
    }
    const auto pseed = flags.GetInt("placement-seed", 1);
    if (!pseed.ok()) return Fail("bad --placement-seed");
    opts.placement_seed = static_cast<uint64_t>(pseed.value());
    // Repair-aware mode (A17): heal each kill before the next domain dies.
    const auto repair = flags.GetBool("repair", false);
    const auto detect = flags.GetDouble("repair-detect-ms", 40.0);
    const auto per_replica = flags.GetDouble("repair-ms-per-replica", 5.0);
    if (!repair.ok() || !detect.ok() || !per_replica.ok()) {
      return Fail("bad repair flag");
    }
    opts.repair = repair.value();
    opts.repair_detect_ms = detect.value();
    opts.repair_ms_per_replica = per_replica.value();
  }
  MetricsSink sink(flags);
  opts.sim.metrics = sink.registry();
  const std::string methods = flags.GetString("methods", "");
  if (!methods.empty()) {
    std::stringstream ss(methods);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (!name.empty()) opts.methods.push_back(name);
    }
  }

  Result<AvailabilitySweep> sweep = RunAvailabilitySweep(opts);
  if (!sweep.ok()) return Fail(sweep.status().ToString());

  const std::string json_path = flags.GetString("json", "");
  if (json_path == "-") {
    std::cout << sweep.value().ToJson();
    return sink.Flush();
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.good()) return Fail("cannot write '" + json_path + "'");
    out << sweep.value().ToJson();
    out.flush();
    if (!out.good()) return Fail("write to '" + json_path + "' failed");
  }

  const bool correlated = opts.failure_domain != FailureDomain::kDisk;
  Table t(correlated
              ? std::vector<std::string>{"Method", "Strategy", "Domains",
                                         "Failed disks", "Mean lat (ms)",
                                         "Availability", "Degraded x",
                                         "Rerouted", "Reconstr reads"}
              : std::vector<std::string>{"Method", "Strategy", "Failed",
                                         "Mean lat (ms)", "Availability",
                                         "Degraded x", "Rerouted",
                                         "Reconstr reads"});
  for (const AvailabilityPoint& p : sweep.value().points) {
    std::vector<std::string> row{p.method, p.strategy};
    if (correlated) row.push_back(std::to_string(p.failed_domains));
    row.push_back(std::to_string(p.failed_disks));
    row.push_back(Table::Fmt(p.mean_latency_ms, 2));
    row.push_back(Table::Fmt(p.availability, 3));
    row.push_back(Table::Fmt(p.degraded_ratio, 2));
    row.push_back(std::to_string(p.rerouted_buckets));
    row.push_back(std::to_string(p.reconstruction_reads));
    t.AddRow(row);
  }
  t.PrintText(std::cout);
  return sink.Flush();
}

Result<RelationRedundancy> RedundancyFromFlags(const Flags& flags) {
  RelationRedundancy r;
  const std::string policy = flags.GetString("redundancy", "none");
  if (policy == "none") {
    r.policy = RelationRedundancy::Policy::kNone;
  } else if (policy == "mirror") {
    r.policy = RelationRedundancy::Policy::kMirror;
  } else if (policy == "parity") {
    r.policy = RelationRedundancy::Policy::kParity;
  } else {
    return Status::InvalidArgument("bad --redundancy '" + policy +
                                   "' (none|mirror|parity)");
  }
  const auto copies = flags.GetInt("copies", 2);
  const auto group_pages = flags.GetInt("group-pages", 8);
  if (!copies.ok() || !group_pages.ok() || copies.value() < 1 ||
      group_pages.value() < 1) {
    return Status::InvalidArgument("bad --copies / --group-pages");
  }
  r.copies = static_cast<uint32_t>(copies.value());
  r.group_pages = static_cast<uint32_t>(group_pages.value());
  return r;
}

/// `--placement chained|spread|zone_aware --topology N[xR[xZ]]
/// [--placement-seed S]` -> a PlacementSpec; nullopt when neither
/// placement flag is present.
Result<std::optional<cluster::PlacementSpec>> PlacementFromFlags(
    const Flags& flags) {
  const std::string policy = flags.GetString("placement", "");
  const std::string topology = flags.GetString("topology", "");
  const auto pseed = flags.GetInt("placement-seed", 0);
  if (!pseed.ok()) return pseed.status();
  if (policy.empty() && topology.empty()) {
    return std::optional<cluster::PlacementSpec>();
  }
  if (topology.empty()) {
    return Status::InvalidArgument(
        "--placement requires --topology N[xR[xZ]]");
  }
  cluster::PlacementSpec spec;
  if (!policy.empty()) {
    Result<cluster::PlacementPolicy> parsed =
        cluster::ParsePlacementPolicy(policy);
    GRIDDECL_RETURN_IF_ERROR(parsed.status());
    spec.policy = parsed.value();
  }
  Result<cluster::Topology> topo = cluster::ParseTopology(topology);
  GRIDDECL_RETURN_IF_ERROR(topo.status());
  spec.topology = std::move(topo).value();
  spec.seed = static_cast<uint64_t>(pseed.value());
  return std::optional<cluster::PlacementSpec>(std::move(spec));
}

std::string TopologyString(const cluster::Topology& t) {
  return std::to_string(t.num_nodes()) + "x" + std::to_string(t.num_racks()) +
         "x" + std::to_string(t.num_zones());
}

int CmdMkCatalog(const Flags& flags) {
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Fail("--dir DIR is required");
  Result<GridSpec> grid = GridFromFlags(flags);
  if (!grid.ok()) return Fail(grid.status().ToString());
  const auto disks = flags.GetInt("disks", 4);
  const auto records = flags.GetInt("records", 256);
  const auto seed = flags.GetInt("seed", 42);
  const auto page_size = flags.GetInt("page-size", 4096);
  const auto format = flags.GetInt("format", kLatestFormatVersion);
  if (!disks.ok() || !records.ok() || !seed.ok() || !page_size.ok() ||
      !format.ok() || disks.value() < 1 || records.value() < 0 ||
      page_size.value() < 1) {
    return Fail("bad numeric flag");
  }
  if (format.value() != kFormatV2 && format.value() != kFormatV3) {
    return Fail("--format must be 2 or 3");
  }
  Result<RelationRedundancy> redundancy = RedundancyFromFlags(flags);
  if (!redundancy.ok()) return Fail(redundancy.status().ToString());
  Result<std::optional<cluster::PlacementSpec>> placement =
      PlacementFromFlags(flags);
  if (!placement.ok()) return Fail(placement.status().ToString());
  const auto clustered = flags.GetBool("clustered", false);
  if (!clustered.ok()) return Fail(clustered.status().ToString());

  std::vector<std::string> names;
  {
    const std::string list = flags.GetString("methods", "dm,hcam");
    std::istringstream ss(list);
    std::string token;
    while (std::getline(ss, token, ',')) {
      if (!token.empty()) names.push_back(token);
    }
  }
  if (names.empty()) return Fail("--methods lists no methods");

  Catalog catalog(static_cast<uint32_t>(disks.value()));
  Rng rng(static_cast<uint64_t>(seed.value()));
  for (const std::string& name : names) {
    std::vector<AttributeDef> attrs;
    for (uint32_t d = 0; d < grid.value().num_dims(); ++d) {
      attrs.push_back({"a" + std::to_string(d), 0.0, 1.0});
    }
    Result<Schema> schema = Schema::Create(attrs);
    if (!schema.ok()) return Fail(schema.status().ToString());
    Result<GridFile> file =
        GridFile::Create(std::move(schema).value(), grid.value().dims());
    if (!file.ok()) return Fail(file.status().ToString());
    if (clustered.value()) {
      // Bucket-clustered layout: insert bucket by bucket, padding each
      // bucket's count to a page-capacity multiple so no storage page
      // mixes buckets — the layout `serve --fail-disk` requires.
      const uint32_t capacity =
          PageCapacityFor(static_cast<uint32_t>(format.value()),
                          static_cast<uint32_t>(page_size.value()),
                          grid.value().num_dims());
      if (capacity < 1) return Fail("--page-size too small for --clustered");
      const uint64_t num_buckets = grid.value().num_buckets();
      uint64_t per_bucket =
          (static_cast<uint64_t>(records.value()) + num_buckets - 1) /
          num_buckets;
      per_bucket = std::max<uint64_t>(
          capacity, (per_bucket + capacity - 1) / capacity * capacity);
      for (uint64_t b = 0; b < num_buckets; ++b) {
        const BucketCoords c = grid.value().Delinearize(b);
        for (uint64_t k = 0; k < per_bucket; ++k) {
          std::vector<double> point;
          for (uint32_t d = 0; d < grid.value().num_dims(); ++d) {
            const double width = 1.0 / grid.value().dims()[d];
            point.push_back((c[d] + rng.NextDouble()) * width);
          }
          const Result<RecordId> id = file.value().Insert(point);
          if (!id.ok()) {
            return Fail("insert into '" + name + "': " +
                        id.status().ToString());
          }
        }
      }
    } else {
      for (int64_t i = 0; i < records.value(); ++i) {
        std::vector<double> point;
        for (uint32_t d = 0; d < grid.value().num_dims(); ++d) {
          point.push_back(rng.NextDouble());
        }
        const Result<RecordId> id = file.value().Insert(point);
        if (!id.ok()) {
          return Fail("insert into '" + name + "': " + id.status().ToString());
        }
      }
    }
    Result<DeclusteredFile> rel = DeclusteredFile::Create(
        std::move(file).value(), name, static_cast<uint32_t>(disks.value()));
    if (!rel.ok()) return Fail("method '" + name + "': " +
                               rel.status().ToString());
    const Status st = catalog.AddRelation(name, std::move(rel).value());
    if (!st.ok()) return Fail(st.ToString());
  }

  Result<DiskEnv> env = DiskEnv::Create(dir);
  if (!env.ok()) return Fail(env.status().ToString());
  MetricsSink sink(flags);
  ManifestSaveOptions options;
  options.page_size_bytes = static_cast<uint32_t>(page_size.value());
  options.format_version = static_cast<uint32_t>(format.value());
  options.default_redundancy = redundancy.value();
  options.metrics = sink.registry();
  if (placement.value().has_value()) {
    options.placement = cluster::ToManifestPlacement(*placement.value());
  }
  Result<uint64_t> gen = SaveCatalogManifest(catalog, &env.value(), options);
  if (!gen.ok()) return Fail(gen.status().ToString());
  std::cout << "committed generation " << gen.value() << ": "
            << names.size() << " relation(s), " << records.value()
            << " record(s) each, redundancy "
            << RedundancyPolicyName(redundancy.value().policy) << "\n";
  if (placement.value().has_value()) {
    std::cout << "placement: "
              << cluster::PlacementPolicyName(placement.value()->policy)
              << ", topology " << TopologyString(placement.value()->topology)
              << "\n";
  }
  return sink.Flush();
}

int CmdServe(const Flags& flags) {
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Fail("--dir DIR is required");
  const std::string script_path = flags.GetString("script", "");
  if (script_path.empty()) return Fail("--script FILE is required");

  serve::ServeOptions options;
  const auto threads = flags.GetInt("threads", 4);
  const auto queue = flags.GetInt("queue", 64);
  const auto deadline = flags.GetDouble("deadline", 0.0);
  const auto drain = flags.GetDouble("drain", 2000.0);
  const auto seed = flags.GetInt("seed", 0);
  const auto prob = flags.GetDouble("transient-prob", 0.0);
  const auto fault_seed = flags.GetInt("fault-seed", 1);
  const auto max_transient = flags.GetInt("max-transient-attempts", 3);
  const auto latency = flags.GetDouble("latency", 0.0);
  const auto fail_disk = flags.GetInt("fail-disk", -1);
  const auto pool_pages = flags.GetInt("pool-pages", 1024);
  if (!threads.ok() || !queue.ok() || !deadline.ok() || !drain.ok() ||
      !seed.ok() || !prob.ok() || !fault_seed.ok() || !max_transient.ok() ||
      !latency.ok() || !fail_disk.ok() || !pool_pages.ok() ||
      threads.value() < 1 || queue.value() < 1 || pool_pages.value() < 0) {
    return Fail("bad numeric flag");
  }
  options.num_threads = static_cast<uint32_t>(threads.value());
  options.max_queue = static_cast<uint32_t>(queue.value());
  options.default_deadline_ms = deadline.value();
  options.drain_deadline_ms = drain.value();
  options.seed = static_cast<uint64_t>(seed.value());
  options.pool_pages = static_cast<size_t>(pool_pages.value());

  std::ifstream script_in(script_path);
  if (!script_in.good()) {
    return Fail("cannot read script '" + script_path + "'");
  }
  std::ostringstream script_text;
  script_text << script_in.rdbuf();
  Result<std::vector<serve::QueryRequest>> requests =
      serve::ParseServeScript(script_text.str());
  if (!requests.ok()) {
    return Fail(script_path + ": " + requests.status().ToString());
  }

  Result<DiskEnv> env = DiskEnv::Create(dir);
  if (!env.ok()) return Fail(env.status().ToString());

  FaultyEnvOptions fault_opts;
  fault_opts.seed = static_cast<uint64_t>(fault_seed.value());
  fault_opts.transient_error_prob = prob.value();
  fault_opts.max_transient_attempts =
      static_cast<uint32_t>(max_transient.value());
  fault_opts.latency_ms = latency.value();
  if (fail_disk.value() >= 0) {
    const std::string relation = flags.GetString("fail-relation", "");
    if (relation.empty()) {
      return Fail("--fail-disk needs --fail-relation NAME");
    }
    Result<std::vector<FaultRange>> schedule = serve::DiskFaultSchedule(
        env.value(), relation, static_cast<uint32_t>(fail_disk.value()));
    if (!schedule.ok()) return Fail(schedule.status().ToString());
    fault_opts.permanent = std::move(schedule).value();
    std::cout << "failing disk " << fail_disk.value() << " of '" << relation
              << "': " << fault_opts.permanent.size()
              << " page range(s) unreadable\n";
  }
  Result<std::unique_ptr<FaultyEnv>> faulty =
      FaultyEnv::Create(&env.value(), fault_opts);
  if (!faulty.ok()) return Fail(faulty.status().ToString());

  MetricsSink sink(flags);
  Result<std::unique_ptr<serve::QueryService>> service =
      serve::QueryService::Create(faulty.value().get(), options);
  if (!service.ok()) return Fail(service.status().ToString());

  // Submit everything up front (the admission queue may shed), then wait.
  std::vector<std::pair<size_t, std::future<serve::QueryResult>>> futures;
  uint64_t shed = 0;
  for (size_t i = 0; i < requests.value().size(); ++i) {
    Result<std::future<serve::QueryResult>> f =
        service.value()->Submit(requests.value()[i]);
    if (f.ok()) {
      futures.emplace_back(i, std::move(f).value());
    } else {
      shed++;
      std::cout << "query " << i << ": " << f.status().ToString() << "\n";
    }
  }
  uint64_t failed = shed;
  for (auto& [i, future] : futures) {
    const serve::QueryResult r = future.get();
    std::cout << "query " << i << ": ";
    if (r.status.ok()) {
      std::cout << r.matches.size() << " match(es), " << r.pages_read
                << " page(s)";
      if (r.retries > 0) std::cout << ", " << r.retries << " retries";
      if (r.rerouted_buckets > 0) {
        std::cout << ", " << r.rerouted_buckets << " rerouted";
      }
      if (r.failover_reads > 0) {
        std::cout << ", " << r.failover_reads << " failovers";
      }
      if (r.reconstructed_pages > 0) {
        std::cout << ", " << r.reconstructed_pages << " reconstructed";
      }
      if (r.pool_hits > 0) {
        std::cout << ", " << r.pool_hits << " pool hits";
      }
      if (r.zone_map_skips > 0) {
        std::cout << ", " << r.zone_map_skips << " pages zone-skipped";
      }
      std::cout << "\n";
    } else {
      failed++;
      std::cout << r.status.ToString() << "\n";
    }
  }
  const Status drained = service.value()->Shutdown();
  if (sink.registry() != nullptr) {
    service.value()->SnapshotMetrics(sink.registry());
  }
  const BreakerCounters breakers = service.value()->BreakerTotals();
  std::cout << requests.value().size() - failed << "/"
            << requests.value().size() << " queries ok";
  if (shed > 0) std::cout << " (" << shed << " shed)";
  if (breakers.opened > 0) {
    std::cout << "; breakers: " << breakers.opened << " opened, "
              << breakers.half_opened << " half-opened, " << breakers.closed
              << " closed, " << breakers.reopened << " reopened";
  }
  std::cout << "\n";
  if (!drained.ok()) std::cout << "drain: " << drained.ToString() << "\n";
  if (const int rc = sink.Flush(); rc != 0) return rc;
  return failed == 0 ? 0 : 1;
}

int CmdCluster(const Flags& flags) {
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Fail("--dir DIR is required");
  const std::string script_path = flags.GetString("script", "");
  if (script_path.empty()) return Fail("--script FILE is required");

  const auto nodes = flags.GetInt("nodes", 4);
  const auto threads = flags.GetInt("threads", 4);
  const auto hedge_delay = flags.GetDouble("hedge-delay", -1.0);
  const auto no_hedge = flags.GetBool("no-hedge", false);
  const auto first_success = flags.GetBool("first-success", false);
  const auto quorum = flags.GetDouble("quorum", 0.5);
  const auto seed = flags.GetInt("seed", 0);
  const auto prob = flags.GetDouble("transient-prob", 0.0);
  const auto fault_seed = flags.GetInt("fault-seed", 1);
  const auto max_nodes = flags.GetInt("max-nodes", 0);
  const auto retry_budget = flags.GetInt("retry-budget", 0);
  const auto hedge_budget = flags.GetDouble("hedge-budget", 0.0);
  if (!nodes.ok() || !threads.ok() || !hedge_delay.ok() || !no_hedge.ok() ||
      !first_success.ok() || !quorum.ok() || !seed.ok() || !prob.ok() ||
      !fault_seed.ok() || !max_nodes.ok() || !retry_budget.ok() ||
      !hedge_budget.ok() || nodes.value() < 1 || threads.value() < 1 ||
      max_nodes.value() < 0 || retry_budget.value() < 0) {
    return Fail("bad numeric flag");
  }

  cluster::ClusterOptions options;
  options.num_nodes = static_cast<uint32_t>(nodes.value());
  options.node.num_threads = static_cast<uint32_t>(threads.value());
  options.hedging = !no_hedge.value();
  options.hedge_policy = first_success.value()
                             ? cluster::HedgePolicy::kFirstSuccess
                             : cluster::HedgePolicy::kPrimaryPreferred;
  options.hedge_delay_ms = hedge_delay.value();
  options.quorum_fraction = quorum.value();
  options.seed = static_cast<uint64_t>(seed.value());
  options.node.seed = static_cast<uint64_t>(seed.value());
  options.node_transient_prob = prob.value();
  options.fault_seed = static_cast<uint64_t>(fault_seed.value());
  options.max_nodes = static_cast<uint32_t>(max_nodes.value());
  options.retry_budget_per_query = static_cast<uint32_t>(retry_budget.value());
  options.hedge_budget_fraction = hedge_budget.value();
  {
    Result<std::optional<cluster::PlacementSpec>> placement =
        PlacementFromFlags(flags);
    if (!placement.ok()) return Fail(placement.status().ToString());
    options.placement = std::move(placement).value();
  }
  {
    const std::string latency = flags.GetString("latency", "");
    std::istringstream ss(latency);
    std::string token;
    while (std::getline(ss, token, ',')) {
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      if (token.empty() || end != token.c_str() + token.size() || v < 0.0) {
        return Fail("bad --latency entry '" + token + "'");
      }
      options.node_latency_ms.push_back(v);
    }
  }

  std::ifstream script_in(script_path);
  if (!script_in.good()) {
    return Fail("cannot read script '" + script_path + "'");
  }
  std::ostringstream script_text;
  script_text << script_in.rdbuf();
  Result<std::vector<cluster::ClusterCommand>> commands =
      cluster::ParseClusterScript(script_text.str());
  if (!commands.ok()) {
    return Fail(script_path + ": " + commands.status().ToString());
  }

  Result<DiskEnv> env = DiskEnv::Create(dir);
  if (!env.ok()) return Fail(env.status().ToString());
  Result<std::unique_ptr<cluster::Cluster>> cl =
      cluster::Cluster::Create(env.value(), std::move(options));
  if (!cl.ok()) return Fail(cl.status().ToString());
  std::cout << "cluster: " << cl.value()->num_nodes() << " node(s), "
            << cl.value()->num_disks() << " virtual disk(s), generation "
            << cl.value()->generation() << "\n";
  {
    const cluster::PlacementSpec& ps = cl.value()->placement_spec();
    std::cout << "placement: " << cluster::PlacementPolicyName(ps.policy)
              << ", topology " << TopologyString(ps.topology) << "\n";
    for (const std::string& w : cl.value()->PlacementWarnings()) {
      std::cout << w << "\n";
    }
  }

  MetricsSink sink(flags);
  uint64_t incomplete = 0;
  size_t query_no = 0;
  for (const cluster::ClusterCommand& cmd : commands.value()) {
    using Kind = cluster::ClusterCommand::Kind;
    switch (cmd.kind) {
      case Kind::kQuery: {
        const cluster::ClusterQueryResult r = cl.value()->Execute(cmd.query);
        std::cout << "query " << query_no++ << ": ";
        if (!r.status.ok()) {
          ++incomplete;
          std::cout << r.status.ToString() << "\n";
          break;
        }
        std::cout << r.matches.size() << " match(es), " << r.sub_queries
                  << " sub-quer" << (r.sub_queries == 1 ? "y" : "ies");
        if (r.hedges_fired > 0) {
          std::cout << ", " << r.hedges_fired << " hedged (" << r.hedge_wins
                    << " won)";
        }
        if (r.rerouted_subqueries > 0) {
          std::cout << ", " << r.rerouted_subqueries << " rerouted";
        }
        if (!r.complete) {
          ++incomplete;
          std::cout << ", PARTIAL availability "
                    << Table::Fmt(r.availability * 100, 1) << "% ("
                    << r.unavailable_buckets << "/" << r.buckets_touched
                    << " buckets unavailable)";
        }
        std::cout << "\n";
        break;
      }
      case Kind::kKillNode: {
        const Status st = cl.value()->KillNode(cmd.node);
        if (!st.ok()) return Fail(st.ToString());
        std::cout << "killed node " << cmd.node << "\n";
        break;
      }
      case Kind::kReviveNode: {
        const Status st = cl.value()->ReviveNode(cmd.node);
        if (!st.ok()) return Fail(st.ToString());
        std::cout << "revived node " << cmd.node << "\n";
        break;
      }
      case Kind::kKillZone: {
        const Status st = cl.value()->KillZone(cmd.zone);
        if (!st.ok()) return Fail(st.ToString());
        std::cout << "killed zone " << cmd.zone << "\n";
        break;
      }
      case Kind::kReviveZone: {
        const Status st = cl.value()->ReviveZone(cmd.zone);
        if (!st.ok()) return Fail(st.ToString());
        std::cout << "revived zone " << cmd.zone << "\n";
        break;
      }
      case Kind::kAdvance:
        cl.value()->AdvanceTimeMs(cmd.advance_ms);
        std::cout << "advanced virtual time to " << cmd.advance_ms << " ms\n";
        break;
      case Kind::kMigrate: {
        cluster::MigrationOptions mo;
        mo.new_method = cmd.migrate_method;
        mo.new_num_disks = cmd.migrate_disks;
        Result<cluster::MigrationReport> report = cl.value()->Migrate(mo);
        if (!report.ok()) return Fail(report.status().ToString());
        if (report.value().committed) {
          std::cout << "migrated to " << cmd.migrate_method << "/M="
                    << cmd.migrate_disks << ": generation "
                    << report.value().old_generation << " -> "
                    << report.value().new_generation << ", "
                    << report.value().files_copied << " file(s) copied, "
                    << report.value().verify_queries
                    << " verify quer(ies) clean\n";
        } else {
          ++incomplete;
          std::cout << "migration aborted: " << report.value().abort_reason
                    << " (old generation " << report.value().old_generation
                    << " intact)\n";
        }
        break;
      }
      case Kind::kRepair: {
        cluster::RepairOptions ro;
        ro.copy_bytes_per_sec = cmd.repair_bytes_per_sec;
        Result<cluster::RepairReport> report = cl.value()->Repair(ro);
        if (!report.ok()) return Fail(report.status().ToString());
        if (report.value().already_healthy) {
          std::cout << "repair: placement already healthy (generation "
                    << report.value().old_generation << ")\n";
        } else if (report.value().committed) {
          std::cout << "repaired: generation "
                    << report.value().old_generation << " -> "
                    << report.value().new_generation << ", "
                    << report.value().replicas_retargeted
                    << " replica(s) re-targeted, "
                    << report.value().files_copied << " file(s) copied, "
                    << report.value().verify_queries
                    << " verify quer(ies) clean, MTTR "
                    << Table::Fmt(report.value().mttr_virtual_ms, 1)
                    << " virtual ms\n";
        } else {
          ++incomplete;
          std::cout << "repair aborted: " << report.value().abort_reason
                    << " (old generation " << report.value().old_generation
                    << " intact)\n";
        }
        break;
      }
      case Kind::kAddNode: {
        Result<uint32_t> id =
            cl.value()->AddNode(cmd.add_rack, cmd.add_zone);
        if (!id.ok()) return Fail(id.status().ToString());
        std::cout << "added node " << id.value() << " (rack " << cmd.add_rack
                  << ", zone " << cmd.add_zone
                  << "); repair to take ownership\n";
        break;
      }
      case Kind::kRemoveNode: {
        const Status st = cl.value()->RemoveNode(cmd.node);
        if (!st.ok()) return Fail(st.ToString());
        std::cout << "removed node " << cmd.node
                  << "; repair to evacuate its replicas\n";
        break;
      }
    }
  }
  if (sink.registry() != nullptr) {
    cl.value()->SnapshotMetrics(sink.registry());
  }
  std::cout << (incomplete == 0 ? "all commands clean"
                                : std::to_string(incomplete) +
                                      " command(s) degraded or failed")
            << "\n";
  if (const int rc = sink.Flush(); rc != 0) return rc;
  return incomplete == 0 ? 0 : 1;
}

int CmdFsck(const Flags& flags) {
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Fail("--dir DIR is required");
  const auto dry_run = flags.GetBool("dry-run", false);
  if (!dry_run.ok()) return Fail(dry_run.status().ToString());
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Fail("no such catalog directory '" + dir + "'");
  }
  Result<DiskEnv> env = DiskEnv::Create(dir);
  if (!env.ok()) return Fail(env.status().ToString());
  MetricsSink sink(flags);
  ScrubOptions options;
  options.repair = !dry_run.value();
  options.metrics = sink.registry();
  Result<ScrubReport> report = ScrubCatalog(&env.value(), options);
  if (!report.ok()) return Fail(report.status().ToString());
  std::cout << FormatScrubReport(report.value());
  if (Result<CatalogManifest> manifest = ReadCurrentManifest(env.value());
      manifest.ok() && manifest.value().placement.has_value()) {
    Result<cluster::PlacementSpec> spec =
        cluster::FromManifestPlacement(*manifest.value().placement);
    if (spec.ok()) {
      std::cout << "placement: "
                << cluster::PlacementPolicyName(spec.value().policy)
                << ", topology " << TopologyString(spec.value().topology)
                << ", seed " << spec.value().seed << "\n";
    }
  }
  if (const int rc = sink.Flush(); rc != 0) return rc;
  return report.value().Clean() ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Result<Flags> flags = Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) return Fail(flags.status().ToString());

  if (command == "methods") return CmdMethods();
  if (command == "eval") return CmdEval(flags.value());
  if (command == "compare") return CmdCompare(flags.value());
  if (command == "sweep-size") return CmdSweepSize(flags.value());
  if (command == "gen-trace") return CmdGenTrace(flags.value());
  if (command == "advise") return CmdAdvise(flags.value());
  if (command == "show") return CmdShow(flags.value());
  if (command == "export") return CmdExport(flags.value());
  if (command == "optimize") return CmdOptimize(flags.value());
  if (command == "throughput") return CmdThroughput(flags.value());
  if (command == "reproduce") return CmdReproduce(flags.value());
  if (command == "search") return CmdSearch(flags.value());
  if (command == "degrade") return CmdDegrade(flags.value());
  if (command == "mkcatalog") return CmdMkCatalog(flags.value());
  if (command == "fsck") return CmdFsck(flags.value());
  if (command == "serve") return CmdServe(flags.value());
  if (command == "cluster") return CmdCluster(flags.value());
  return Usage();
}

}  // namespace
}  // namespace griddecl

int main(int argc, char** argv) { return griddecl::Main(argc, argv); }
